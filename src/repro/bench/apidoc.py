"""API reference generator: walks the public surface and emits Markdown.

Every subpackage's ``__all__`` defines its public API; this generator
renders one section per subpackage with each symbol's kind, signature
(for callables) and docstring summary line.  Output is committed as
``docs/API.md`` and regenerated with ``python -m repro apidoc``.
"""

from __future__ import annotations

import importlib
import inspect
from typing import List

SUBPACKAGES = [
    "repro.field",
    "repro.hashing",
    "repro.kernels",
    "repro.merkle",
    "repro.sumcheck",
    "repro.encoder",
    "repro.commitment",
    "repro.core",
    "repro.gkr",
    "repro.gpu",
    "repro.pipeline",
    "repro.runtime",
    "repro.execution",
    "repro.resilience",
    "repro.cluster",
    "repro.service",
    "repro.baselines",
    "repro.zkml",
    "repro.apps",
    "repro.bench",
    "repro.experiments",
]


def _summary(obj) -> str:
    doc = inspect.getdoc(obj) or ""
    first = doc.split("\n")[0].strip()
    return first


def _signature(obj) -> str:
    try:
        return str(inspect.signature(obj))
    except (TypeError, ValueError):
        return "(…)"


def _kind(obj) -> str:
    if inspect.isclass(obj):
        return "class"
    if inspect.isfunction(obj) or inspect.isbuiltin(obj):
        return "function"
    if callable(obj):
        return "callable"
    return type(obj).__name__


def document_module(module_name: str) -> str:
    module = importlib.import_module(module_name)
    names = sorted(getattr(module, "__all__", []))
    lines: List[str] = [f"## `{module_name}`", ""]
    mod_summary = _summary(module)
    if mod_summary:
        lines.append(mod_summary)
        lines.append("")
    # Subpackages may carry extended reference prose in ``__apidoc__``;
    # it is rendered verbatim between the summary and the symbol table.
    extended = getattr(module, "__apidoc__", "").strip()
    if extended:
        lines.append(extended)
        lines.append("")
    lines.append("| symbol | kind | summary |")
    lines.append("|---|---|---|")
    for name in names:
        obj = getattr(module, name, None)
        if obj is None:
            continue
        kind = _kind(obj)
        if kind in ("class",):
            label = f"`{name}`"
        elif kind == "function":
            label = f"`{name}{_signature(obj)}`"
        else:
            label = f"`{name}`"
        summary = _summary(obj) if kind in ("class", "function") else ""
        summary = summary.replace("|", "\\|")
        if len(label) > 90:
            label = f"`{name}(…)`"
        lines.append(f"| {label} | {kind} | {summary} |")
    lines.append("")
    return "\n".join(lines)


def generate_api_markdown() -> str:
    header = (
        "# API reference\n\n"
        "The public surface of every subpackage (each package's `__all__`).\n"
        "Regenerate with `python -m repro apidoc`.\n\n"
    )
    sections = [document_module(name) for name in SUBPACKAGES]
    return header + "\n".join(sections)


def write_api_markdown(path: str = "docs/API.md") -> str:
    import pathlib

    out = pathlib.Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(generate_api_markdown())
    return str(out)
