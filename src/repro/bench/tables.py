"""Experiment runners: one function per paper table/figure.

Each ``compute_*`` function regenerates the corresponding evaluation
artifact of the paper from the calibrated simulator (plus real functional
code where applicable), returning structured rows.  The benchmark files
under ``benchmarks/`` time and print them; EXPERIMENTS.md records the
paper-vs-measured comparison.

Paper reference values are embedded per row so every output prints
"ours vs paper" side by side.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Dict, List, Optional, Tuple

from ..baselines import (
    ZKML_BASELINES,
    OURS_ACCURACY_PERCENT,
    bellperson_memory_gb,
    bellperson_times,
    libsnark_times,
    orion_arkworks_times,
)
from ..gpu import (
    CPU_C5A_8XLARGE,
    GpuCostModel,
    get_gpu,
    run_cpu,
    run_naive,
    run_pipelined,
)
from ..pipeline import (
    BatchZkpSystem,
    encoder_graph,
    merkle_graph,
    sumcheck_graph,
)
from ..zkml import simulate_vgg16_service, vgg16_cifar10

DEFAULT_DEVICE = "GH200"
SIZES = (18, 19, 20, 21, 22)

#: Paper values (throughput per ms) for Tables 3-5, keyed by log2 size.
PAPER_TABLE3 = {
    "cpu": {22: 2.140e-3, 21: 4.290e-3, 20: 8.600e-3, 19: 17.21e-3, 18: 34.45e-3},
    "gpu_baseline": {22: 0.845, 21: 1.412, 20: 2.137, 19: 3.003, 18: 3.861},
    "ours": {22: 1.698, 21: 3.356, 20: 6.536, 19: 12.658, 18: 23.810},
}
PAPER_TABLE4 = {
    "cpu": {22: 0.382e-3, 21: 0.773e-3, 20: 1.583e-3, 19: 3.241e-3, 18: 6.497e-3},
    "gpu_baseline": {22: 0.969, 21: 1.497, 20: 2.160, 19: 2.865, 18: 3.378},
    "ours": {22: 1.461, 21: 2.884, 20: 5.622, 19: 10.610, 18: 19.753},
}
PAPER_TABLE5 = {
    "cpu": {22: 0.216e-3, 21: 0.643e-3, 20: 1.699e-3, 19: 3.510e-3, 18: 7.242e-3},
    "gpu_baseline": {22: 0.031, 21: 0.061, 20: 0.114, 19: 0.211, 18: 0.328},
    "ours": {22: 0.182, 21: 0.365, 20: 0.726, 19: 1.550, 18: 3.115},
}
#: Table 6 latency (ms), keyed by (module, log2 size, scheme).
PAPER_TABLE6 = {
    ("merkle", 18, "baseline"): 0.259,
    ("merkle", 18, "ours"): 0.668,
    ("sumcheck", 18, "baseline"): 0.296,
    ("sumcheck", 18, "ours"): 0.911,
    ("encoder", 18, "baseline"): 3.048,
    ("encoder", 18, "ours"): 4.494,
    ("merkle", 20, "baseline"): 0.468,
    ("merkle", 20, "ours"): 2.913,
    ("sumcheck", 20, "baseline"): 0.463,
    ("sumcheck", 20, "ours"): 3.557,
    ("encoder", 20, "baseline"): 8.760,
    ("encoder", 20, "ours"): 22.14,
}
#: Table 7 "Ours" (ms, GH200): merkle, sumcheck, encoder, total.
PAPER_TABLE7_OURS = {
    18: (0.167, 1.782, 0.479, 2.524),
    19: (0.286, 2.713, 0.833, 4.021),
    20: (0.535, 3.699, 1.597, 6.161),
    21: (1.004, 6.392, 3.148, 11.189),
    22: (1.922, 10.817, 6.270, 20.305),
}
#: Table 8 (throughput /s, latency s) per device at S = 2^20.
PAPER_TABLE8 = {
    "V100": {"bell": (0.152, 6.579), "ours": (39.44, 0.709)},
    "A100": {"bell": (0.262, 3.817), "ours": (80.01, 0.371)},
    "3090Ti": {"bell": (0.337, 2.967), "ours": (95.44, 0.317)},
    "H100": {"bell": (0.370, 2.703), "ours": (106.8, 0.262)},
}
#: Table 9 (comm ms, comp ms, overall ms) per device.
PAPER_TABLE9 = {
    "V100": (22.95, 24.73, 25.35),
    "A100": (10.44, 12.41, 12.50),
    "3090Ti": (10.50, 10.42, 10.56),
    "H100": (4.90, 9.11, 9.37),
}
#: Table 10 ours memory (GB).
PAPER_TABLE10_OURS = {18: 0.08, 19: 0.10, 20: 0.15, 21: 0.25, 22: 0.44}
#: Table 11 ours.
PAPER_TABLE11_OURS = {"throughput": 9.5220, "latency": 15.2}


@dataclass
class TableRow:
    """One row of a regenerated table: labeled measured/paper value pairs."""

    label: str
    values: Dict[str, float] = dc_field(default_factory=dict)


def _module_graph(kind: str, lg: int, costs: GpuCostModel):
    if kind == "merkle":
        return merkle_graph(1 << lg, costs)
    if kind == "sumcheck":
        return sumcheck_graph(lg, costs)
    if kind == "encoder":
        return encoder_graph(1 << lg, costs)
    raise ValueError(f"unknown module {kind!r}")


def _module_penalty(kind: str, costs: GpuCostModel) -> Tuple[float, Optional[float]]:
    if kind == "merkle":
        return costs.naive_merkle_penalty, None
    if kind == "sumcheck":
        return costs.naive_sumcheck_penalty, None
    return costs.naive_encoder_penalty, costs.encoder_stage_launch_seconds


def compute_module_table(
    kind: str,
    paper: Dict[str, Dict[int, float]],
    device: str = DEFAULT_DEVICE,
    sizes: Tuple[int, ...] = SIZES,
    batch: int = 64,
) -> List[TableRow]:
    """Tables 3-5: module throughput (items/ms) — CPU, naive GPU, ours."""
    gpu = get_gpu(device)
    costs = GpuCostModel()
    penalty, launch = _module_penalty(kind, costs)
    rows = []
    for lg in sorted(sizes, reverse=True):
        graph = _module_graph(kind, lg, costs)
        ours = run_pipelined(gpu, graph, batch, costs=costs, include_transfers=False)
        naive = run_naive(
            gpu, graph, batch, costs=costs, compute_penalty=penalty,
            launch_seconds=launch,
        )
        cpu = run_cpu(CPU_C5A_8XLARGE, graph, 2)
        values = {
            "cpu": cpu.steady_throughput_per_ms,
            "gpu_baseline": naive.steady_throughput_per_ms,
            "ours": ours.steady_throughput_per_ms,
            "speedup_vs_cpu": ours.steady_throughput_per_second
            / cpu.steady_throughput_per_second,
            "speedup_vs_gpu": ours.steady_throughput_per_second
            / naive.steady_throughput_per_second,
        }
        # Paper reference cells exist only for the published sizes.
        for key in ("cpu", "gpu_baseline", "ours"):
            if lg in paper[key]:
                values[f"{key}_paper"] = paper[key][lg]
        rows.append(TableRow(label=f"2^{lg}", values=values))
    return rows


def compute_table3(**kw) -> List[TableRow]:
    """Table 3: Merkle tree module throughput (trees/ms)."""
    return compute_module_table("merkle", PAPER_TABLE3, **kw)


def compute_table4(**kw) -> List[TableRow]:
    """Table 4: sum-check module throughput (proofs/ms)."""
    return compute_module_table("sumcheck", PAPER_TABLE4, **kw)


def compute_table5(**kw) -> List[TableRow]:
    """Table 5: linear-time encoder throughput (codes/ms)."""
    return compute_module_table("encoder", PAPER_TABLE5, **kw)


def compute_table6(device: str = DEFAULT_DEVICE) -> List[TableRow]:
    """Table 6: per-module latency, non-pipelined baseline vs ours."""
    gpu = get_gpu(device)
    costs = GpuCostModel()
    rows = []
    for lg in (18, 20):
        for kind in ("merkle", "sumcheck", "encoder"):
            graph = _module_graph(kind, lg, costs)
            penalty, launch = _module_penalty(kind, costs)
            ours = run_pipelined(gpu, graph, 64, costs=costs, include_transfers=False)
            naive = run_naive(
                gpu, graph, 64, costs=costs, compute_penalty=penalty,
                launch_seconds=launch,
            )
            rows.append(
                TableRow(
                    label=f"2^{lg}/{kind}",
                    values={
                        "baseline_ms": naive.latency_seconds * 1e3,
                        "baseline_paper": PAPER_TABLE6[(kind, lg, "baseline")],
                        "ours_ms": ours.latency_seconds * 1e3,
                        "ours_paper": PAPER_TABLE6[(kind, lg, "ours")],
                        "ratio": naive.latency_seconds / ours.latency_seconds,
                    },
                )
            )
    return rows


def compute_fig9(device: str = "3090Ti", lg: int = 18) -> Dict[str, Dict[str, list]]:
    """Figure 9: utilization traces, pipelined vs baseline, per module.

    Returns {module: {"ours": [(t, util)...], "baseline": [...]}} on the
    paper's 3090Ti (10,752 CUDA cores).
    """
    gpu = get_gpu(device)
    costs = GpuCostModel()
    out: Dict[str, Dict[str, list]] = {}
    for kind in ("merkle", "sumcheck", "encoder"):
        graph = _module_graph(kind, lg, costs)
        penalty, launch = _module_penalty(kind, costs)
        ours = run_pipelined(
            gpu, graph, 64, costs=costs, include_transfers=False, trace_samples=100
        )
        naive = run_naive(
            gpu, graph, 64, costs=costs, compute_penalty=penalty,
            launch_seconds=launch, trace_samples=100,
        )
        out[kind] = {
            "ours": ours.utilization_trace,
            "baseline": naive.utilization_trace,
            "ours_mean": ours.mean_utilization,
            "baseline_mean": naive.mean_utilization,
        }
    return out


def compute_table7(device: str = DEFAULT_DEVICE) -> List[TableRow]:
    """Table 7: amortized per-proof time across the four systems."""
    rows = []
    for lg in SIZES:
        scale = 1 << lg
        ours = BatchZkpSystem(device, scale=scale).simulate(batch_size=256)
        lib = libsnark_times(scale)
        bell = bellperson_times(scale, device if device in ("GH200",) else "GH200")
        oa = orion_arkworks_times(scale)
        bd = ours.module_amortized_seconds
        paper_m, paper_s, paper_e, paper_t = PAPER_TABLE7_OURS[lg]
        rows.append(
            TableRow(
                label=f"2^{lg}",
                values={
                    "libsnark_ms": lib.total_seconds * 1e3,
                    "bellperson_ms": bell.total_seconds * 1e3,
                    "orion_ark_ms": oa.total_seconds * 1e3,
                    "ours_merkle_ms": bd["merkle"] * 1e3,
                    "ours_merkle_paper": paper_m,
                    "ours_sumcheck_ms": bd["sumcheck"] * 1e3,
                    "ours_sumcheck_paper": paper_s,
                    "ours_encoder_ms": bd["encoder"] * 1e3,
                    "ours_encoder_paper": paper_e,
                    "ours_ms": ours.sim.beat.overall_seconds * 1e3,
                    "ours_paper": paper_t,
                    "speedup_vs_bellperson": bell.total_seconds
                    / ours.sim.beat.overall_seconds,
                    "speedup_vs_orion_ark": oa.total_seconds
                    / ours.sim.beat.overall_seconds,
                },
            )
        )
    return rows


def compute_breakdown(device: str = DEFAULT_DEVICE, lg: int = 20) -> Dict[str, float]:
    """§6.3: decompose the total speedup into protocol and pipeline parts."""
    scale = 1 << lg
    ours = BatchZkpSystem(device, scale=scale).simulate(batch_size=256)
    lib = libsnark_times(scale).total_seconds
    bell = bellperson_times(scale).total_seconds
    oa = orion_arkworks_times(scale).total_seconds
    ours_s = ours.sim.beat.overall_seconds
    protocol_speedup = lib / oa  # new ZKP protocol, both on CPU
    total_speedup = bell / ours_s  # both on GPU
    return {
        "protocol_speedup": protocol_speedup,
        "total_speedup_vs_bellperson": total_speedup,
        "pipeline_speedup": total_speedup / protocol_speedup,
        "paper_protocol_speedup": 24.34,
        "paper_pipeline_speedup": 14.70,
    }


def compute_table8(scale_log2: int = 20) -> List[TableRow]:
    """Table 8: throughput and latency across GPUs at S = 2^20."""
    rows = []
    for dev in ("V100", "A100", "3090Ti", "H100"):
        ours = BatchZkpSystem(dev, scale=1 << scale_log2).simulate(batch_size=256)
        bell = bellperson_times(1 << scale_log2, dev)
        paper = PAPER_TABLE8[dev]
        thpt = ours.sim.steady_throughput_per_second
        rows.append(
            TableRow(
                label=dev,
                values={
                    "bell_latency_s": bell.total_seconds,
                    "bell_latency_paper": paper["bell"][1],
                    "bell_throughput": 1.0 / bell.total_seconds,
                    "bell_throughput_paper": paper["bell"][0],
                    "ours_latency_s": ours.latency_seconds,
                    "ours_latency_paper": paper["ours"][1],
                    "ours_throughput": thpt,
                    "ours_throughput_paper": paper["ours"][0],
                    "throughput_speedup": thpt * bell.total_seconds,
                },
            )
        )
    return rows


def compute_table9(scale_log2: int = 20) -> List[TableRow]:
    """Table 9: per-beat communication/computation overlap per device."""
    rows = []
    for dev in ("V100", "A100", "3090Ti", "H100"):
        res = BatchZkpSystem(dev, scale=1 << scale_log2).simulate(batch_size=256)
        beat = res.sim.beat
        paper = PAPER_TABLE9[dev]
        rows.append(
            TableRow(
                label=dev,
                values={
                    "comm_mb": beat.comm_bytes / 1e6,
                    "comm_ms": beat.comm_seconds * 1e3,
                    "comm_paper": paper[0],
                    "comp_ms": beat.comp_seconds * 1e3,
                    "comp_paper": paper[1],
                    "overall_ms": beat.overall_seconds * 1e3,
                    "overall_paper": paper[2],
                },
            )
        )
    return rows


def compute_table10(device: str = DEFAULT_DEVICE) -> List[TableRow]:
    """Table 10: amortized device memory per in-flight proof."""
    rows = []
    for lg in SIZES:
        res = BatchZkpSystem(device, scale=1 << lg).simulate(batch_size=64)
        rows.append(
            TableRow(
                label=f"2^{lg}",
                values={
                    "bellperson_gb": bellperson_memory_gb(1 << lg),
                    "ours_gb": res.memory_high_water_gb,
                    "ours_paper": PAPER_TABLE10_OURS[lg],
                    "reduction": bellperson_memory_gb(1 << lg)
                    / res.memory_high_water_gb,
                },
            )
        )
    return rows


def compute_table11(device: str = DEFAULT_DEVICE) -> List[TableRow]:
    """Table 11: verifiable VGG-16/CIFAR-10 across systems."""
    model = vgg16_cifar10()
    res = simulate_vgg16_service(model, device=device)
    thpt = res.sim.steady_throughput_per_second
    rows = [
        TableRow(
            label=name,
            values={
                "throughput": base.throughput_per_second,
                "latency_s": base.latency_seconds,
                "accuracy": base.accuracy_percent,
            },
        )
        for name, base in ZKML_BASELINES.items()
    ]
    rows.append(
        TableRow(
            label="Ours",
            values={
                "throughput": thpt,
                "throughput_paper": PAPER_TABLE11_OURS["throughput"],
                "latency_s": res.latency_seconds,
                "latency_paper": PAPER_TABLE11_OURS["latency"],
                "accuracy": OURS_ACCURACY_PERCENT,
                "gates": float(model.gate_count()),
            },
        )
    )
    return rows


def format_rows(title: str, rows: List[TableRow], precision: int = 4) -> str:
    """Render rows as an aligned text table."""
    if not rows:
        return f"{title}\n(no rows)"
    keys: List[str] = []
    for row in rows:
        for k in row.values:
            if k not in keys:
                keys.append(k)
    header = ["size/system"] + keys
    lines = [title, " | ".join(f"{h:>18s}" for h in header)]
    for row in rows:
        cells = [f"{row.label:>18s}"]
        for k in keys:
            v = row.values.get(k)
            cells.append(f"{v:>18.{precision}g}" if v is not None else " " * 18)
        lines.append(" | ".join(cells))
    return "\n".join(lines)
