"""Benchmark harness (system S12 in DESIGN.md).

One ``compute_table*`` / ``compute_fig9`` runner per paper evaluation
artifact; ``format_rows`` renders the paper-style text tables.  The
``benchmarks/`` directory times these runners under pytest-benchmark and
prints the tables.
"""

from .sensitivity import (
    SensitivityPoint,
    sensitivity_sweep,
    summarize,
)
from .tables import (
    TableRow,
    compute_breakdown,
    compute_fig9,
    compute_module_table,
    compute_table3,
    compute_table4,
    compute_table5,
    compute_table6,
    compute_table7,
    compute_table8,
    compute_table9,
    compute_table10,
    compute_table11,
    format_rows,
)

__all__ = [
    "TableRow",
    "compute_module_table",
    "compute_table3",
    "compute_table4",
    "compute_table5",
    "compute_table6",
    "compute_fig9",
    "compute_table7",
    "compute_breakdown",
    "compute_table8",
    "compute_table9",
    "compute_table10",
    "compute_table11",
    "format_rows",
    "sensitivity_sweep",
    "summarize",
    "SensitivityPoint",
]
