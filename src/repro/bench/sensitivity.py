"""Calibration-sensitivity analysis: do the conclusions survive the
cost model being wrong?

The simulator's absolute constants are calibrated from the paper's own
tables (see :mod:`repro.gpu.costs`).  A fair question for any simulated
reproduction is how much the *conclusions* depend on those constants.
This module perturbs each calibrated constant across a factor range and
re-evaluates the headline claims:

* pipelined beats the kernel-per-task baseline at every module size;
* the pipelined advantage grows as inputs shrink;
* the full system beats Bellperson by >100x.

The benches assert the claims hold across the entire sweep — i.e. the
paper's qualitative results are properties of the *scheduling*, not of
our calibration choices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..baselines import bellperson_times
from ..gpu import GpuCostModel, get_gpu, run_naive, run_pipelined
from ..pipeline import BatchZkpSystem, merkle_graph

#: The calibrated constants we stress, with the factor grid.
PERTURBED_FIELDS = (
    "hash_cycles",
    "sumcheck_entry_cycles",
    "encoder_mac_cycles",
    "kernel_launch_seconds",
    "naive_merkle_penalty",
)
DEFAULT_FACTORS = (0.5, 0.75, 1.0, 1.5, 2.0)


@dataclass(frozen=True)
class SensitivityPoint:
    """Claim metrics under one perturbed cost model."""

    field_name: str
    factor: float
    module_speedup_small: float  # pipelined/naive @ Merkle 2^16
    module_speedup_large: float  # pipelined/naive @ Merkle 2^20
    system_speedup_vs_bellperson: float

    @property
    def claims_hold(self) -> bool:
        return (
            self.module_speedup_small > 1.0
            and self.module_speedup_large > 1.0
            and self.module_speedup_small > self.module_speedup_large
            and self.system_speedup_vs_bellperson > 100.0
        )


def _evaluate(costs: GpuCostModel, field_name: str, factor: float) -> SensitivityPoint:
    gh = get_gpu("GH200")
    speedups = {}
    for lg in (16, 20):
        graph = merkle_graph(1 << lg, costs)
        pipe = run_pipelined(gh, graph, 64, costs=costs, include_transfers=False)
        naive = run_naive(
            gh, graph, 64, costs=costs,
            compute_penalty=costs.naive_merkle_penalty,
        )
        speedups[lg] = (
            pipe.steady_throughput_per_second / naive.steady_throughput_per_second
        )
    system = BatchZkpSystem("GH200", scale=1 << 20, costs=costs).simulate(128)
    bell = bellperson_times(1 << 20).total_seconds
    return SensitivityPoint(
        field_name=field_name,
        factor=factor,
        module_speedup_small=speedups[16],
        module_speedup_large=speedups[20],
        system_speedup_vs_bellperson=bell / system.sim.beat.overall_seconds,
    )


def sensitivity_sweep(
    factors: Sequence[float] = DEFAULT_FACTORS,
    fields: Sequence[str] = PERTURBED_FIELDS,
) -> List[SensitivityPoint]:
    """Perturb each constant independently; return all claim evaluations."""
    base = GpuCostModel()
    points: List[SensitivityPoint] = []
    for field_name in fields:
        for factor in factors:
            perturbed = base.with_overrides(
                **{field_name: getattr(base, field_name) * factor}
            )
            points.append(_evaluate(perturbed, field_name, factor))
    return points


def summarize(points: Sequence[SensitivityPoint]) -> Dict[str, object]:
    """Aggregate: do all claims hold, and what are the metric ranges?"""
    return {
        "all_claims_hold": all(p.claims_hold for p in points),
        "violations": [
            (p.field_name, p.factor) for p in points if not p.claims_hold
        ],
        "bellperson_speedup_range": (
            min(p.system_speedup_vs_bellperson for p in points),
            max(p.system_speedup_vs_bellperson for p in points),
        ),
        "small_module_speedup_range": (
            min(p.module_speedup_small for p in points),
            max(p.module_speedup_small for p in points),
        ),
    }
