"""Empirical analysis of the expander code's quality.

The Brakedown-style commitment's soundness rests on the code's minimum
distance, which for pseudorandom expanders holds with overwhelming
probability but is not certified per instance.  This module provides the
measurement tools an operator would use to gain confidence in a sampled
code:

* :func:`sample_min_weight` — empirical minimum codeword weight over
  random sparse messages (an upper bound on the true distance, and a
  strong smoke signal when it collapses).
* :func:`expansion_profile` — per-stage bipartite-graph statistics
  (column-degree spread, isolated right vertices).
* :func:`rate_summary` — realized rate/overhead accounting.

These feed the test suite's code-quality checks and give downstream users
a ready-made audit entry point.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..errors import EncodingError
from .spielman import SpielmanEncoder


@dataclass(frozen=True)
class StageStats:
    """Connectivity statistics of one stage's bipartite graph."""

    stage: int
    kind: str  # "A" (shrinking) or "B" (parity)
    n_in: int
    n_out: int
    nnz: int
    min_col_degree: int
    max_col_degree: int
    isolated_columns: int  # right vertices with no incoming edge

    @property
    def mean_col_degree(self) -> float:
        return self.nnz / self.n_out if self.n_out else 0.0


def expansion_profile(encoder: SpielmanEncoder) -> List[StageStats]:
    """Per-graph connectivity statistics for every recursion stage."""
    stats: List[StageStats] = []
    for stage in encoder.stages:
        for kind, matrix in (("A", stage.matrix_a), ("B", stage.matrix_b)):
            degrees = matrix.column_degrees()
            stats.append(
                StageStats(
                    stage=stage.index,
                    kind=kind,
                    n_in=matrix.n_in,
                    n_out=matrix.n_out,
                    nnz=matrix.nnz,
                    min_col_degree=min(degrees),
                    max_col_degree=max(degrees),
                    isolated_columns=sum(1 for d in degrees if d == 0),
                )
            )
    return stats


def sample_min_weight(
    encoder: SpielmanEncoder,
    trials: int = 50,
    sparsity: int = 1,
    rng: Optional[random.Random] = None,
) -> int:
    """Minimum codeword Hamming weight over random ``sparsity``-sparse
    nonzero messages.

    Sparse messages are the adversary's best shot at a low-weight
    codeword; systematic codes guarantee weight >= sparsity, and a healthy
    expander spreads every message symbol across many parity symbols.
    """
    if trials < 1:
        raise EncodingError("need at least one trial")
    rng = rng or random.Random(0)
    field = encoder.field
    n = encoder.message_length
    best = encoder.codeword_length + 1
    for _ in range(trials):
        message = [0] * n
        for idx in rng.sample(range(n), min(sparsity, n)):
            message[idx] = field.rand_nonzero(rng)
        weight = sum(1 for v in encoder.encode(message) if v)
        best = min(best, weight)
    return best


@dataclass(frozen=True)
class RateSummary:
    message_length: int
    codeword_length: int
    stages: int
    total_nnz: int

    @property
    def rate(self) -> float:
        return self.message_length / self.codeword_length

    @property
    def macs_per_symbol(self) -> float:
        """Encoding cost per message symbol — the O(N) constant."""
        return self.total_nnz / self.message_length


def rate_summary(encoder: SpielmanEncoder) -> RateSummary:
    """Realized rate and per-symbol encoding cost of one encoder."""
    return RateSummary(
        message_length=encoder.message_length,
        codeword_length=encoder.codeword_length,
        stages=encoder.num_stages,
        total_nnz=encoder.total_nnz(),
    )


def audit(encoder: SpielmanEncoder, trials: int = 30) -> Dict[str, object]:
    """One-call health report for a sampled code instance."""
    profile = expansion_profile(encoder)
    return {
        "rate": rate_summary(encoder),
        "stages": profile,
        "min_weight_1sparse": sample_min_weight(encoder, trials, sparsity=1),
        "min_weight_2sparse": sample_min_weight(encoder, trials, sparsity=2),
        "isolated_columns_total": sum(s.isolated_columns for s in profile),
    }
