"""Linear-time encoder module (system S5 in DESIGN.md; paper §2.4, §3.3).

* :class:`SparseMatrix` — field sparse matrices (the bipartite graphs).
* :class:`SpielmanEncoder` — recursive (Figure 3) and two-pass iterative
  (Figure 6) encodings, deterministic from a seed, with a vectorised
  Mersenne-31 path.
* Warp scheduling: bucket-sorted row→warp assignment and its SIMD cost
  metrics (§3.3).
"""

from .analysis import (
    RateSummary,
    StageStats,
    audit,
    expansion_profile,
    rate_summary,
    sample_min_weight,
)
from .schedule import (
    WARP_SIZE,
    WarpAssignment,
    WarpSchedule,
    bucket_sort_rows,
    sorted_schedule,
    sorting_speedup,
    unsorted_schedule,
)
from .sparse import MAX_ROW_WEIGHT, SparseMatrix
from .spielman import EncoderParams, EncoderStage, SpielmanEncoder

__all__ = [
    "SparseMatrix",
    "MAX_ROW_WEIGHT",
    "SpielmanEncoder",
    "EncoderParams",
    "EncoderStage",
    "bucket_sort_rows",
    "sorted_schedule",
    "unsorted_schedule",
    "sorting_speedup",
    "WarpSchedule",
    "WarpAssignment",
    "WARP_SIZE",
    "audit",
    "expansion_profile",
    "sample_min_weight",
    "rate_summary",
    "RateSummary",
    "StageStats",
]
