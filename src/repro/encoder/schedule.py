"""Bucket-sorted row→warp scheduling (paper §3.3).

GPU warps execute 32 threads in SIMD lockstep, so a warp multiplying the
vector against 32 sparse rows takes as long as its *longest* row.  The
paper sorts rows by length — bucket sort, since lengths fit one byte — and
assigns every 32 rows of similar length to one warp, shrinking the
``Σ max`` overhead toward the ideal ``Σ len``.

This module implements that scheduling and its cost metrics.  It feeds the
GPU cost model (warp-cycles for sparse multiplication kernels) and the
ablation bench comparing sorted vs unsorted assignment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..errors import EncodingError
from .sparse import MAX_ROW_WEIGHT

WARP_SIZE = 32


def bucket_sort_rows(row_lengths: Sequence[int]) -> List[int]:
    """Return row indices ordered by length via counting/bucket sort.

    O(n + 256): "the optimal sorting method for data with a few distinct
    values" (§3.3).  Stable within a bucket so the permutation is
    deterministic.
    """
    buckets: List[List[int]] = [[] for _ in range(MAX_ROW_WEIGHT + 1)]
    for idx, length in enumerate(row_lengths):
        if not 0 <= length <= MAX_ROW_WEIGHT:
            raise EncodingError(
                f"row length {length} outside [0, {MAX_ROW_WEIGHT}]"
            )
        buckets[length].append(idx)
    order: List[int] = []
    for bucket in buckets:
        order.extend(bucket)
    return order


@dataclass(frozen=True)
class WarpAssignment:
    """Rows assigned to one warp, plus the warp's SIMD cost."""

    warp_index: int
    row_indices: List[int]
    max_length: int

    @property
    def simd_cost(self) -> int:
        """Warp-cycles: every lane waits for the longest row."""
        return self.max_length


@dataclass(frozen=True)
class WarpSchedule:
    """A complete row→warp assignment with its aggregate costs."""

    warps: List[WarpAssignment]
    total_work: int  # Σ row lengths — the unavoidable work
    simd_cost: int  # Σ per-warp max·1 — what SIMD execution actually costs

    @property
    def imbalance(self) -> float:
        """SIMD cost over ideal cost (≥ 1.0; 1.0 is perfectly balanced).

        Ideal is ``ceil(total_work / WARP_SIZE)`` warp-cycles; actual is
        ``Σ max(len)`` per warp.
        """
        ideal = max(1, -(-self.total_work // WARP_SIZE))
        return self.simd_cost / ideal

    @property
    def wasted_lanes(self) -> int:
        """Lane-cycles spent idle waiting for the longest row."""
        return self.simd_cost * WARP_SIZE - self.total_work


def _schedule(row_lengths: Sequence[int], order: Sequence[int]) -> WarpSchedule:
    warps: List[WarpAssignment] = []
    for w, start in enumerate(range(0, len(order), WARP_SIZE)):
        rows = list(order[start : start + WARP_SIZE])
        max_len = max(row_lengths[i] for i in rows) if rows else 0
        warps.append(WarpAssignment(warp_index=w, row_indices=rows, max_length=max_len))
    total = sum(row_lengths)
    simd = sum(w.max_length for w in warps)
    return WarpSchedule(warps=warps, total_work=total, simd_cost=simd)


def sorted_schedule(row_lengths: Sequence[int]) -> WarpSchedule:
    """The paper's scheme: bucket-sort, then chunk into warps of 32."""
    return _schedule(row_lengths, bucket_sort_rows(row_lengths))


def unsorted_schedule(row_lengths: Sequence[int]) -> WarpSchedule:
    """Baseline: rows assigned to warps in natural order."""
    return _schedule(row_lengths, list(range(len(row_lengths))))


def sorting_speedup(row_lengths: Sequence[int]) -> float:
    """SIMD-cost ratio unsorted/sorted (> 1 means sorting helped)."""
    unsorted = unsorted_schedule(row_lengths).simd_cost
    sorted_ = sorted_schedule(row_lengths).simd_cost
    return unsorted / sorted_ if sorted_ else 1.0
