"""Sparse matrices over prime fields (paper §2.4, §3.3).

The linear-time encoder's bipartite graphs are represented as sparse
matrices: "right vertices correspond to rows of the matrix and left
vertices correspond to columns.  A non-zero entry in the sparse matrix
represents an edge between two vertices" (§2.4).  We store the transpose
view that the encoding actually uses — a vector-matrix product
``y = x · A`` where ``x`` indexes the *left* vertices.

Representation is row-major COO grouped by row (one adjacency list per
left vertex), plus flat numpy index arrays for the vectorised Mersenne-31
fast path.  Row lengths are bounded (< 256 non-zeros, §3.3) so they fit a
byte — the property the paper's bucket-sorted warp scheduling relies on.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import EncodingError
from ..field.fast31 import f31_mul
from ..field.fast61 import F61SpMV, as_f61
from ..field.prime_field import PrimeField
from ..field.primes import MERSENNE31, MERSENNE61
from ..kernels import field_kernels as _kernels
from ..kernels.dispatch import kernels_enabled

MAX_ROW_WEIGHT = 255  # rows must fit a single byte of length (§3.3)


class SparseMatrix:
    """A sparse ``n_in × n_out`` matrix over GF(p), applied as ``y = x·A``.

    ``rows[i]`` lists the ``(column, weight)`` pairs of left vertex ``i``.
    """

    __slots__ = ("field", "n_in", "n_out", "rows", "_coo", "_f61")

    def __init__(
        self,
        field: PrimeField,
        n_in: int,
        n_out: int,
        rows: List[List[Tuple[int, int]]],
    ):
        if len(rows) != n_in:
            raise EncodingError(f"expected {n_in} rows, got {len(rows)}")
        for i, row in enumerate(rows):
            if len(row) > MAX_ROW_WEIGHT:
                raise EncodingError(
                    f"row {i} has {len(row)} non-zeros (> {MAX_ROW_WEIGHT})"
                )
            for j, w in row:
                if not 0 <= j < n_out:
                    raise EncodingError(f"row {i}: column {j} out of range")
                if not 0 < w < field.modulus:
                    raise EncodingError(f"row {i}: weight {w} not a nonzero residue")
        self.field = field
        self.n_in = n_in
        self.n_out = n_out
        self.rows = rows
        self._coo: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None
        self._f61: Optional[F61SpMV] = None

    # -- construction -------------------------------------------------------

    @classmethod
    def random_expander(
        cls,
        field: PrimeField,
        n_in: int,
        n_out: int,
        row_weight: int,
        rng: random.Random,
    ) -> "SparseMatrix":
        """A pseudorandom bipartite graph with fixed left degree.

        Each left vertex connects to ``min(row_weight, n_out)`` distinct
        right vertices with uniformly random nonzero weights.  Random
        bipartite graphs of constant degree are expanders with overwhelming
        probability — the standard instantiation used by Brakedown-style
        codes.
        """
        if n_in <= 0 or n_out <= 0:
            raise EncodingError("matrix dimensions must be positive")
        weight = min(row_weight, n_out)
        if weight <= 0 or weight > MAX_ROW_WEIGHT:
            raise EncodingError(f"row weight {weight} out of range")
        p = field.modulus
        rows: List[List[Tuple[int, int]]] = []
        for _ in range(n_in):
            cols = rng.sample(range(n_out), weight)
            row = sorted((j, rng.randrange(1, p)) for j in cols)
            rows.append(row)
        return cls(field, n_in, n_out, rows)

    @classmethod
    def dense_random(
        cls, field: PrimeField, n_in: int, n_out: int, rng: random.Random
    ) -> "SparseMatrix":
        """A dense random matrix (used as the recursion-base generator)."""
        if n_out > MAX_ROW_WEIGHT:
            raise EncodingError(
                f"dense base matrix wider than {MAX_ROW_WEIGHT} columns"
            )
        p = field.modulus
        rows = [
            [(j, rng.randrange(1, p)) for j in range(n_out)] for _ in range(n_in)
        ]
        return cls(field, n_in, n_out, rows)

    # -- application ----------------------------------------------------------

    def apply(self, x: Sequence[int]) -> List[int]:
        """Compute ``y = x · A`` over the field (SpMV kernel).

        On the fast path with the default Mersenne-61 field this is the
        vectorised gather/segment-sum of :class:`~repro.field.fast61.F61SpMV`,
        built (and cached) from the adjacency lists on first use.  Results
        are bit-identical to the scalar kernel — the limb arithmetic is
        exact.
        """
        if len(x) != self.n_in:
            raise EncodingError(f"input length {len(x)} != n_in {self.n_in}")
        if kernels_enabled() and self.field.modulus == MERSENNE61:
            return self._ensure_f61().apply(as_f61(x)).tolist()
        return _kernels.spmv(self.field, self.rows, x, self.n_out)

    def _ensure_f61(self) -> F61SpMV:
        if self._f61 is None:
            src: List[int] = []
            dst: List[int] = []
            wval: List[int] = []
            for i, row in enumerate(self.rows):
                for j, w in row:
                    src.append(i)
                    dst.append(j)
                    wval.append(w)
            self._f61 = F61SpMV(src, dst, wval, self.n_in, self.n_out)
        return self._f61

    def _ensure_coo(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        if self._coo is None:
            ridx: List[int] = []
            cidx: List[int] = []
            wval: List[int] = []
            for i, row in enumerate(self.rows):
                for j, w in row:
                    ridx.append(i)
                    cidx.append(j)
                    wval.append(w)
            self._coo = (
                np.asarray(ridx, dtype=np.int64),
                np.asarray(cidx, dtype=np.int64),
                np.asarray(wval, dtype=np.uint64),
            )
        return self._coo

    def apply_f31(self, x: np.ndarray) -> np.ndarray:
        """Vectorised ``y = x · A`` for the Mersenne-31 field.

        Per-edge products are < p² < 2^62; scatter-adds accumulate at most
        column-degree many < 2^31 terms, comfortably inside ``uint64``
        before the final reduction.
        """
        if self.field.modulus != MERSENNE31:
            raise EncodingError("apply_f31 requires the Mersenne-31 field")
        if x.shape != (self.n_in,):
            raise EncodingError(f"input shape {x.shape} != ({self.n_in},)")
        ridx, cidx, wval = self._ensure_coo()
        contrib = f31_mul(x[ridx], wval)
        y = np.zeros(self.n_out, dtype=np.uint64)
        np.add.at(y, cidx, contrib)
        return y % np.uint64(MERSENNE31)

    # -- statistics -----------------------------------------------------------

    @property
    def nnz(self) -> int:
        return sum(len(r) for r in self.rows)

    def row_lengths(self) -> List[int]:
        return [len(r) for r in self.rows]

    def column_degrees(self) -> List[int]:
        deg = [0] * self.n_out
        for row in self.rows:
            for j, _ in row:
                deg[j] += 1
        return deg

    def density(self) -> float:
        return self.nnz / float(self.n_in * self.n_out)

    def __repr__(self) -> str:
        return (
            f"SparseMatrix({self.n_in}x{self.n_out}, nnz={self.nnz}, "
            f"field={self.field.name})"
        )
