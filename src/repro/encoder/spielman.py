"""The Spielman-style linear-time encoder (paper §2.4, §3.3, Figure 3/6).

The encoder is recursive: each stage uses two bipartite graphs (sparse
matrices).  Stage ``k`` with message ``y_k`` of length ``n_k``:

1. ``y_{k+1} = y_k · A_k``              (first vector-matrix multiply;
                                          ``A_k`` is ``n_k × α·n_k``)
2. ``z_{k+1} = Enc_{k+1}(y_{k+1})``      (recurse; base case is a small
                                          dense generator)
3. ``v_k     = z_{k+1} · B_k``           (second vector-matrix multiply)
4. ``Enc_k(y_k) = y_k ‖ z_{k+1} ‖ v_k``  (systematic codeword)

With inverse rate ``q`` the codeword has length ``q·n_k``; ``B_k`` maps the
``q·α·n_k`` symbols of ``z_{k+1}`` onto the remaining
``q·n_k − n_k − q·α·n_k`` parity symbols.

§3.3 observes that recursion is hostile to GPUs (stack depth) and splits
the process into **two interleaved pipelines** (Figure 6): a forward pass
performing all first multiplications large→small, and a backward pass
performing all second multiplications small→large.  Both forms are
implemented here and are bit-identical; tests cross-check them.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..errors import EncodingError
from ..field.prime_field import PrimeField
from ..field.primes import MERSENNE31
from .sparse import SparseMatrix


@dataclass(frozen=True)
class EncoderParams:
    """Tunable parameters of the expander code.

    Attributes:
        alpha:        Message-shrink factor per stage (0 < α < (q−1)/q).
        inv_rate:     q — codeword length is q·message length.
        row_weight_a: Left degree of the first (shrinking) graphs.
        row_weight_b: Left degree of the second (parity) graphs.
        base_size:    Messages at or below this length use a dense random
                      generator instead of recursing.
    """

    alpha: float = 0.25
    inv_rate: int = 2
    row_weight_a: int = 8
    row_weight_b: int = 8
    base_size: int = 32

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha < 1.0:
            raise EncodingError(f"alpha must be in (0,1), got {self.alpha}")
        if self.inv_rate < 2:
            raise EncodingError("inverse rate must be >= 2")
        if self.inv_rate * (1 - self.alpha) <= 1:
            raise EncodingError(
                "parameters leave no parity symbols: need q(1-alpha) > 1"
            )
        if self.base_size < 2:
            raise EncodingError("base_size must be >= 2")

    def codeword_length(self, message_length: int) -> int:
        return self.inv_rate * message_length


@dataclass(frozen=True)
class EncoderStage:
    """One recursion stage's matrices and sizes (a pair of bipartite graphs)."""

    index: int
    message_length: int  # n_k
    shrunk_length: int  # α·n_k   (output of A_k)
    parity_length: int  # q·n_k − n_k − q·α·n_k (output of B_k)
    matrix_a: SparseMatrix
    matrix_b: SparseMatrix

    @property
    def codeword_length(self) -> int:
        return (
            self.message_length + self.matrix_b.n_in + self.parity_length
        )


class SpielmanEncoder:
    """A deterministic linear-time encoder for a fixed message length.

    All bipartite graphs are derived from ``seed``, so prover and verifier
    construct identical codes — a requirement of the Brakedown commitment.

    >>> from repro.field import DEFAULT_FIELD
    >>> enc = SpielmanEncoder(DEFAULT_FIELD, 64, seed=7)
    >>> cw = enc.encode([1] * 64)
    >>> len(cw) == enc.codeword_length and cw[:64] == [1] * 64
    True
    """

    def __init__(
        self,
        field: PrimeField,
        message_length: int,
        params: Optional[EncoderParams] = None,
        seed: int = 0,
    ):
        if message_length < 1:
            raise EncodingError("message length must be positive")
        self.field = field
        self.message_length = message_length
        self.params = params or EncoderParams()
        self.seed = seed
        rng = random.Random(("spielman", seed, field.modulus, message_length).__repr__())
        self.stages: List[EncoderStage] = []
        self.base_matrix: Optional[SparseMatrix] = None
        self._build(rng)

    # -- construction -------------------------------------------------------

    def _build(self, rng: random.Random) -> None:
        q = self.params.inv_rate
        n = self.message_length
        index = 0
        while n > self.params.base_size:
            shrunk = max(1, math.ceil(self.params.alpha * n))
            z_len = q * shrunk  # length of the recursive codeword
            parity = q * n - n - z_len
            if parity <= 0:
                # Too small for a full stage; fall through to the base case.
                break
            matrix_a = SparseMatrix.random_expander(
                self.field, n, shrunk, self.params.row_weight_a, rng
            )
            matrix_b = SparseMatrix.random_expander(
                self.field, z_len, parity, self.params.row_weight_b, rng
            )
            self.stages.append(
                EncoderStage(
                    index=index,
                    message_length=n,
                    shrunk_length=shrunk,
                    parity_length=parity,
                    matrix_a=matrix_a,
                    matrix_b=matrix_b,
                )
            )
            n = shrunk
            index += 1
        # Base case: a dense random generator with a systematic prefix,
        # giving Enc(y) = y ‖ y·G of length q·|y|.
        self.base_message_length = n
        self.base_matrix = SparseMatrix.dense_random(
            self.field, n, (q - 1) * n, rng
        )

    @property
    def codeword_length(self) -> int:
        return self.params.codeword_length(self.message_length)

    @property
    def num_stages(self) -> int:
        return len(self.stages)

    def total_nnz(self) -> int:
        """Total non-zeros across all graphs — the O(N) work bound."""
        total = sum(s.matrix_a.nnz + s.matrix_b.nnz for s in self.stages)
        if self.base_matrix is not None:
            total += self.base_matrix.nnz
        return total

    # -- base case ----------------------------------------------------------------

    def _encode_base(self, message: List[int]) -> List[int]:
        assert self.base_matrix is not None
        return list(message) + self.base_matrix.apply(message)

    # -- recursive form (Figure 3) --------------------------------------------------

    def encode_recursive(self, message: Sequence[int]) -> List[int]:
        """Direct recursive encoding — the textbook form of Figure 3."""
        msg = [v % self.field.modulus for v in message]
        if len(msg) != self.message_length:
            raise EncodingError(
                f"message length {len(msg)} != {self.message_length}"
            )
        return self._encode_from(0, msg)

    def _encode_from(self, stage_index: int, message: List[int]) -> List[int]:
        if stage_index >= len(self.stages):
            return self._encode_base(message)
        stage = self.stages[stage_index]
        if len(message) != stage.message_length:
            raise EncodingError(
                f"stage {stage_index}: message length {len(message)} != "
                f"{stage.message_length}"
            )
        shrunk = stage.matrix_a.apply(message)
        z = self._encode_from(stage_index + 1, shrunk)
        parity = stage.matrix_b.apply(z)
        return message + z + parity

    # -- two-pass iterative form (Figure 6) ------------------------------------------

    def encode(self, message: Sequence[int]) -> List[int]:
        """Two-pass iterative encoding (the paper's pipelined form).

        Pass 1 walks stages large→small computing every first
        multiplication; pass 2 walks small→large computing every second
        multiplication and assembling codewords.  Output is bit-identical
        to :meth:`encode_recursive`.
        """
        msg = [v % self.field.modulus for v in message]
        if len(msg) != self.message_length:
            raise EncodingError(
                f"message length {len(msg)} != {self.message_length}"
            )
        # Pass 1 (forward): y_0 = message, y_{k+1} = y_k · A_k.
        forward: List[List[int]] = [msg]
        for stage in self.stages:
            forward.append(stage.matrix_a.apply(forward[-1]))
        # Base encoding of the smallest message.
        z = self._encode_base(forward[-1])
        # Pass 2 (backward): z_k = y_k ‖ z_{k+1} ‖ z_{k+1}·B_k.
        for stage in reversed(self.stages):
            parity = stage.matrix_b.apply(z)
            z = forward[stage.index] + z + parity
        return z

    # -- batched encoding (commit hot path) --------------------------------------------

    def encode_many(self, messages: Sequence[Sequence[int]]) -> List[List[int]]:
        """Encode a batch of messages, one two-pass sweep for the whole batch.

        On the fast path with the default Mersenne-61 field every stage's
        SpMV runs once over a ``(R, n)`` matrix instead of R times over
        vectors — the functional analogue of the paper's batched kernel
        launches.  Output is bit-identical to mapping :meth:`encode`.
        """
        from ..field.primes import MERSENNE61
        from ..kernels.dispatch import kernels_enabled

        if (
            len(messages) < 2
            or not kernels_enabled()
            or self.field.modulus != MERSENNE61
        ):
            return [self.encode(m) for m in messages]
        try:
            batch = np.asarray(messages, dtype=np.uint64)
        except (OverflowError, TypeError, ValueError):
            return [self.encode(m) for m in messages]
        if batch.ndim != 2 or batch.shape[1] != self.message_length:
            raise EncodingError(
                f"batch shape {batch.shape} != (R, {self.message_length})"
            )
        return self._encode_batch61(batch).tolist()

    def _encode_batch61(self, batch: np.ndarray) -> np.ndarray:
        """Two-pass batched encoding on a canonicalized ``(R, n)`` array."""
        from ..field.fast61 import P61

        z = batch % P61
        forward = [z]
        for stage in self.stages:
            forward.append(stage.matrix_a._ensure_f61().apply_batch(forward[-1]))
        assert self.base_matrix is not None
        base_in = forward[-1]
        z = np.concatenate(
            [base_in, self.base_matrix._ensure_f61().apply_batch(base_in)], axis=1
        )
        for stage in reversed(self.stages):
            parity = stage.matrix_b._ensure_f61().apply_batch(z)
            z = np.concatenate([forward[stage.index], z, parity], axis=1)
        return z

    # -- vectorised Mersenne-31 path ---------------------------------------------------

    def encode_f31(self, message: np.ndarray) -> np.ndarray:
        """Two-pass encoding on numpy arrays (Mersenne-31 field only)."""
        if self.field.modulus != MERSENNE31:
            raise EncodingError("encode_f31 requires the Mersenne-31 field")
        if message.shape != (self.message_length,):
            raise EncodingError(
                f"message shape {message.shape} != ({self.message_length},)"
            )
        forward = [message.astype(np.uint64) % np.uint64(MERSENNE31)]
        for stage in self.stages:
            forward.append(stage.matrix_a.apply_f31(forward[-1]))
        base_in = [int(v) for v in forward[-1]]
        z = np.asarray(self._encode_base(base_in), dtype=np.uint64)
        for stage in reversed(self.stages):
            parity = stage.matrix_b.apply_f31(z)
            z = np.concatenate([forward[stage.index], z, parity])
        return z

    # -- codeword checking -------------------------------------------------------------

    def is_codeword(self, codeword: Sequence[int]) -> bool:
        """Check that ``codeword`` is a valid codeword of this code.

        Systematic codes make this cheap: re-encode the message prefix and
        compare.  Used by receivers validating relayed codewords and by the
        test suite's corruption checks.
        """
        if len(codeword) != self.codeword_length:
            return False
        message = [v % self.field.modulus for v in codeword[: self.message_length]]
        return self.encode(message) == [
            v % self.field.modulus for v in codeword
        ]

    # -- introspection for the pipeline scheduler ------------------------------------------

    def stage_work_profile(self) -> List[dict]:
        """Per-stage multiply-add counts, consumed by the GPU cost model.

        Returns two entries per recursion stage (the two pipelines of
        Figure 6) plus one for the base generator, each with the stage's
        non-zero count (= field multiply-adds) and output length.
        """
        profile = []
        for stage in self.stages:
            profile.append(
                {
                    "pipeline": "forward",
                    "stage": stage.index,
                    "nnz": stage.matrix_a.nnz,
                    "out_len": stage.shrunk_length,
                }
            )
        if self.base_matrix is not None:
            profile.append(
                {
                    "pipeline": "base",
                    "stage": len(self.stages),
                    "nnz": self.base_matrix.nnz,
                    "out_len": self.base_matrix.n_out,
                }
            )
        for stage in reversed(self.stages):
            profile.append(
                {
                    "pipeline": "backward",
                    "stage": stage.index,
                    "nnz": stage.matrix_b.nnz,
                    "out_len": stage.parity_length,
                }
            )
        return profile

    def __repr__(self) -> str:
        return (
            f"SpielmanEncoder(n={self.message_length}, q={self.params.inv_rate}, "
            f"stages={self.num_stages}, field={self.field.name})"
        )
