"""Vectorised arithmetic over the Mersenne-61 field (p = 2^61 − 1).

The numpy fast path for the library's *default* field, mirroring
:mod:`repro.field.fast31`.  Unlike Mersenne-31, products of two 61-bit
residues span 122 bits and do not fit a ``uint64``, so multiplication
splits each operand into 32-bit limbs and recombines the three partial
products using ``2^61 ≡ 1 (mod p)``:

    a·b = m00 + mid·2^32 + m11·2^64        (m00 = a0·b0, …)
        ≡ (m00 & p) + (m00 >> 61)                       # 2^61 ≡ 1
        + ((mid & (2^29−1)) << 32) + (mid >> 29)        # 2^61 ≡ 1
        + (m11 << 3)                                    # 2^64 ≡ 8

Every intermediate stays below 2^63, so the whole pipeline is exact in
``uint64`` — results are bit-for-bit identical to Python big-int
arithmetic, which is what lets the proving kernels swap this in without
changing a single proof byte.

Scatter/gather sparse products (:class:`F61SpMV`) pre-sort edges by
output column so per-column sums become ``np.add.reduceat`` segment
reductions; 32-bit limb splitting keeps those sums exact for column
degrees up to 2^29.
"""

from __future__ import annotations

from typing import List, Sequence, Union

import numpy as np

from ..errors import FieldError
from .primes import MERSENNE61

P61 = np.uint64(MERSENNE61)
_P61_INT = MERSENNE61

_M32 = np.uint64(0xFFFFFFFF)
_M29 = np.uint64((1 << 29) - 1)
_S3 = np.uint64(3)
_S29 = np.uint64(29)
_S32 = np.uint64(32)
_S61 = np.uint64(61)

ArrayLike = Union[np.ndarray, Sequence[int]]


def as_f61(values: ArrayLike) -> np.ndarray:
    """Coerce canonical residues (ints in [0, p)) to a ``uint64`` array.

    Inputs must already be reduced — the proving kernels' raw-int contract.
    """
    if isinstance(values, np.ndarray) and values.dtype == np.uint64:
        return values
    return np.asarray(values, dtype=np.uint64)


def f61_reduce(x: np.ndarray) -> np.ndarray:
    """Full reduction of values < 2^62 to canonical residues in [0, p)."""
    x = (x & P61) + (x >> _S61)
    return np.where(x >= P61, x - P61, x)


def f61_add(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise modular addition of canonical residue arrays."""
    s = a + b
    return np.where(s >= P61, s - P61, s)


def f61_sub(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise modular subtraction of canonical residue arrays."""
    return np.where(a >= b, a - b, a + P61 - b)


def f61_mul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise modular multiplication via 32-bit limb splitting.

    Exact for any canonical inputs: the three partial products and the
    two recombined digits all stay below 2^63 (see module docstring).
    """
    a0 = a & _M32
    a1 = a >> _S32
    b0 = b & _M32
    b1 = b >> _S32
    m00 = a0 * b0                      # < 2^64
    mid = a0 * b1 + a1 * b0            # < 2^62
    m11 = a1 * b1                      # < 2^58
    d0 = (m00 & P61) + ((mid & _M29) << _S32)          # < 2^62
    d1 = (m00 >> _S61) + (mid >> _S29) + (m11 << _S3)  # < 2^62
    return f61_reduce(f61_reduce(d0 + d1))


def f61_scale(c: int, a: np.ndarray) -> np.ndarray:
    """Multiply every residue by the scalar ``c`` (reduced first)."""
    return f61_mul(a, np.uint64(c % _P61_INT))


def f61_sum(a: np.ndarray) -> int:
    """Exact sum of a residue vector, reduced mod p.

    Summing 61-bit values overflows ``uint64`` after 8 terms, so the
    low/high 32-bit limbs are summed separately (each limb sum is exact
    for up to 2^32 / 2^35 elements) and recombined in Python ints.
    """
    lo = int((a & _M32).sum(dtype=np.uint64))
    hi = int((a >> _S32).sum(dtype=np.uint64))
    return (lo + (hi << 32)) % _P61_INT


def f61_axis_sum(a: np.ndarray, axis: int) -> np.ndarray:
    """Exact reduction of a residue array along one axis, mod p.

    Low/high 32-bit limbs are summed separately (exact for up to 2^29
    summed elements) and recombined with ``2^32`` folded through
    ``f61_mul`` — the n-d generalisation of :func:`f61_columns_sum`.
    """
    lo = (a & _M32).sum(axis=axis, dtype=np.uint64)
    hi = (a >> _S32).sum(axis=axis, dtype=np.uint64)
    return f61_reduce(f61_reduce(lo) + f61_mul(hi, np.uint64(1 << 32)))


def f61_columns_sum(a: np.ndarray) -> np.ndarray:
    """Exact per-column sum of a 2-D residue matrix, reduced mod p.

    Low/high 32-bit limbs are summed separately (exact for up to 2^29
    rows) and recombined with ``2^32`` folded through ``f61_mul``.
    """
    return f61_axis_sum(a, axis=0)


def f61_rows_sum(a: np.ndarray) -> np.ndarray:
    """Exact per-lane sum over the *last* axis, reduced mod p.

    ``[lanes, n] → [lanes]`` — the lane-vectorised counterpart of
    :func:`f61_sum`, used by the sum-check round kernels to produce one
    round evaluation per proof lane from a single numpy pass.
    """
    return f61_axis_sum(a, axis=-1)


def f61_dot(a: np.ndarray, b: np.ndarray) -> int:
    """Inner product mod p (exact: reduced products, limb-split sum)."""
    if a.shape != b.shape:
        raise FieldError(f"dot shape mismatch: {a.shape} vs {b.shape}")
    return f61_sum(f61_mul(a, b))


def f61_rows_dot(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Per-lane inner products: ``[lanes, n] · [lanes, n] → [lanes]``."""
    if a.shape != b.shape:
        raise FieldError(f"dot shape mismatch: {a.shape} vs {b.shape}")
    return f61_rows_sum(f61_mul(a, b))


class F61SpMV:
    """A fixed sparse edge set ``y[dst] += x[src]·w`` applied to vectors.

    Edges are sorted by destination once at construction so each apply is
    a gather, a vectorised modular multiply, and two ``np.add.reduceat``
    segment sums (low/high limbs separately — exact for column degrees
    up to 2^29, far beyond the encoder's bound of 255).
    """

    __slots__ = ("n_in", "n_out", "_src", "_w", "_starts", "_dst")

    def __init__(
        self,
        src: Sequence[int],
        dst: Sequence[int],
        weights: Sequence[int],
        n_in: int,
        n_out: int,
    ):
        src_arr = np.asarray(src, dtype=np.int64)
        dst_arr = np.asarray(dst, dtype=np.int64)
        w_arr = as_f61(weights)
        if not (src_arr.shape == dst_arr.shape == w_arr.shape):
            raise FieldError("edge arrays must have equal length")
        order = np.argsort(dst_arr, kind="stable")
        self.n_in = n_in
        self.n_out = n_out
        self._src = src_arr[order]
        self._w = w_arr[order]
        dst_sorted = dst_arr[order]
        # Segment starts per distinct destination (empty columns stay 0).
        self._dst, self._starts = np.unique(dst_sorted, return_index=True)

    @property
    def nnz(self) -> int:
        return int(self._w.size)

    def apply(self, x: np.ndarray) -> np.ndarray:
        """``y[dst] = Σ x[src]·w`` over all edges, canonical residues out."""
        if x.size != self.n_in:
            raise FieldError(f"input length {x.size} != n_in {self.n_in}")
        y = np.zeros(self.n_out, dtype=np.uint64)
        if self._w.size == 0:
            return y
        contrib = f61_mul(x[self._src], self._w)
        lo = np.add.reduceat(contrib & _M32, self._starts)
        hi = np.add.reduceat(contrib >> _S32, self._starts)
        # lo < deg·2^32, hi < deg·2^29; recombine exactly:
        # hi·2^32 ≡ f61_mul(hi, 2^32) keeps everything in range.
        seg = f61_reduce(f61_reduce(lo) + f61_mul(hi, np.uint64(1 << 32)))
        y[self._dst] = seg
        return y

    def apply_batch(self, x: np.ndarray) -> np.ndarray:
        """Apply to a whole batch at once: ``(R, n_in) → (R, n_out)``.

        One gather / multiply / segment-sum over the full batch — this is
        how the commit stage pushes every witness row through an encoder
        graph in a single pass.
        """
        if x.ndim != 2 or x.shape[1] != self.n_in:
            raise FieldError(f"batch shape {x.shape} != (R, {self.n_in})")
        y = np.zeros((x.shape[0], self.n_out), dtype=np.uint64)
        if self._w.size == 0:
            return y
        contrib = f61_mul(x[:, self._src], self._w)
        lo = np.add.reduceat(contrib & _M32, self._starts, axis=1)
        hi = np.add.reduceat(contrib >> _S32, self._starts, axis=1)
        seg = f61_reduce(f61_reduce(lo) + f61_mul(hi, np.uint64(1 << 32)))
        y[:, self._dst] = seg
        return y

    def apply_lanes(self, x: np.ndarray) -> np.ndarray:
        """Apply to a lane-batched stack: ``(L, R, n_in) → (L, R, n_out)``.

        Lanes are independent rows of one flattened batch, so ``L``
        proofs' worth of encoder rows go through a single gather /
        multiply / segment-sum dispatch — the lane-vectorised commit.
        """
        if x.ndim != 3 or x.shape[2] != self.n_in:
            raise FieldError(f"lane batch shape {x.shape} != (L, R, {self.n_in})")
        lanes, rows = x.shape[0], x.shape[1]
        flat = self.apply_batch(x.reshape(lanes * rows, self.n_in))
        return flat.reshape(lanes, rows, self.n_out)

    def apply_list(self, x: Sequence[int]) -> List[int]:
        """List-in/list-out convenience wrapper."""
        return self.apply(as_f61(x)).tolist()
