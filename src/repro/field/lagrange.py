"""Lagrange interpolation utilities.

The paper's prover encodes intermediate results from the proved function
"into polynomials through Lagrange interpolation" (§4).  The sum-check
verifier also interpolates round polynomials from their evaluations at
``0, 1, …, d``.
"""

from __future__ import annotations

from typing import List, Sequence

from ..errors import FieldError
from .polynomial import Polynomial
from .prime_field import PrimeField


def lagrange_interpolate(
    field: PrimeField, xs: Sequence[int], ys: Sequence[int]
) -> Polynomial:
    """Return the unique polynomial of degree < len(xs) through the points.

    ``xs`` must be pairwise distinct mod p.

    >>> F = PrimeField(97)
    >>> poly = lagrange_interpolate(F, [0, 1, 2], [1, 2, 5])  # 1 + x^2... check
    >>> [poly(x) for x in (0, 1, 2)]
    [1, 2, 5]
    """
    if len(xs) != len(ys):
        raise FieldError("interpolation needs equally many xs and ys")
    p = field.modulus
    xs = [x % p for x in xs]
    if len(set(xs)) != len(xs):
        raise FieldError("interpolation points must be distinct")
    result = Polynomial.zero(field)
    for i, (xi, yi) in enumerate(zip(xs, ys)):
        if yi % p == 0:
            continue
        numer = Polynomial.one(field)
        denom = 1
        for j, xj in enumerate(xs):
            if j == i:
                continue
            numer = numer * Polynomial(field, [(-xj) % p, 1])
            denom = (denom * (xi - xj)) % p
        coeff = (yi * field.inv(denom)) % p
        result = result + numer.scale(coeff)
    return result


def evaluate_from_points(
    field: PrimeField, xs: Sequence[int], ys: Sequence[int], x: int
) -> int:
    """Evaluate the interpolating polynomial at ``x`` without building it.

    Uses the barycentric-style direct formula; O(d^2) but allocation-free,
    which is what the sum-check verifier wants for tiny degrees.
    """
    if len(xs) != len(ys):
        raise FieldError("evaluation needs equally many xs and ys")
    p = field.modulus
    x %= p
    total = 0
    for i, (xi, yi) in enumerate(zip(xs, ys)):
        num = 1
        den = 1
        for j, xj in enumerate(xs):
            if j == i:
                continue
            num = (num * (x - xj)) % p
            den = (den * (xi - xj)) % p
        total = (total + yi * num * field.inv(den)) % p
    return total


def interpolate_on_range(field: PrimeField, ys: Sequence[int]) -> Polynomial:
    """Interpolate on the canonical domain ``x = 0, 1, …, len(ys)-1``."""
    return lagrange_interpolate(field, list(range(len(ys))), ys)


def vanishing_polynomial(field: PrimeField, xs: Sequence[int]) -> Polynomial:
    """Return ∏ (x − xi)."""
    p = field.modulus
    acc = Polynomial.one(field)
    for xi in xs:
        acc = acc * Polynomial(field, [(-xi) % p, 1])
    return acc


def barycentric_weights(field: PrimeField, xs: Sequence[int]) -> List[int]:
    """w_i = 1 / ∏_{j≠i} (x_i − x_j), the classic barycentric weights."""
    p = field.modulus
    denoms = []
    for i, xi in enumerate(xs):
        d = 1
        for j, xj in enumerate(xs):
            if j != i:
                d = (d * (xi - xj)) % p
        denoms.append(d)
    return field.batch_inv(denoms)
