"""Dense univariate polynomials over a prime field.

Used by the sum-check verifier (round polynomials), by Lagrange
interpolation of the prover's intermediate results (§4: "encoded into
polynomials through Lagrange interpolation"), and by the NTT baseline.

Coefficients are stored low-degree first as raw ints reduced mod p.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import random

from ..errors import FieldError
from .prime_field import PrimeField


class Polynomial:
    """A univariate polynomial ``c0 + c1·x + … + cd·x^d`` over GF(p)."""

    __slots__ = ("field", "coeffs")

    def __init__(self, field: PrimeField, coeffs: Sequence[int]):
        p = field.modulus
        trimmed = [c % p for c in coeffs]
        while len(trimmed) > 1 and trimmed[-1] == 0:
            trimmed.pop()
        if not trimmed:
            trimmed = [0]
        self.field = field
        self.coeffs = trimmed

    # -- constructors -----------------------------------------------------

    @classmethod
    def zero(cls, field: PrimeField) -> "Polynomial":
        return cls(field, [0])

    @classmethod
    def one(cls, field: PrimeField) -> "Polynomial":
        return cls(field, [1])

    @classmethod
    def monomial(cls, field: PrimeField, degree: int, coeff: int = 1) -> "Polynomial":
        return cls(field, [0] * degree + [coeff])

    @classmethod
    def random(
        cls,
        field: PrimeField,
        degree: int,
        rng: Optional[random.Random] = None,
    ) -> "Polynomial":
        rng = rng or random
        coeffs = field.rand_vector(degree + 1, rng)
        if coeffs[-1] == 0:
            coeffs[-1] = 1
        return cls(field, coeffs)

    # -- basic properties -----------------------------------------------------

    @property
    def degree(self) -> int:
        """Degree with the convention deg(0) = 0."""
        return len(self.coeffs) - 1

    def is_zero(self) -> bool:
        return self.coeffs == [0]

    # -- arithmetic -------------------------------------------------------------

    def _check(self, other: "Polynomial") -> None:
        if self.field != other.field:
            raise FieldError("polynomials over different fields")

    def __add__(self, other: "Polynomial") -> "Polynomial":
        self._check(other)
        p = self.field.modulus
        a, b = self.coeffs, other.coeffs
        if len(a) < len(b):
            a, b = b, a
        out = list(a)
        for i, c in enumerate(b):
            out[i] = (out[i] + c) % p
        return Polynomial(self.field, out)

    def __sub__(self, other: "Polynomial") -> "Polynomial":
        self._check(other)
        p = self.field.modulus
        n = max(len(self.coeffs), len(other.coeffs))
        out = [0] * n
        for i in range(n):
            a = self.coeffs[i] if i < len(self.coeffs) else 0
            b = other.coeffs[i] if i < len(other.coeffs) else 0
            out[i] = (a - b) % p
        return Polynomial(self.field, out)

    def __neg__(self) -> "Polynomial":
        p = self.field.modulus
        return Polynomial(self.field, [(-c) % p for c in self.coeffs])

    def __mul__(self, other) -> "Polynomial":
        if isinstance(other, int):
            return self.scale(other)
        self._check(other)
        p = self.field.modulus
        a, b = self.coeffs, other.coeffs
        out = [0] * (len(a) + len(b) - 1)
        for i, ca in enumerate(a):
            if ca == 0:
                continue
            for j, cb in enumerate(b):
                out[i + j] = (out[i + j] + ca * cb) % p
        return Polynomial(self.field, out)

    __rmul__ = __mul__

    def scale(self, c: int) -> "Polynomial":
        p = self.field.modulus
        c %= p
        return Polynomial(self.field, [(c * x) % p for x in self.coeffs])

    def divmod(self, divisor: "Polynomial") -> Tuple["Polynomial", "Polynomial"]:
        """Polynomial long division; returns (quotient, remainder)."""
        self._check(divisor)
        if divisor.is_zero():
            raise FieldError("polynomial division by zero")
        p = self.field.modulus
        rem = list(self.coeffs)
        dcs = divisor.coeffs
        dlead_inv = self.field.inv(dcs[-1])
        qdeg = len(rem) - len(dcs)
        if qdeg < 0:
            return Polynomial.zero(self.field), Polynomial(self.field, rem)
        quot = [0] * (qdeg + 1)
        for k in range(qdeg, -1, -1):
            c = (rem[k + len(dcs) - 1] * dlead_inv) % p
            quot[k] = c
            if c:
                for j, dc in enumerate(dcs):
                    rem[k + j] = (rem[k + j] - c * dc) % p
        return Polynomial(self.field, quot), Polynomial(self.field, rem)

    # -- evaluation -----------------------------------------------------------

    def __call__(self, x: int) -> int:
        """Horner evaluation at a raw-int point; returns a raw int."""
        p = self.field.modulus
        acc = 0
        for c in reversed(self.coeffs):
            acc = (acc * x + c) % p
        return acc

    def evaluate_many(self, xs: Sequence[int]) -> List[int]:
        return [self(x) for x in xs]

    # -- calculus-free utilities -------------------------------------------------

    def shift(self, k: int) -> "Polynomial":
        """Multiply by x^k."""
        return Polynomial(self.field, [0] * k + self.coeffs)

    def compose_affine(self, a: int, b: int) -> "Polynomial":
        """Return q(x) = self(a·x + b)."""
        field = self.field
        lin = Polynomial(field, [b, a])
        acc = Polynomial.zero(field)
        power = Polynomial.one(field)
        for c in self.coeffs:
            acc = acc + power.scale(c)
            power = power * lin
        return acc

    # -- comparison / repr -----------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Polynomial):
            return NotImplemented
        return self.field == other.field and self.coeffs == other.coeffs

    def __hash__(self) -> int:
        return hash((self.field.modulus, tuple(self.coeffs)))

    def __repr__(self) -> str:
        terms = [f"{c}*x^{i}" for i, c in enumerate(self.coeffs) if c]
        return "Poly(" + (" + ".join(terms) or "0") + f") over {self.field.name}"
