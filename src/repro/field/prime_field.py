"""Prime-field arithmetic over arbitrary moduli.

Two layers are provided:

* :class:`PrimeField` — the field object.  It carries the modulus and
  offers *raw-int* operations (``add``, ``mul``, ``inv``, …) that take and
  return plain Python ints already reduced mod p.  Hot loops (the encoder,
  sum-check table updates) use this layer to avoid per-element object
  overhead.
* :class:`FieldElement` — a thin immutable wrapper with operator
  overloading for readable protocol code and examples.

Elements compare equal only within the same field; mixing fields raises
:class:`~repro.errors.FieldMismatchError` rather than silently coercing.
"""

from __future__ import annotations

import random
from typing import Iterable, Iterator, List, Optional, Sequence, Union

from ..errors import FieldError, FieldMismatchError, NonInvertibleError
from .primes import MERSENNE61, is_probable_prime

IntoField = Union[int, "FieldElement"]


class PrimeField:
    """The finite field GF(p) for a prime modulus ``p``.

    Instances are lightweight and hashable; two ``PrimeField`` objects with
    the same modulus behave identically and compare equal.

    >>> F = PrimeField(97)
    >>> (F(50) + F(60)).value
    13
    >>> F.inv(3) * 3 % 97
    1
    """

    __slots__ = ("modulus", "name", "_byte_length")

    def __init__(self, modulus: int, name: Optional[str] = None, *, check: bool = True):
        if modulus < 2:
            raise FieldError(f"modulus must be >= 2, got {modulus}")
        if check and not is_probable_prime(modulus):
            raise FieldError(f"modulus {modulus} is not prime")
        self.modulus = modulus
        self.name = name or f"GF({modulus})"
        self._byte_length = (modulus.bit_length() + 7) // 8

    # -- identity / hashing ------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PrimeField) and other.modulus == self.modulus

    def __hash__(self) -> int:
        return hash(("PrimeField", self.modulus))

    def __repr__(self) -> str:
        return f"PrimeField({self.name})"

    # -- element construction ----------------------------------------------

    def __call__(self, value: IntoField) -> "FieldElement":
        """Wrap ``value`` (int or element) as an element of this field."""
        if isinstance(value, FieldElement):
            if value.field != self:
                raise FieldMismatchError(self, value.field)
            return value
        return FieldElement(value % self.modulus, self)

    @property
    def zero(self) -> "FieldElement":
        return FieldElement(0, self)

    @property
    def one(self) -> "FieldElement":
        return FieldElement(1, self)

    def elements(self, values: Iterable[int]) -> List["FieldElement"]:
        """Wrap an iterable of ints as a list of elements."""
        p = self.modulus
        return [FieldElement(v % p, self) for v in values]

    # -- raw-int arithmetic (hot path) --------------------------------------

    def reduce(self, value: int) -> int:
        return value % self.modulus

    def add(self, a: int, b: int) -> int:
        s = a + b
        p = self.modulus
        return s - p if s >= p else s

    def sub(self, a: int, b: int) -> int:
        d = a - b
        return d + self.modulus if d < 0 else d

    def neg(self, a: int) -> int:
        return self.modulus - a if a else 0

    def mul(self, a: int, b: int) -> int:
        return (a * b) % self.modulus

    def exp(self, a: int, e: int) -> int:
        return pow(a, e, self.modulus)

    def inv(self, a: int) -> int:
        """Multiplicative inverse via Fermat's little theorem."""
        a %= self.modulus
        if a == 0:
            raise NonInvertibleError(f"0 has no inverse in {self.name}")
        return pow(a, self.modulus - 2, self.modulus)

    def div(self, a: int, b: int) -> int:
        return self.mul(a, self.inv(b))

    def batch_inv(self, values: Sequence[int]) -> List[int]:
        """Montgomery batch inversion: one field inversion for n elements.

        Zeros are passed through as zeros (matching the common convention in
        proof-system codebases where vanishing denominators are filtered by
        the caller).
        """
        p = self.modulus
        prefix: List[int] = []
        acc = 1
        for v in values:
            prefix.append(acc)
            if v:
                acc = (acc * v) % p
        acc_inv = self.inv(acc) if acc != 1 or any(values) else 1
        out = [0] * len(values)
        for i in range(len(values) - 1, -1, -1):
            v = values[i]
            if v:
                out[i] = (acc_inv * prefix[i]) % p
                acc_inv = (acc_inv * v) % p
        return out

    # -- vector helpers (raw ints) ------------------------------------------

    def vec_add(self, xs: Sequence[int], ys: Sequence[int]) -> List[int]:
        p = self.modulus
        return [(x + y) % p for x, y in zip(xs, ys)]

    def vec_sub(self, xs: Sequence[int], ys: Sequence[int]) -> List[int]:
        p = self.modulus
        return [(x - y) % p for x, y in zip(xs, ys)]

    def vec_scale(self, c: int, xs: Sequence[int]) -> List[int]:
        p = self.modulus
        return [(c * x) % p for x in xs]

    def dot(self, xs: Sequence[int], ys: Sequence[int]) -> int:
        if len(xs) != len(ys):
            raise FieldError(f"dot length mismatch: {len(xs)} vs {len(ys)}")
        p = self.modulus
        return sum(x * y for x, y in zip(xs, ys)) % p

    # -- randomness ----------------------------------------------------------

    def rand(self, rng: Optional[random.Random] = None) -> int:
        rng = rng or random
        return rng.randrange(self.modulus)

    def rand_nonzero(self, rng: Optional[random.Random] = None) -> int:
        rng = rng or random
        return rng.randrange(1, self.modulus)

    def rand_vector(self, n: int, rng: Optional[random.Random] = None) -> List[int]:
        rng = rng or random
        p = self.modulus
        return [rng.randrange(p) for _ in range(n)]

    # -- serialization --------------------------------------------------------

    @property
    def byte_length(self) -> int:
        """Bytes needed to serialize one canonical element."""
        return self._byte_length

    def to_bytes(self, a: int) -> bytes:
        return int(a % self.modulus).to_bytes(self._byte_length, "little")

    def from_bytes(self, data: bytes) -> int:
        """Interpret bytes (little-endian) as an element, reducing mod p."""
        return int.from_bytes(data, "little") % self.modulus

    def vector_to_bytes(self, values: Sequence[int]) -> bytes:
        return b"".join(self.to_bytes(v) for v in values)


class FieldElement:
    """An immutable element of a :class:`PrimeField`.

    Supports ``+ - * / **`` against other elements of the same field or
    plain ints (which are reduced into the field first).
    """

    __slots__ = ("value", "field")

    def __init__(self, value: int, field: PrimeField):
        object.__setattr__(self, "value", value % field.modulus)
        object.__setattr__(self, "field", field)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("FieldElement is immutable")

    # -- coercion -------------------------------------------------------------

    def _coerce(self, other: IntoField) -> int:
        if isinstance(other, FieldElement):
            if other.field != self.field:
                raise FieldMismatchError(self.field, other.field)
            return other.value
        if isinstance(other, int):
            return other % self.field.modulus
        return NotImplemented  # type: ignore[return-value]

    # -- arithmetic -------------------------------------------------------------

    def __add__(self, other: IntoField) -> "FieldElement":
        v = self._coerce(other)
        if v is NotImplemented:
            return NotImplemented
        return FieldElement(self.field.add(self.value, v), self.field)

    __radd__ = __add__

    def __sub__(self, other: IntoField) -> "FieldElement":
        v = self._coerce(other)
        if v is NotImplemented:
            return NotImplemented
        return FieldElement(self.field.sub(self.value, v), self.field)

    def __rsub__(self, other: IntoField) -> "FieldElement":
        v = self._coerce(other)
        if v is NotImplemented:
            return NotImplemented
        return FieldElement(self.field.sub(v, self.value), self.field)

    def __mul__(self, other: IntoField) -> "FieldElement":
        v = self._coerce(other)
        if v is NotImplemented:
            return NotImplemented
        return FieldElement(self.field.mul(self.value, v), self.field)

    __rmul__ = __mul__

    def __truediv__(self, other: IntoField) -> "FieldElement":
        v = self._coerce(other)
        if v is NotImplemented:
            return NotImplemented
        return FieldElement(self.field.div(self.value, v), self.field)

    def __rtruediv__(self, other: IntoField) -> "FieldElement":
        v = self._coerce(other)
        if v is NotImplemented:
            return NotImplemented
        return FieldElement(self.field.div(v, self.value), self.field)

    def __pow__(self, exponent: int) -> "FieldElement":
        return FieldElement(self.field.exp(self.value, exponent), self.field)

    def __neg__(self) -> "FieldElement":
        return FieldElement(self.field.neg(self.value), self.field)

    def inverse(self) -> "FieldElement":
        return FieldElement(self.field.inv(self.value), self.field)

    # -- comparison / hashing ----------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, FieldElement):
            return self.field == other.field and self.value == other.value
        if isinstance(other, int):
            return self.value == other % self.field.modulus
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.field.modulus, self.value))

    def __bool__(self) -> bool:
        return self.value != 0

    def __int__(self) -> int:
        return self.value

    def __repr__(self) -> str:
        return f"{self.value}:{self.field.name}"

    # -- serialization ---------------------------------------------------------

    def to_bytes(self) -> bytes:
        return self.field.to_bytes(self.value)


#: The library's default field (fast Python-int arithmetic, 61-bit prime).
DEFAULT_FIELD = PrimeField(MERSENNE61, name="M61", check=False)


def field_elements_iter(
    field: PrimeField, values: Iterable[int]
) -> Iterator[FieldElement]:
    """Lazily wrap raw ints as :class:`FieldElement` of ``field``."""
    for v in values:
        yield field(v)
