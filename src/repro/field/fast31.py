"""Vectorised arithmetic over the Mersenne-31 field (p = 2^31 − 1).

This is the numpy fast path used where the paper's workloads are
throughput-bound: the linear-time encoder's vector/matrix products, the
sum-check table folds, and the functional micro-benchmarks.  Products of two
31-bit residues fit in a ``uint64``, so a single multiply plus the Mersenne
folding trick ``x ≡ (x & p) + (x >> 31) (mod p)`` gives exact modular
arithmetic with no Python-level loops.

The API mirrors the raw-int layer of :class:`~repro.field.prime_field.PrimeField`
but operates on whole ``numpy.ndarray`` vectors.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from ..errors import FieldError, NonInvertibleError
from .primes import MERSENNE31

P31 = np.uint64(MERSENNE31)
_P31_INT = MERSENNE31

ArrayLike = Union[np.ndarray, Sequence[int]]


def as_f31(values: ArrayLike) -> np.ndarray:
    """Coerce to a ``uint64`` array of canonical Mersenne-31 residues."""
    arr = np.asarray(values, dtype=np.uint64)
    return arr % P31


def _reduce_once(x: np.ndarray) -> np.ndarray:
    """One Mersenne fold: maps values < 2^62 into [0, 2^32)."""
    return (x & P31) + (x >> np.uint64(31))


def _reduce_full(x: np.ndarray) -> np.ndarray:
    """Full reduction of values < 2^62 to canonical residues in [0, p)."""
    x = _reduce_once(x)
    x = _reduce_once(x)
    # x is now < p + something tiny; one conditional subtraction finishes.
    return np.where(x >= P31, x - P31, x)


def f31_add(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise modular addition of residue arrays."""
    s = a + b
    return np.where(s >= P31, s - P31, s)


def f31_sub(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise modular subtraction of residue arrays."""
    return np.where(a >= b, a - b, a + P31 - b)


def f31_neg(a: np.ndarray) -> np.ndarray:
    """Elementwise modular negation."""
    return np.where(a == 0, a, P31 - a)


def f31_mul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise modular multiplication (products fit uint64)."""
    return _reduce_full(a * b)


def f31_scale(c: int, a: np.ndarray) -> np.ndarray:
    """Multiply every residue by the scalar ``c``."""
    return _reduce_full(np.uint64(c % _P31_INT) * a)


def f31_sum(a: np.ndarray) -> int:
    """Sum of a residue vector, reduced mod p (exact, chunked)."""
    # Each element < 2^31, so chunks of 2^31 elements cannot overflow uint64
    # partial sums; for practical sizes one pass is fine, but we reduce
    # defensively in 2^20-element chunks.
    total = 0
    chunk = 1 << 20
    flat = a.reshape(-1)
    for start in range(0, flat.size, chunk):
        total += int(flat[start : start + chunk].sum(dtype=np.uint64))
    return total % _P31_INT


def f31_dot(a: np.ndarray, b: np.ndarray) -> int:
    """Inner product mod p, chunked so uint64 partials never overflow."""
    if a.shape != b.shape:
        raise FieldError(f"dot shape mismatch: {a.shape} vs {b.shape}")
    total = 0
    chunk = 1 << 12  # products < 2^62; up to 4 fit before overflow — reduce first
    flat_a = a.reshape(-1)
    flat_b = b.reshape(-1)
    for start in range(0, flat_a.size, chunk):
        prod = f31_mul(flat_a[start : start + chunk], flat_b[start : start + chunk])
        total += int(prod.sum(dtype=np.uint64))
    return total % _P31_INT


def f31_inv(a: int) -> int:
    """Multiplicative inverse of one residue (Fermat)."""
    a %= _P31_INT
    if a == 0:
        raise NonInvertibleError("0 has no inverse in F31")
    return pow(a, _P31_INT - 2, _P31_INT)


def f31_random(n: int, rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Uniform random residue vector of length ``n``."""
    rng = rng or np.random.default_rng()
    return rng.integers(0, _P31_INT, size=n, dtype=np.uint64)


class F31Vector:
    """A vector of Mersenne-31 residues with field-vector semantics.

    Thin convenience wrapper over the ``f31_*`` kernel functions; exists so
    protocol code can be written against an object API when numpy-level
    detail is noise.

    >>> v = F31Vector([1, 2, 3])
    >>> (v + v).tolist()
    [2, 4, 6]
    """

    __slots__ = ("data",)

    def __init__(self, values: ArrayLike):
        if isinstance(values, F31Vector):
            self.data = values.data.copy()
        else:
            self.data = as_f31(values)

    def __len__(self) -> int:
        return int(self.data.size)

    def __getitem__(self, idx):
        out = self.data[idx]
        if isinstance(idx, (int, np.integer)):
            return int(out)
        return F31Vector(out)

    def __add__(self, other: "F31Vector") -> "F31Vector":
        return F31Vector(f31_add(self.data, other.data))

    def __sub__(self, other: "F31Vector") -> "F31Vector":
        return F31Vector(f31_sub(self.data, other.data))

    def __mul__(self, other: Union["F31Vector", int]) -> "F31Vector":
        if isinstance(other, F31Vector):
            return F31Vector(f31_mul(self.data, other.data))
        return F31Vector(f31_scale(int(other), self.data))

    __rmul__ = __mul__

    def __neg__(self) -> "F31Vector":
        return F31Vector(f31_neg(self.data))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, F31Vector):
            return NotImplemented
        return self.data.shape == other.data.shape and bool(
            np.array_equal(self.data, other.data)
        )

    def __hash__(self) -> int:  # pragma: no cover - vectors rarely hashed
        return hash(self.data.tobytes())

    def dot(self, other: "F31Vector") -> int:
        return f31_dot(self.data, other.data)

    def sum(self) -> int:
        return f31_sum(self.data)

    def tolist(self) -> list:
        return [int(x) for x in self.data]

    def __repr__(self) -> str:
        head = ", ".join(str(int(x)) for x in self.data[:4])
        tail = ", ..." if len(self) > 4 else ""
        return f"F31Vector([{head}{tail}], n={len(self)})"
