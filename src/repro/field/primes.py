"""Named prime moduli used throughout the library.

The paper's protocols are field-agnostic ("finite field elements, which can
be treated as large integers whose bit-width typically ranges from 256 to
768", §3.3).  We expose several well-known primes:

* ``MERSENNE31``  — 2^31 − 1.  Fits numpy ``uint64`` products; used by the
  vectorised fast path (:mod:`repro.field.fast31`).
* ``MERSENNE61``  — 2^61 − 1.  The library default: fast Python-int
  arithmetic with a comfortable size for Fiat–Shamir challenges.
* ``GOLDILOCKS``  — 2^64 − 2^32 + 1, popular in modern proof systems.
* ``BN254_SCALAR`` — the 254-bit scalar field of the BN254 pairing curve,
  the kind of 256-bit field the paper benchmarks with.
* ``BLS12_381_SCALAR`` — the 255-bit scalar field of BLS12-381 (used by
  Bellperson, one of the paper's baselines).
"""

from __future__ import annotations

MERSENNE31 = (1 << 31) - 1
MERSENNE61 = (1 << 61) - 1
GOLDILOCKS = (1 << 64) - (1 << 32) + 1
BN254_SCALAR = (
    21888242871839275222246405745257275088548364400416034343698204186575808495617
)
BLS12_381_SCALAR = (
    52435875175126190479447740508185965837690552500527637822603658699938581184513
)

#: Primes indexable by a short human-readable name.
NAMED_PRIMES = {
    "m31": MERSENNE31,
    "m61": MERSENNE61,
    "goldilocks": GOLDILOCKS,
    "bn254": BN254_SCALAR,
    "bls12-381": BLS12_381_SCALAR,
}


def is_probable_prime(n: int, rounds: int = 16) -> bool:
    """Miller–Rabin primality test (deterministic witnesses for small n).

    Used in tests and to validate user-supplied moduli; not security
    critical.
    """
    if n < 2:
        return False
    small_primes = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)
    for p in small_primes:
        if n % p == 0:
            return n == p
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    # Deterministic witness set valid for n < 3.3e24; enough for our primes
    # up to 64 bits, and a strong probabilistic guarantee above that.
    witnesses = small_primes[:rounds]
    for a in witnesses:
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = (x * x) % n
            if x == n - 1:
                break
        else:
            return False
    return True
