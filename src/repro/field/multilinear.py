"""Multilinear polynomials represented by their Boolean-hypercube tables.

A multilinear polynomial ``p(x1, …, xn)`` is determined by its evaluations
over ``{0,1}^n``; Algorithm 1 of the paper takes exactly this table as
input, indexed by ``b = Σ b_i 2^{i-1}`` (x1 is the *least significant* bit,
matching the paper's indexing).

This module supplies the table representation, multilinear-extension
evaluation at arbitrary field points, the ``eq`` equality polynomial, and
the per-variable folding step used by both the sum-check prover and the
tensor-product openings of the Brakedown commitment.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Sequence

from ..errors import FieldError
from ..kernels import field_kernels as _kernels
from .prime_field import PrimeField


def _require_power_of_two(n: int) -> int:
    if n <= 0 or n & (n - 1):
        raise FieldError(f"table length must be a power of two, got {n}")
    return n.bit_length() - 1


class MultilinearPolynomial:
    """A multilinear polynomial stored as its ``2^n`` hypercube evaluations.

    ``evals[b]`` is ``p(b1, …, bn)`` with ``b = Σ b_i 2^{i-1}`` — the same
    layout as Algorithm 1 in the paper.
    """

    __slots__ = ("field", "evals", "num_vars")

    def __init__(self, field: PrimeField, evals: Sequence[int]):
        self.num_vars = _require_power_of_two(len(evals))
        p = field.modulus
        self.field = field
        self.evals = [e % p for e in evals]

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_function(
        cls, field: PrimeField, num_vars: int, fn: Callable[..., int]
    ) -> "MultilinearPolynomial":
        """Tabulate ``fn(b1, …, bn)`` over the hypercube."""
        evals = []
        for b in range(1 << num_vars):
            bits = [(b >> i) & 1 for i in range(num_vars)]
            evals.append(fn(*bits))
        return cls(field, evals)

    @classmethod
    def random(
        cls,
        field: PrimeField,
        num_vars: int,
        rng: Optional[random.Random] = None,
    ) -> "MultilinearPolynomial":
        return cls(field, field.rand_vector(1 << num_vars, rng))

    @classmethod
    def zero(cls, field: PrimeField, num_vars: int) -> "MultilinearPolynomial":
        return cls(field, [0] * (1 << num_vars))

    # -- queries -----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.evals)

    def hypercube_sum(self) -> int:
        """Σ over {0,1}^n — the value H that sum-check proves."""
        return sum(self.evals) % self.field.modulus

    def evaluate(self, point: Sequence[int]) -> int:
        """Evaluate the multilinear extension at an arbitrary field point.

        Folds one variable at a time: O(2^n) multiplications.  The table
        is LSB-first (x1 is bit 0), so the fold kernel pairs the two
        *halves* (binding the most-significant variable) and consumes the
        point from its last coordinate — never materializing per-index
        bit decompositions.
        """
        if len(point) != self.num_vars:
            raise FieldError(
                f"point has {len(point)} coordinates, polynomial has "
                f"{self.num_vars} variables"
            )
        return _kernels.evaluate_table(self.field, self.evals, point)

    def fix_last_variable(self, r: int) -> "MultilinearPolynomial":
        """Return p(x1, …, x_{n−1}, r) — the table fold of Algorithm 1 line 6.

        Line 6 of the paper's Algorithm 1 computes
        ``A[b] = (1−r)·A[b] + r·A[b + 2^{n−i}]``: pairing entry ``b`` with
        the entry ``2^{n−i}`` ahead flips the *most significant* live bit,
        so each round of the paper's prover binds the highest remaining
        variable.  This method is one such round.
        """
        half = len(self.evals) // 2
        if half == 0:
            raise FieldError("cannot fix a variable of a constant polynomial")
        folded = _kernels.fold_table(self.field, self.evals, r)
        if half > 1:
            return MultilinearPolynomial(self.field, folded)
        return _constant(self.field, folded[0])

    def fix_first_variable(self, r: int) -> "MultilinearPolynomial":
        """Return p(r, x2, …, xn): fold adjacent pairs (LSB variable)."""
        p = self.field.modulus
        r %= p
        half = len(self.evals) // 2
        if half == 0:
            raise FieldError("cannot fix a variable of a constant polynomial")
        folded = [
            (self.evals[2 * b] + r * (self.evals[2 * b + 1] - self.evals[2 * b])) % p
            for b in range(half)
        ]
        if half > 1:
            return MultilinearPolynomial(self.field, folded)
        return _constant(self.field, folded[0])

    # -- algebra --------------------------------------------------------------

    def __add__(self, other: "MultilinearPolynomial") -> "MultilinearPolynomial":
        self._check(other)
        p = self.field.modulus
        return MultilinearPolynomial(
            self.field, [(a + b) % p for a, b in zip(self.evals, other.evals)]
        )

    def __sub__(self, other: "MultilinearPolynomial") -> "MultilinearPolynomial":
        self._check(other)
        p = self.field.modulus
        return MultilinearPolynomial(
            self.field, [(a - b) % p for a, b in zip(self.evals, other.evals)]
        )

    def scale(self, c: int) -> "MultilinearPolynomial":
        p = self.field.modulus
        c %= p
        return MultilinearPolynomial(self.field, [(c * e) % p for e in self.evals])

    def pointwise_mul(self, other: "MultilinearPolynomial") -> List[int]:
        """Hadamard product of the two tables (NOT multilinear any more).

        Returned as a raw table: the sum-check prover for products consumes
        it directly.
        """
        self._check(other)
        p = self.field.modulus
        return [(a * b) % p for a, b in zip(self.evals, other.evals)]

    def _check(self, other: "MultilinearPolynomial") -> None:
        if self.field != other.field:
            raise FieldError("multilinear polynomials over different fields")
        if self.num_vars != other.num_vars:
            raise FieldError(
                f"variable-count mismatch: {self.num_vars} vs {other.num_vars}"
            )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MultilinearPolynomial):
            return NotImplemented
        return self.field == other.field and self.evals == other.evals

    def __hash__(self) -> int:
        return hash((self.field.modulus, tuple(self.evals)))

    def __repr__(self) -> str:
        return f"MultilinearPolynomial(n={self.num_vars}, field={self.field.name})"


class _ConstantMultilinear(MultilinearPolynomial):
    """Degenerate 0-variable polynomial (a single field constant)."""

    def __init__(self, field: PrimeField, value: int):
        # Bypass the power-of-two check: a constant has a 1-entry table.
        self.field = field  # type: ignore[misc]
        self.evals = [value % field.modulus]  # type: ignore[misc]
        self.num_vars = 0  # type: ignore[misc]


def _constant(field: PrimeField, value: int) -> MultilinearPolynomial:
    return _ConstantMultilinear(field, value)


def eq_table(field: PrimeField, point: Sequence[int]) -> List[int]:
    """Table of eq(point, b) for all b ∈ {0,1}^n.

    ``eq(r, b) = ∏_i (r_i·b_i + (1−r_i)(1−b_i))`` is the multilinear
    extension of equality; it is the workhorse of sum-check-based SNARKs
    (the paper's HyperPlonk/Libra-style protocols).

    Built iteratively in O(2^n) — the standard "expand one variable per
    round" construction, batched by the doubling kernel.
    """
    return _kernels.eq_table(field, point)


def eq_eval(field: PrimeField, xs: Sequence[int], ys: Sequence[int]) -> int:
    """Evaluate eq(xs, ys) directly for two arbitrary field points."""
    if len(xs) != len(ys):
        raise FieldError("eq_eval needs points of equal dimension")
    p = field.modulus
    acc = 1
    for x, y in zip(xs, ys):
        term = (x * y + (1 - x) * (1 - y)) % p
        acc = (acc * term) % p
    return acc


def tensor_point(field: PrimeField, point: Sequence[int]) -> List[int]:
    """Alias of :func:`eq_table`: the Lagrange-basis tensor ⨂(1−r_i, r_i).

    The Brakedown commitment evaluates a multilinear polynomial at ``z`` by
    splitting ``z`` into row/column halves and taking tensor products; both
    halves are exactly ``eq`` tables.
    """
    return eq_table(field, point)
