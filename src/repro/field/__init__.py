"""Prime-field arithmetic substrate (system S1 in DESIGN.md).

Public surface:

* :class:`PrimeField` / :class:`FieldElement` — arbitrary-prime arithmetic.
* :data:`DEFAULT_FIELD` — Mersenne-61, the library default.
* Named primes in :mod:`repro.field.primes`.
* Mersenne-31 numpy fast path in :mod:`repro.field.fast31`.
* :class:`Polynomial`, Lagrange interpolation helpers.
* :class:`MultilinearPolynomial`, ``eq`` tables, tensor points.
"""

from .fast31 import (
    F31Vector,
    as_f31,
    f31_add,
    f31_dot,
    f31_inv,
    f31_mul,
    f31_neg,
    f31_random,
    f31_scale,
    f31_sub,
    f31_sum,
)
from .lagrange import (
    barycentric_weights,
    evaluate_from_points,
    interpolate_on_range,
    lagrange_interpolate,
    vanishing_polynomial,
)
from .multilinear import MultilinearPolynomial, eq_eval, eq_table, tensor_point
from .polynomial import Polynomial
from .prime_field import DEFAULT_FIELD, FieldElement, PrimeField
from .primes import (
    BLS12_381_SCALAR,
    BN254_SCALAR,
    GOLDILOCKS,
    MERSENNE31,
    MERSENNE61,
    NAMED_PRIMES,
    is_probable_prime,
)

__all__ = [
    "PrimeField",
    "FieldElement",
    "DEFAULT_FIELD",
    "Polynomial",
    "MultilinearPolynomial",
    "eq_table",
    "eq_eval",
    "tensor_point",
    "lagrange_interpolate",
    "evaluate_from_points",
    "interpolate_on_range",
    "vanishing_polynomial",
    "barycentric_weights",
    "F31Vector",
    "as_f31",
    "f31_add",
    "f31_sub",
    "f31_mul",
    "f31_neg",
    "f31_scale",
    "f31_dot",
    "f31_sum",
    "f31_inv",
    "f31_random",
    "MERSENNE31",
    "MERSENNE61",
    "GOLDILOCKS",
    "BN254_SCALAR",
    "BLS12_381_SCALAR",
    "NAMED_PRIMES",
    "is_probable_prime",
]
