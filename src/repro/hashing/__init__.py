"""Hashing substrate (system S2 in DESIGN.md).

* From-scratch SHA-256 (:mod:`repro.hashing.sha256`) incl. the raw 64-byte
  block compression used by Merkle interior nodes.
* A hasher registry (:mod:`repro.hashing.hashers`) with ``sha256``,
  ``sha256-hw`` (hashlib-backed, bit-identical) and ``quick`` (fast
  non-cryptographic) backends.
* A Fiat–Shamir :class:`Transcript`.
"""

from .hashers import DIGEST_SIZE, Hasher, available_hashers, get_hasher
from .mimc import (
    MimcPermutation,
    MimcSponge,
    default_rounds,
    derive_round_constants,
    mimc_circuit_encrypt,
    mimc_gate_count,
    mimc_merkle_root,
    power_is_permutation,
    select_alpha,
)
from .sha256 import SHA256_ROUNDS, Sha256, compress_block, sha256
from .transcript import Transcript

__all__ = [
    "MimcPermutation",
    "MimcSponge",
    "power_is_permutation",
    "select_alpha",
    "default_rounds",
    "derive_round_constants",
    "mimc_circuit_encrypt",
    "mimc_gate_count",
    "mimc_merkle_root",
    "Sha256",
    "sha256",
    "compress_block",
    "SHA256_ROUNDS",
    "Hasher",
    "get_hasher",
    "available_hashers",
    "DIGEST_SIZE",
    "Transcript",
]
