"""MiMC: an algebraic, circuit-friendly hash over prime fields.

SHA-256 is cheap on GPUs but brutal *inside* a circuit (~25k gates per
compression).  ZKP systems therefore often commit with an algebraic hash
whose round function is native field arithmetic.  We implement MiMC
(Albrecht et al.) with a field-adaptive S-box and the Miyaguchi–Preneel
mode:

* permutation: ``x_{i+1} = (x_i + k + c_i)^α`` for ``r`` rounds, where
  ``α`` is the smallest odd exponent with ``gcd(α, p−1) = 1`` (so the
  power map is a bijection) and ``r = ceil(log_α p)``; round constants
  derive from SHA-256;
* hash: a sponge over field elements, compressing with
  ``H(h, m) = E_h(m) + m + h``.

The adaptive α matters: for BN254's scalar field α = 5 (the Poseidon
choice), but Mersenne primes are hostile — ``p − 1 = 2·(2^60 − 1)`` for
M61 is divisible by every ``2^d − 1`` with ``d | 60``, so the smallest
valid exponent is 17.  :func:`select_alpha` computes it per field.

:func:`mimc_circuit_encrypt` builds the same permutation *inside* a
:class:`~repro.core.circuit.CircuitBuilder` via square-and-multiply, and
the test suite proves a real preimage-knowledge statement with it — the
canonical ZK-hash use case.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from ..errors import HashError
from ..field.prime_field import PrimeField
from .sha256 import sha256


def power_is_permutation(modulus: int, alpha: int) -> bool:
    """x -> x^alpha permutes GF(p) iff gcd(alpha, p−1) == 1."""
    return math.gcd(alpha, modulus - 1) == 1


def select_alpha(modulus: int, limit: int = 1000) -> int:
    """Smallest odd exponent >= 3 whose power map is a bijection."""
    for alpha in range(3, limit, 2):
        if power_is_permutation(modulus, alpha):
            return alpha
    raise HashError(f"no usable S-box exponent below {limit} for p={modulus}")


def default_rounds(modulus: int, alpha: int) -> int:
    """ceil(log_alpha p), the standard MiMC round count."""
    return max(2, math.ceil(math.log(modulus, alpha)))


def derive_round_constants(
    field: PrimeField, rounds: int, seed: bytes = b"repro/mimc/v1"
) -> List[int]:
    """Nothing-up-my-sleeve constants: c_i = SHA-256(seed ‖ i) mod p.

    The first constant is pinned to 0 (the MiMC convention).
    """
    constants = [0]
    for i in range(1, rounds):
        digest = sha256(seed + i.to_bytes(4, "little"))
        constants.append(int.from_bytes(digest, "little") % field.modulus)
    return constants


class MimcPermutation:
    """The keyed MiMC permutation E_k over one field element."""

    def __init__(
        self,
        field: PrimeField,
        rounds: Optional[int] = None,
        alpha: Optional[int] = None,
        seed: bytes = b"repro/mimc/v1",
    ):
        self.field = field
        self.alpha = alpha if alpha is not None else select_alpha(field.modulus)
        if not power_is_permutation(field.modulus, self.alpha):
            raise HashError(
                f"x^{self.alpha} is not a permutation of {field.name} "
                f"(gcd(alpha, p-1) != 1)"
            )
        self.rounds = rounds or default_rounds(field.modulus, self.alpha)
        self.constants = derive_round_constants(field, self.rounds, seed)

    def encrypt(self, key: int, x: int) -> int:
        """E_k(x): r rounds of (x + k + c_i)^α, plus the final key add."""
        p = self.field.modulus
        key %= p
        x %= p
        for c in self.constants:
            x = pow((x + key + c) % p, self.alpha, p)
        return (x + key) % p

    def compress(self, h: int, m: int) -> int:
        """Miyaguchi–Preneel: H' = E_h(m) + m + h."""
        p = self.field.modulus
        return (self.encrypt(h, m) + m + h) % p


class MimcSponge:
    """Absorb-many / squeeze-one sponge built on the MP compression.

    >>> from repro.field import DEFAULT_FIELD
    >>> s = MimcSponge(DEFAULT_FIELD)
    >>> s.hash([1, 2, 3]) == s.hash([1, 2, 3])
    True
    >>> s.hash([1, 2, 3]) != s.hash([3, 2, 1])
    True
    """

    def __init__(self, field: PrimeField, rounds: Optional[int] = None):
        self.field = field
        self.permutation = MimcPermutation(field, rounds)
        # Domain-separated IV.
        self._iv = (
            int.from_bytes(sha256(b"repro/mimc/iv"), "little") % field.modulus
        )

    def hash(self, values: Sequence[int]) -> int:
        """Digest a sequence of field elements to one field element.

        The length is absorbed first so [1] and [1, 0] hash differently.
        """
        state = self.permutation.compress(self._iv, len(values))
        for v in values:
            state = self.permutation.compress(state, v % self.field.modulus)
        return state

    def hash_pair(self, left: int, right: int) -> int:
        """2-to-1 compression for Merkle-style trees over field elements."""
        return self.permutation.compress(
            self.permutation.compress(self._iv, left), right
        )


def mimc_merkle_root(field: PrimeField, leaves: Sequence[int]) -> int:
    """A Merkle root over field elements using the MiMC 2-to-1 hash.

    Pads to a power of two with zeros; a companion to the byte-oriented
    :class:`~repro.merkle.MerkleTree` for algebraic commitments.
    """
    if not leaves:
        raise HashError("cannot hash zero leaves")
    sponge = MimcSponge(field)
    layer = [v % field.modulus for v in leaves]
    if len(layer) & (len(layer) - 1):
        target = 1 << len(layer).bit_length()
        layer = layer + [0] * (target - len(layer))
    while len(layer) > 1:
        layer = [
            sponge.hash_pair(layer[i], layer[i + 1])
            for i in range(0, len(layer), 2)
        ]
    return layer[0]


def _circuit_pow(builder, base_wire, exponent: int):
    """Square-and-multiply exponentiation inside the circuit."""
    result = None
    power = base_wire
    e = exponent
    while e:
        if e & 1:
            result = power if result is None else builder.mul(result, power)
        e >>= 1
        if e:
            power = builder.mul(power, power)
    return result


def mimc_circuit_encrypt(builder, key_wire, x_wire, permutation: MimcPermutation):
    """Build E_k(x) inside a circuit via square-and-multiply.

    ``builder`` is a :class:`repro.core.circuit.CircuitBuilder` over the
    same field as ``permutation``.  Returns the output wire.
    """
    if builder.field != permutation.field:
        raise HashError("circuit field differs from permutation field")
    x = x_wire
    for c in permutation.constants:
        t = builder.add_constant(builder.add(x, key_wire), c)
        x = _circuit_pow(builder, t, permutation.alpha)
    return builder.add(x, key_wire)


def mimc_gate_count(permutation: MimcPermutation) -> int:
    """Multiplication gates of one in-circuit encryption.

    Square-and-multiply on α costs (bit_length − 1) squarings plus
    (popcount − 1) multiplies per round.
    """
    alpha = permutation.alpha
    per_round = (alpha.bit_length() - 1) + (bin(alpha).count("1") - 1)
    return per_round * permutation.rounds
