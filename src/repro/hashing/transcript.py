"""Fiat–Shamir transcript.

The paper's system derives the verifier's random numbers from pseudorandom
generators seeded by "either the final Merkle root or the output from other
sum-check modules" (§4).  This transcript realizes that: both parties absorb
the same protocol messages and squeeze identical field challenges, making
the interactive sum-check non-interactive.

The construction is the standard hash-chain sponge: an internal 32-byte
state is updated as ``state = H(state ‖ tag ‖ message)`` on every absorb,
and challenges are squeezed as ``H(state ‖ counter)`` interpreted as a
field element (with rejection-free reduction — fine for the statistical
soundness budget of this reproduction).
"""

from __future__ import annotations

import struct
from typing import List, Sequence

from ..errors import HashError
from ..field.prime_field import PrimeField
from .hashers import Hasher, get_hasher


class Transcript:
    """A deterministic Fiat–Shamir transcript.

    >>> from repro.field import DEFAULT_FIELD
    >>> t1 = Transcript(b"demo")
    >>> t2 = Transcript(b"demo")
    >>> t1.absorb_bytes(b"root", b"\\x01" * 32)
    >>> t2.absorb_bytes(b"root", b"\\x01" * 32)
    >>> t1.challenge_field(b"r", DEFAULT_FIELD) == t2.challenge_field(b"r", DEFAULT_FIELD)
    True
    """

    __slots__ = ("_hasher", "_state", "_counter")

    def __init__(self, label: bytes, hasher: Hasher = None):
        if not isinstance(label, bytes):
            raise HashError("transcript label must be bytes")
        self._hasher = hasher or get_hasher("sha256-hw")
        self._state = self._hasher.hash_bytes(b"repro/transcript/v1:" + label)
        self._counter = 0

    # -- absorbing ---------------------------------------------------------

    def absorb_bytes(self, tag: bytes, data: bytes) -> None:
        """Mix tagged bytes into the state (domain-separated by length)."""
        header = struct.pack("<I", len(tag)) + tag + struct.pack("<Q", len(data))
        self._state = self._hasher.hash_bytes(self._state + header + data)
        self._counter = 0

    def absorb_field(self, tag: bytes, field: PrimeField, value: int) -> None:
        self.absorb_bytes(tag, field.to_bytes(value))

    def absorb_field_vector(
        self, tag: bytes, field: PrimeField, values: Sequence[int]
    ) -> None:
        self.absorb_bytes(tag, field.vector_to_bytes(values))

    def absorb_int(self, tag: bytes, value: int) -> None:
        self.absorb_bytes(tag, struct.pack("<Q", value))

    # -- squeezing -----------------------------------------------------------

    def challenge_bytes(self, tag: bytes, n: int = 32) -> bytes:
        """Derive ``n`` pseudorandom bytes bound to everything absorbed."""
        out = b""
        while len(out) < n:
            block = self._hasher.hash_bytes(
                self._state + tag + struct.pack("<Q", self._counter)
            )
            self._counter += 1
            out += block
        return out[:n]

    def challenge_field(self, tag: bytes, field: PrimeField) -> int:
        """Derive one field challenge (raw int in [0, p))."""
        # Sample 16 extra bytes beyond the modulus size so the modular
        # reduction bias is < 2^-128.
        width = field.byte_length + 16
        return int.from_bytes(self.challenge_bytes(tag, width), "little") % (
            field.modulus
        )

    def challenge_field_vector(
        self, tag: bytes, field: PrimeField, n: int
    ) -> List[int]:
        return [
            self.challenge_field(tag + b"/" + str(i).encode(), field) for i in range(n)
        ]

    def challenge_indices(self, tag: bytes, bound: int, n: int) -> List[int]:
        """Derive ``n`` indices in ``[0, bound)`` (for Merkle spot checks)."""
        if bound <= 0:
            raise HashError("index bound must be positive")
        out = []
        for i in range(n):
            raw = self.challenge_bytes(tag + b"/" + str(i).encode(), 8)
            out.append(int.from_bytes(raw, "little") % bound)
        return out

    def fork(self, label: bytes) -> "Transcript":
        """Create an independent child transcript (for parallel sub-proofs)."""
        child = Transcript(label, self._hasher)
        child.absorb_bytes(b"fork-parent", self._state)
        return child
