"""Hash-function registry used by Merkle trees and transcripts.

The library ships three interchangeable 2-to-1 hashers:

* ``"sha256"``      — the from-scratch FIPS 180-4 implementation
  (:mod:`repro.hashing.sha256`); what the paper uses.
* ``"sha256-hw"``   — Python's ``hashlib`` (C speed); bit-identical output
  to ``"sha256"`` and used when a test or example needs thousands of real
  hashes quickly.  Stands in for a machine with SHA extensions.
* ``"quick"``       — a fast non-cryptographic 256-bit mixer for
  simulation-scale workloads where only determinism and collision
  *resistance in practice* matter (never use in a real deployment).

Each hasher exposes ``hash_bytes`` (arbitrary input) and ``compress``
(exactly two 32-byte children -> one 32-byte parent), the two operations
the Merkle pipeline stages perform.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Callable, Dict, List, Optional, Sequence

from ..errors import HashError
from ..kernels.hash_kernels import sha256_compress_many, sha256_many
from .sha256 import compress_block, sha256

DIGEST_SIZE = 32


class Hasher:
    """A named 2-to-1 hash function with an arbitrary-input mode.

    Besides the scalar ``hash_bytes``/``compress`` operations, a hasher
    exposes the batched forms the Merkle pipeline stages actually issue —
    ``hash_many`` (a layer of leaves per call) and ``compress_layer`` (a
    layer of interior nodes per call).  Backends that support batching
    (the SWAR SHA-256 kernels) plug in ``hash_many``/``compress_pairs``
    callables; everything else falls back to the scalar loop, so the two
    forms are always byte-identical.
    """

    __slots__ = ("name", "_hash_bytes", "_compress", "_hash_many", "_compress_pairs", "_zero_digests")

    def __init__(
        self,
        name: str,
        hash_bytes: Callable[[bytes], bytes],
        compress: Callable[[bytes, bytes], bytes],
        hash_many: Optional[Callable[[Sequence[bytes]], List[bytes]]] = None,
        compress_pairs: Optional[Callable[[Sequence[bytes]], List[bytes]]] = None,
    ):
        self.name = name
        self._hash_bytes = hash_bytes
        self._compress = compress
        self._hash_many = hash_many
        self._compress_pairs = compress_pairs
        # data length -> digest of that many zero bytes (Merkle pad filler).
        self._zero_digests: Dict[int, bytes] = {}

    def hash_bytes(self, data: bytes) -> bytes:
        """Digest arbitrary bytes to 32 bytes."""
        return self._hash_bytes(data)

    def hash_many(self, messages: Sequence[bytes]) -> List[bytes]:
        """Digest many byte strings — one whole Merkle-leaf layer per call.

        Equal to ``[self.hash_bytes(m) for m in messages]`` byte-for-byte.
        """
        if self._hash_many is not None:
            return self._hash_many(messages)
        hash_bytes = self._hash_bytes
        return [hash_bytes(m) for m in messages]

    def compress(self, left: bytes, right: bytes) -> bytes:
        """Compress two 32-byte digests into one (a Merkle interior node)."""
        if len(left) != DIGEST_SIZE or len(right) != DIGEST_SIZE:
            raise HashError(
                f"compress expects two {DIGEST_SIZE}-byte digests, got "
                f"{len(left)} and {len(right)}"
            )
        return self._compress(left, right)

    def compress_layer(self, layer: Sequence[bytes]) -> List[bytes]:
        """Compress one even-length Merkle layer into its parent layer.

        ``layer[2i], layer[2i+1] → parent[i]``; byte-identical to calling
        :meth:`compress` per pair, but batched backends (SWAR SHA-256)
        process the whole layer in wide lanes.
        """
        if len(layer) % 2:
            raise HashError(f"compress_layer needs an even layer, got {len(layer)}")
        for d in layer:
            if len(d) != DIGEST_SIZE:
                raise HashError(
                    f"compress_layer expects {DIGEST_SIZE}-byte digests, got {len(d)}"
                )
        if self._compress_pairs is not None:
            return self._compress_pairs(
                [layer[i] + layer[i + 1] for i in range(0, len(layer), 2)]
            )
        compress = self._compress
        return [compress(layer[i], layer[i + 1]) for i in range(0, len(layer), 2)]

    def zero_digest(self, num_bytes: int) -> bytes:
        """Memoized digest of ``num_bytes`` zero bytes (the Merkle pad filler)."""
        digest = self._zero_digests.get(num_bytes)
        if digest is None:
            digest = self._hash_bytes(b"\x00" * num_bytes)
            self._zero_digests[num_bytes] = digest
        return digest

    def __repr__(self) -> str:
        return f"Hasher({self.name!r})"


def _quick_mix(data: bytes) -> bytes:
    """A 256-bit non-cryptographic mixer (xxhash-flavoured, pure Python).

    Processes 8-byte lanes with multiply-rotate-xor rounds and finalizes
    four 64-bit accumulators.  Deterministic, fast, well-distributed — and
    explicitly NOT collision resistant against adversaries.
    """
    prime1 = 0x9E3779B185EBCA87
    prime2 = 0xC2B2AE3D27D4EB4F
    mask = (1 << 64) - 1
    acc = [
        (prime1 + len(data)) & mask,
        prime2,
        0x165667B19E3779F9,
        0x27D4EB2F165667C5,
    ]
    padded = data + b"\x00" * ((-len(data)) % 8)
    for i in range(0, len(padded), 8):
        (lane,) = struct.unpack_from("<Q", padded, i)
        j = (i >> 3) & 3
        a = (acc[j] + lane * prime2) & mask
        a = ((a << 31) | (a >> 33)) & mask
        acc[j] = (a * prime1) & mask
    # Cross-mix the accumulators so every lane affects every output word.
    for _ in range(2):
        for j in range(4):
            acc[j] = (acc[j] ^ (acc[(j + 1) & 3] >> 17)) * prime1 & mask
            acc[j] = (acc[j] ^ (acc[j] >> 29)) & mask
    return struct.pack("<4Q", *acc)


def _make_sha256_scratch() -> Hasher:
    return Hasher(
        "sha256",
        hash_bytes=sha256,
        compress=lambda left, right: compress_block(left + right),
        hash_many=sha256_many,
        compress_pairs=sha256_compress_many,
    )


def _make_sha256_hw() -> Hasher:
    def _hash(data: bytes) -> bytes:
        return hashlib.sha256(data).digest()

    def _hash_many(messages: Sequence[bytes]) -> List[bytes]:
        new = hashlib.sha256
        return [new(m).digest() for m in messages]

    def _comp(left: bytes, right: bytes) -> bytes:
        # NOTE: hashlib pads, so to remain bit-identical to the scratch
        # compress we run the raw compression from our own implementation.
        return compress_block(left + right)

    # Interior nodes need the *raw* compression hashlib cannot compute, so
    # the "hw" hasher also batches them through the SWAR kernel.
    return Hasher(
        "sha256-hw",
        hash_bytes=_hash,
        compress=_comp,
        hash_many=_hash_many,
        compress_pairs=sha256_compress_many,
    )


def _make_quick() -> Hasher:
    return Hasher(
        "quick",
        hash_bytes=_quick_mix,
        compress=lambda left, right: _quick_mix(left + right),
    )


_REGISTRY: Dict[str, Callable[[], Hasher]] = {
    "sha256": _make_sha256_scratch,
    "sha256-hw": _make_sha256_hw,
    "quick": _make_quick,
}

# Hashers are stateless apart from their memo caches, so the registry hands
# out one instance per name — that makes per-hasher caches (the Merkle pad
# filler digest) effective across tree constructions.
_INSTANCES: Dict[str, Hasher] = {}


def get_hasher(name: str = "sha256") -> Hasher:
    """Look up a hasher by name; raises :class:`HashError` for unknown names."""
    hasher = _INSTANCES.get(name)
    if hasher is not None:
        return hasher
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise HashError(
            f"unknown hasher {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    return _INSTANCES.setdefault(name, factory())


def available_hashers() -> list:
    """Names of the registered hash backends."""
    return sorted(_REGISTRY)
