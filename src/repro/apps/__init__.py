"""Application layer beyond verifiable ML (paper §2.1's other use cases).

* :mod:`repro.apps.zkbridge` — a cross-chain proving service with real
  transaction-validity proofs and the throughput-to-revenue economics the
  paper motivates batching with.
"""

from .zkbridge import (
    BridgeProver,
    RevenueReport,
    Transaction,
    TX_CIRCUIT_SCALE,
    random_transactions,
    revenue_report,
)

__all__ = [
    "BridgeProver",
    "Transaction",
    "random_transactions",
    "revenue_report",
    "RevenueReport",
    "TX_CIRCUIT_SCALE",
]
