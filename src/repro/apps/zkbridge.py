"""A zkBridge-style cross-chain proving service (paper §2.1).

"zkBridge service providers charge a handling fee for each transaction.
Thus, generating more proofs for transactions per unit time (throughput)
brings more income" — this module makes that economics concrete.

Two layers, mirroring the rest of the repository:

* **Functional** — :class:`BridgeProver` proves real (small) transaction
  statements: each transaction commits to ``(sender, receiver, amount,
  nonce)`` with the MiMC sponge, and the proof shows knowledge of fields
  hashing to the public commitment with a value-conservation constraint.
* **Economic simulation** — :func:`revenue_report` runs the batch pipeline
  at a realistic per-transaction circuit scale and prices throughput in
  fees/hour for pipelined vs kernel-per-task scheduling, on one device or
  a farm.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple, Union

from ..core.batch import ProofTask
from ..core.circuit import CircuitBuilder, CompiledCircuit, compile_builder
from ..core.prover import SnarkProver, make_pcs
from ..core.verifier import SnarkVerifier
from ..errors import ProofError
from ..field.prime_field import DEFAULT_FIELD, PrimeField
from ..gpu.costs import GpuCostModel
from ..gpu.device import get_gpu
from ..gpu.simulator import run_naive
from ..hashing.mimc import MimcPermutation, mimc_circuit_encrypt
from ..pipeline.multigpu import MultiGpuBatchSystem
from ..pipeline.system import BatchZkpSystem, zkp_system_graph

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.proof import SnarkProof
    from ..execution import ProvingBackend
    from ..runtime import ProverSpec, RuntimeStats

    BackendLike = Union[str, ProvingBackend]

#: Circuit scale of one cross-chain transaction proof.  zkBridge proves
#: block-header validity (signature batches); 2^18 gates is the order of
#: magnitude of its per-header circuits.
TX_CIRCUIT_SCALE = 1 << 18


@dataclass(frozen=True)
class Transaction:
    """One cross-chain transfer awaiting a validity proof."""

    sender: int
    receiver: int
    amount: int
    nonce: int

    def commitment(self, field: PrimeField, perm: MimcPermutation) -> int:
        """MiMC-sponge commitment the chain stores for this transfer."""
        from ..hashing.mimc import MimcSponge

        sponge = MimcSponge(field, rounds=perm.rounds)
        return sponge.hash([self.sender, self.receiver, self.amount, self.nonce])


def random_transactions(
    count: int, seed: int = 0, field: PrimeField = DEFAULT_FIELD
) -> List[Transaction]:
    """Deterministic pseudorandom transfers with sequential nonces."""
    rng = random.Random(f"zkbridge/{seed}")
    return [
        Transaction(
            sender=rng.randrange(field.modulus),
            receiver=rng.randrange(field.modulus),
            amount=rng.randrange(1, 1 << 32),
            nonce=i,
        )
        for i in range(count)
    ]


class BridgeProver:
    """Proves transaction validity statements with the real SNARK.

    The statement per transaction: "I know (sender, receiver, amount,
    nonce) whose MiMC commitment is C, with amount != 0" — amount is
    additionally exposed so the destination chain can mint it.
    """

    def __init__(self, field: PrimeField = DEFAULT_FIELD, rounds: int = 6):
        self.field = field
        self.perm = MimcPermutation(field, rounds=rounds)
        #: :class:`~repro.runtime.RuntimeStats` of the most recent
        #: :meth:`prove_batch` run (None before the first batch).
        self.last_runtime_stats: Optional["RuntimeStats"] = None
        # Cached per-circuit spec and per-(workers, lanes) execution
        # backends (every well-formed transaction shares one circuit
        # structure).
        self._specs: Dict[bytes, "ProverSpec"] = {}
        self._backends: Dict[tuple, "ProvingBackend"] = {}

    def _execution_backend(self, workers: int, lanes=None) -> "ProvingBackend":
        from ..execution import (
            PoolBackend,
            SerialBackend,
            lane_selector,
            resolve_backend,
        )

        key = (workers, lanes)
        backend = self._backends.get(key)
        if backend is None:
            if lanes is not None:
                backend = resolve_backend(lane_selector(lanes, workers))
            elif workers == 1:
                backend = SerialBackend()
            else:
                backend = PoolBackend(workers)
            self._backends[key] = backend
        return backend

    def _build_circuit(self, tx: Transaction) -> CompiledCircuit:
        from ..hashing.mimc import MimcSponge

        cb = CircuitBuilder(self.field)
        sender = cb.private_input(tx.sender)
        receiver = cb.private_input(tx.receiver)
        amount = cb.private_input(tx.amount)
        nonce = cb.private_input(tx.nonce)

        # Recompute the sponge in-circuit: state = MP-compress chain.
        sponge = MimcSponge(self.field, rounds=self.perm.rounds)
        state_wire = cb.constant(sponge._iv)
        for value_wire in (cb.constant(4), sender, receiver, amount, nonce):
            enc = mimc_circuit_encrypt(cb, state_wire, value_wire, sponge.permutation)
            state_wire = cb.add(cb.add(enc, value_wire), state_wire)

        # amount != 0: expose a witness inverse with amount·inv = 1.
        inv = cb.private_input(self.field.inv(tx.amount))
        one = cb.mul(amount, inv)
        cb.assert_equal(one, cb.constant(1))

        cb.expose_public(state_wire)  # the commitment C
        cb.expose_public(amount)
        return compile_builder(cb)

    def prove(self, tx: Transaction):
        """Returns (compiled circuit, proof); the commitment and amount are
        the proof's public values."""
        if tx.amount % self.field.modulus == 0:
            raise ProofError("zero-amount transactions are invalid")
        compiled = self._build_circuit(tx)
        expected = tx.commitment(self.field, self.perm)
        if compiled.public_values[0] != expected:
            raise ProofError("in-circuit commitment diverged from native")
        pcs = make_pcs(self.field, compiled.r1cs, num_col_checks=8)
        prover = SnarkProver(
            compiled.r1cs, pcs, public_indices=compiled.public_indices
        )
        proof = prover.prove(compiled.witness, compiled.public_values)
        return compiled, proof

    def prove_batch(
        self,
        txs: Sequence[Transaction],
        workers: int = 1,
        backend: Optional["BackendLike"] = None,
        lanes=None,
    ) -> List[Tuple[CompiledCircuit, "SnarkProof"]]:
        """Prove a stream of transactions, optionally across worker processes.

        Every transaction compiles to the same circuit *structure* (only
        the witness differs), so the batch shares one prover setup and
        routes through the unified backend layer (:mod:`repro.execution`):
        ``workers > 1`` shards across a process pool, and ``backend``
        accepts any selector string or backend instance — the §2.1
        economics in functional form: more proofs per unit time, more
        handling fees.  A structurally divergent circuit (which a
        well-formed transaction cannot produce) degrades the batch to
        serial per-transaction proving.  The backend's report lands in
        :attr:`last_runtime_stats`.

        ``lanes`` (an integer width or ``"auto"``) routes a
        digest-uniform batch through the lane-vectorized S31 path; the
        non-uniform fallback ignores it, and an explicit ``backend``
        wins over ``lanes``.
        """
        from ..execution import resolve_backend
        from ..runtime import ProverSpec

        for tx in txs:
            if tx.amount % self.field.modulus == 0:
                raise ProofError("zero-amount transactions are invalid")
        circuits = [self._build_circuit(tx) for tx in txs]
        if not circuits:
            return []
        for tx, compiled in zip(txs, circuits):
            if compiled.public_values[0] != tx.commitment(self.field, self.perm):
                raise ProofError("in-circuit commitment diverged from native")
        reference_digest = circuits[0].r1cs.digest()
        uniform = all(
            c.r1cs.digest() == reference_digest for c in circuits[1:]
        )
        if not uniform:
            return [self.prove(tx) for tx in txs]
        spec = self._specs.get(reference_digest)
        if spec is None:
            spec = ProverSpec(
                r1cs=circuits[0].r1cs,
                public_indices=tuple(circuits[0].public_indices),
                num_col_checks=8,
            )
            self._specs[reference_digest] = spec
        resolved = (
            self._execution_backend(workers, lanes)
            if backend is None
            else resolve_backend(backend)
        )
        tasks = [
            ProofTask(
                task_id=i,
                witness=compiled.witness,
                public_values=compiled.public_values,
            )
            for i, compiled in enumerate(circuits)
        ]
        proofs, stats = resolved.prove_tasks(spec, tasks)
        self.last_runtime_stats = stats
        return list(zip(circuits, proofs))

    def verify(self, compiled: CompiledCircuit, proof, commitment: int, amount: int) -> bool:
        pcs = make_pcs(self.field, compiled.r1cs, num_col_checks=8)
        verifier = SnarkVerifier(
            compiled.r1cs, pcs, public_indices=compiled.public_indices
        )
        return verifier.verify(proof, [commitment, amount])


@dataclass
class RevenueReport:
    """Fees earned per hour under different proving configurations."""

    fee_per_proof: float
    rows: Dict[str, Dict[str, float]]

    def best_configuration(self) -> str:
        return max(self.rows, key=lambda k: self.rows[k]["revenue_per_hour"])


def revenue_report(
    fee_per_proof: float = 0.50,
    scale: int = TX_CIRCUIT_SCALE,
    devices: Sequence[str] = ("GH200",),
    farm: Optional[Sequence[str]] = None,
    costs: Optional[GpuCostModel] = None,
) -> RevenueReport:
    """Price proof throughput in fees/hour (the paper's §2.1 economics).

    Compares the pipelined system against kernel-per-task scheduling on
    each device, plus an optional multi-GPU farm.
    """
    costs = costs or GpuCostModel()
    rows: Dict[str, Dict[str, float]] = {}
    for dev in devices:
        system = BatchZkpSystem(dev, scale=scale, costs=costs)
        pipelined = system.simulate(batch_size=512)
        thpt = pipelined.sim.steady_throughput_per_second
        rows[f"{dev}/pipelined"] = {
            "proofs_per_second": thpt,
            "revenue_per_hour": thpt * 3600 * fee_per_proof,
        }
        naive = run_naive(
            get_gpu(dev), zkp_system_graph(scale, costs), 512, costs=costs,
            compute_penalty=1.3,
        )
        nthpt = naive.steady_throughput_per_second
        rows[f"{dev}/kernel-per-task"] = {
            "proofs_per_second": nthpt,
            "revenue_per_hour": nthpt * 3600 * fee_per_proof,
        }
    if farm:
        result = MultiGpuBatchSystem(list(farm), scale=scale, costs=costs).simulate(
            batch_size=1024
        )
        rows["farm/" + "+".join(farm)] = {
            "proofs_per_second": result.throughput_per_second,
            "revenue_per_hour": result.throughput_per_second * 3600 * fee_per_proof,
        }
    return RevenueReport(fee_per_proof=fee_per_proof, rows=rows)
