"""Calibration-sensitivity bench: the conclusions are not a calibration
artifact.

Perturbs every calibrated cost constant across 0.5x-2x and re-evaluates
the headline claims; all must hold at every grid point.
"""

from repro.bench import sensitivity_sweep, summarize


def test_sensitivity_sweep(benchmark, show):
    points = benchmark(sensitivity_sweep)
    summary = summarize(points)
    lo, hi = summary["bellperson_speedup_range"]
    slo, shi = summary["small_module_speedup_range"]
    show(
        "Calibration sensitivity (each constant x0.5..x2, "
        f"{len(points)} grid points):\n"
        f"  vs-Bellperson speedup range: {lo:.0f}x .. {hi:.0f}x "
        f"(claim needs >100x)\n"
        f"  small-module pipelining speedup range: {slo:.1f}x .. {shi:.1f}x "
        f"(claim needs >1x and larger than at 2^20)\n"
        f"  all claims hold at every point: {summary['all_claims_hold']}"
    )
    assert summary["all_claims_hold"], summary["violations"]
    assert lo > 100
