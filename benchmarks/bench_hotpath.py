"""Hot-path kernels: end-to-end prover speedup vs the reference path.

The kernel layer (S26) replaces the prover's per-element Python loops
with batched primitives — split-limb M61 vectors, layer-at-a-time
hashing, argsorted SpMV, array-state sum-check rounds — behind a
process-global dispatch switch.  This benchmark proves the bargain both
ways on one mid-size circuit with the default ``sha256-hw`` hasher:

1. **Speedup** — a single proof on the fast path vs the same proof under
   :func:`repro.kernels.use_reference_kernels`, with per-stage wall time
   from :class:`~repro.kernels.profile.StageProfile` for both modes.
2. **Byte identity** — the two proofs serialize to the same bytes and
   still verify; the fast path buys time, never a different transcript.

Results land in ``BENCH_hotpath.json`` and a configurable regression
guard (``--min-speedup``, default 1.2x) exits nonzero when the kernels
stop paying for themselves.

Run directly for a report:  PYTHONPATH=src python benchmarks/bench_hotpath.py
Quick mode (CI smoke):      PYTHONPATH=src python benchmarks/bench_hotpath.py --quick
"""

import argparse
import json
import time

from repro.core import make_pcs, random_circuit, serialize_proof
from repro.field import DEFAULT_FIELD
from repro.gpu import stage_cost_fractions
from repro.kernels import (
    collect_stages,
    default_spec_cache,
    use_reference_kernels,
)
from repro.core import SnarkProver
from repro.runtime import ProverSpec

GATES = 4096
REPS = 3
QUICK_GATES = 1024
QUICK_REPS = 2


def _time_proofs(prover, witness, public_values, reps):
    """Best-of-``reps`` single-proof wall time plus its stage profile."""
    best_seconds = None
    best_stages = {}
    proof = None
    for _ in range(reps):
        with collect_stages() as profile:
            start = time.perf_counter()
            proof = prover.prove(witness, public_values)
            elapsed = time.perf_counter() - start
        if best_seconds is None or elapsed < best_seconds:
            best_seconds = elapsed
            best_stages = profile.as_dict()
    return proof, best_seconds, best_stages


def run_hotpath(gates: int = GATES, reps: int = REPS) -> dict:
    """Fast vs reference single-proof time on one circuit; asserts byte
    identity of the two serialized proofs."""
    cc = random_circuit(DEFAULT_FIELD, gates, seed=11)
    pcs = make_pcs(DEFAULT_FIELD, cc.r1cs, num_col_checks=6)
    prover = SnarkProver(cc.r1cs, pcs, public_indices=cc.public_indices)
    spec = ProverSpec.from_prover(prover)

    with use_reference_kernels():
        ref_prover = spec.build_prover()
        ref_proof, ref_seconds, ref_stages = _time_proofs(
            ref_prover, cc.witness, cc.public_values, reps
        )

    cache = default_spec_cache()
    misses_before = cache.misses
    fast_prover = cache.get_prover(spec)
    cache.get_prover(spec)  # second lookup must hit
    fast_proof, fast_seconds, fast_stages = _time_proofs(
        fast_prover, cc.witness, cc.public_values, reps
    )

    ref_bytes = serialize_proof(ref_proof, DEFAULT_FIELD)
    fast_bytes = serialize_proof(fast_proof, DEFAULT_FIELD)
    assert fast_bytes == ref_bytes, "fast path changed the proof bytes"
    verifier = spec.build_verifier()
    assert verifier.verify(fast_proof, cc.public_values)

    return {
        "gates": gates,
        "reps": reps,
        "hasher": spec.hasher_name,
        "reference_seconds": ref_seconds,
        "fast_seconds": fast_seconds,
        "speedup": ref_seconds / fast_seconds,
        "byte_identical": True,
        "proof_bytes": len(fast_bytes),
        "reference_stages": ref_stages,
        "fast_stages": fast_stages,
        "fast_stage_fractions": stage_cost_fractions(fast_stages),
        "spec_cache": {
            "hits": cache.hits,
            "misses": cache.misses - misses_before,
        },
    }


def _report(row: dict) -> None:
    print(
        f"[hotpath]   {row['gates']} gates ({row['hasher']}) | reference "
        f"{row['reference_seconds'] * 1e3:7.1f} ms | fast "
        f"{row['fast_seconds'] * 1e3:7.1f} ms | speedup "
        f"{row['speedup']:.2f}x | bytes identical: {row['byte_identical']}"
    )
    for mode in ("reference", "fast"):
        stages = row[f"{mode}_stages"]
        split = "  ".join(
            f"{name} {seconds * 1e3:.1f}ms" for name, seconds in stages.items()
        )
        print(f"[stages]    {mode:9s} {split}")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI smoke sizes")
    parser.add_argument(
        "--gates", type=int, default=None, help="circuit size override"
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=1.2,
        help="fail (exit 1) when fast/reference speedup drops below this",
    )
    parser.add_argument(
        "--out",
        default="BENCH_hotpath.json",
        help="where to write the JSON results",
    )
    args = parser.parse_args()

    gates = args.gates or (QUICK_GATES if args.quick else GATES)
    reps = QUICK_REPS if args.quick else REPS
    row = run_hotpath(gates=gates, reps=reps)
    _report(row)

    row["min_speedup"] = args.min_speedup
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(row, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"[hotpath]   wrote {args.out}")

    if row["speedup"] < args.min_speedup:
        raise SystemExit(
            f"perf regression: speedup {row['speedup']:.2f}x below the "
            f"--min-speedup floor {args.min_speedup:.2f}x"
        )
