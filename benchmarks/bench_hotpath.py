"""Hot-path kernels: end-to-end prover speedup vs the reference path.

Thin CLI shim (S29): the measurement core lives in
:func:`repro.experiments.benches.run_hotpath` and is registered as the
``bench_hotpath`` experiment — ``python -m repro experiment run
bench_hotpath`` is the canonical entry point (artifact dir + ledger).
This script keeps the legacy interface: the ``--min-speedup`` guard
(default 1.2x, exits nonzero below it), ``--quick`` CI sizes, and a
JSON dump (now the normalized ExperimentResult schema, written to the
repo root by default rather than the shell's cwd).

Run directly for a report:  PYTHONPATH=src python benchmarks/bench_hotpath.py
Quick mode (CI smoke):      PYTHONPATH=src python benchmarks/bench_hotpath.py --quick
"""

import argparse
import json

from repro.experiments import default_bench_json, execute_spec, get_experiment
from repro.experiments.benches import run_hotpath  # noqa: F401  (back-compat)

GATES = 4096
REPS = 3
QUICK_GATES = 1024
QUICK_REPS = 2


def _report(row: dict) -> None:
    print(
        f"[hotpath]   {row['gates']} gates ({row['hasher']}) | reference "
        f"{row['reference_seconds'] * 1e3:7.1f} ms | fast "
        f"{row['fast_seconds'] * 1e3:7.1f} ms | speedup "
        f"{row['speedup']:.2f}x | bytes identical: {row['byte_identical']}"
    )
    for mode in ("reference", "fast"):
        stages = row[f"{mode}_stages"]
        split = "  ".join(
            f"{name} {seconds * 1e3:.1f}ms" for name, seconds in stages.items()
        )
        print(f"[stages]    {mode:9s} {split}")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI smoke sizes")
    parser.add_argument(
        "--gates", type=int, default=None, help="circuit size override"
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="fail (exit 1) when fast/reference speedup drops below this "
        "(default: the registered guard's 1.2)",
    )
    parser.add_argument(
        "--out",
        default=str(default_bench_json("BENCH_hotpath.json")),
        help="where to write the JSON results",
    )
    args = parser.parse_args()

    spec = get_experiment("bench_hotpath")
    result = execute_spec(
        spec,
        quick=args.quick,
        param_overrides={"gates": args.gates} if args.gates else None,
        guard_overrides=(
            {"min_speedup": args.min_speedup}
            if args.min_speedup is not None
            else None
        ),
    )
    if result.status == "error":
        raise SystemExit(result.error)
    _report(result.data)

    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(result.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"[hotpath]   wrote {args.out}")

    failures = result.guard_failures
    if failures:
        raise SystemExit(f"perf regression: {failures[0].detail}")
