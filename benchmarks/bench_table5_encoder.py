"""E3 — Table 5: linear-time encoder throughput (codes/ms).

Simulated Orion-CPU vs Ours-np vs Ours, plus real Spielman-encoder
micro-benchmarks (pure Python and the vectorised Mersenne-31 path).
"""

import random

import numpy as np

from repro.bench import compute_table5, format_rows
from repro.field import DEFAULT_FIELD, PrimeField
from repro.field.primes import MERSENNE31
from repro.encoder import SpielmanEncoder

F = DEFAULT_FIELD
F31 = PrimeField(MERSENNE31, name="M31", check=False)
RNG = random.Random(7)

ENC = SpielmanEncoder(F, 1 << 10, seed=1)
MSG = F.rand_vector(1 << 10, RNG)
ENC31 = SpielmanEncoder(F31, 1 << 12, seed=1)
MSG31 = np.random.default_rng(0).integers(0, MERSENNE31, 1 << 12, dtype=np.uint64)


def test_table5_simulated(benchmark, show):
    rows = benchmark(compute_table5)
    show(format_rows("Table 5 — Linear-time encoder throughput (codes/ms)", rows))
    speedups = [r.values["speedup_vs_gpu"] for r in rows]
    assert all(s > 3 for s in speedups)
    assert speedups[-1] > speedups[0]
    assert all(r.values["speedup_vs_cpu"] > 200 for r in rows)


def test_functional_encode_two_pass(benchmark):
    """Figure 6's iterative two-pass encoding, pure Python, 2^10 elements."""
    cw = benchmark(ENC.encode, MSG)
    assert len(cw) == 2 * len(MSG)


def test_functional_encode_recursive(benchmark):
    """Figure 3's recursive form (same code, different control flow)."""
    cw = benchmark(ENC.encode_recursive, MSG)
    assert cw[: len(MSG)] == MSG


def test_functional_encode_f31_vectorised(benchmark):
    """The numpy Mersenne-31 path at 4x the size."""
    cw = benchmark(ENC31.encode_f31, MSG31)
    assert cw.shape == (2 * MSG31.size,)
