"""E4 — Table 6: module latency, pipelined vs non-pipelined.

The paper's honest trade-off: pipelining buys throughput at a latency
cost.  Both directions of the trade-off must reproduce.
"""

from repro.bench import compute_table6, format_rows


def test_table6_latency(benchmark, show):
    rows = benchmark(compute_table6)
    show(format_rows("Table 6 — module latency (ms), baseline vs ours", rows))
    # The pipelined module is SLOWER per item (latency), at every size.
    for row in rows:
        assert row.values["ours_ms"] > row.values["baseline_ms"], row.label
    # And the latency gap widens at the larger size, as in the paper
    # (merkle ratio 0.388 -> 0.161 from 2^18 to 2^20).
    merkle18 = next(r for r in rows if r.label == "2^18/merkle")
    merkle20 = next(r for r in rows if r.label == "2^20/merkle")
    assert merkle20.values["ratio"] < merkle18.values["ratio"]
