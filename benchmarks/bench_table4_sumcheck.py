"""E2 — Table 4: sum-check module throughput (proofs/ms).

Simulated Arkworks-CPU vs Icicle-GPU vs Ours, plus real Algorithm 1
micro-benchmarks.
"""

import random

from repro.bench import compute_table4, format_rows
from repro.field import DEFAULT_FIELD, MultilinearPolynomial
from repro.hashing import Transcript
from repro.sumcheck import prove, prove_multilinear

F = DEFAULT_FIELD
RNG = random.Random(42)
TABLE = MultilinearPolynomial.random(F, 12, RNG).evals
RANDOMS = F.rand_vector(12, RNG)


def test_table4_simulated(benchmark, show):
    rows = benchmark(compute_table4)
    show(format_rows("Table 4 — Sum-check throughput (proofs/ms)", rows))
    speedups = [r.values["speedup_vs_gpu"] for r in rows]
    assert all(s > 1 for s in speedups)
    assert speedups[-1] > speedups[0]  # 2^18 gains more than 2^22
    assert all(r.values["speedup_vs_cpu"] > 1000 for r in rows)


def test_functional_algorithm1(benchmark):
    """The paper's Algorithm 1 on a 2^12-entry table (real field math)."""
    proof = benchmark(prove_multilinear, F, TABLE, RANDOMS)
    assert len(proof) == 12


def test_functional_noninteractive(benchmark):
    """Fiat-Shamir sum-check including transcript hashing."""
    result = benchmark(lambda: prove(F, TABLE, Transcript(b"bench")))
    assert result.proof.num_rounds == 12
