"""Future-work bench: the latency-throughput frontier (§6.2's closing
research direction, implemented).

Sweeps stage fusion on the full ZKP system and prints the frontier; also
evaluates the express-lane hybrid split.
"""

from repro.gpu import get_gpu
from repro.pipeline import (
    latency_throughput_frontier,
    run_hybrid,
    zkp_system_graph,
)

GH200 = get_gpu("GH200")


def test_frontier_full_system(benchmark, show):
    graph = zkp_system_graph(1 << 20)

    points = benchmark(
        lambda: latency_throughput_frontier(GH200, graph, depths=(29, 12, 6, 3, 1))
    )
    lines = ["Latency-throughput frontier (ZKP system, S=2^20, GH200):"]
    base = points[0]
    for p in points:
        lines.append(
            f"  depth {p.super_stages:3d}: latency {p.latency_seconds * 1e3:7.1f} ms "
            f"({base.latency_seconds / p.latency_seconds:4.1f}x lower), "
            f"throughput {p.throughput_per_second:6.1f}/s "
            f"({100 * p.throughput_per_second / base.throughput_per_second:5.1f}% of split)"
        )
    lines.append(
        "  (at S = 2^20 every stage's work far exceeds the thread count, so "
        "intra-group idling — the fusion cost — is negligible and fusion is "
        "nearly free; at module scale (Merkle 2^18, see the test suite) the "
        "trade-off is real: fully fused loses ~30% throughput)"
    )
    show("\n".join(lines))
    # The future-work claim made quantitative: a mid-depth fusion keeps
    # most of the throughput while cutting latency several-fold.
    mid = points[2]
    assert mid.latency_seconds < base.latency_seconds / 3
    assert mid.throughput_per_second > 0.6 * base.throughput_per_second
    # And the frontier is monotone: latency strictly falls, throughput
    # never rises, as depth shrinks.
    lats = [p.latency_seconds for p in points]
    thpts = [p.throughput_per_second for p in points]
    assert lats == sorted(lats, reverse=True)
    # 0.1% tolerance: allocator quantization jitters the beat slightly.
    assert all(b <= a * 1.001 for a, b in zip(thpts, thpts[1:]))


def test_hybrid_express_lane(benchmark, show):
    graph = zkp_system_graph(1 << 20)
    hybrid = benchmark(lambda: run_hybrid(GH200, graph, express_fraction=0.25))
    show(
        f"Hybrid split (25% express): express latency "
        f"{hybrid.express_latency_seconds * 1e3:.1f} ms vs bulk "
        f"{hybrid.bulk_latency_seconds * 1e3:.1f} ms; combined throughput "
        f"{hybrid.total_throughput_per_second:.1f}/s"
    )
    assert hybrid.express_latency_seconds < hybrid.bulk_latency_seconds
