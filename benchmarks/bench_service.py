"""Streaming service sweep: arrival rate × batch window.

Thin CLI shim (S29): the measurement cores live in
:mod:`repro.experiments.benches` (``service_setup``,
``run_service_cell``, ``run_service_sweep``) and are registered as the
``bench_service`` experiment — ``python -m repro experiment run
bench_service`` is the canonical entry point (artifact dir + ledger).
The pytest entry points below stay here so ``pytest benchmarks/``
keeps exercising the service exactly as before.

Not a paper table, but the paper's thesis made operational: batch
proving only pays if the front-end can *form* batches from an online
stream.  The sweep replays synthetic Poisson traffic through
:class:`repro.service.ProofService` across a grid of arrival rates and
batching windows and reports, per cell, the achieved throughput, mean
batch size, cache absorption, and p95 end-to-end latency.

Run directly for a report:  PYTHONPATH=src python benchmarks/bench_service.py
Quick mode (CI smoke):      PYTHONPATH=src python benchmarks/bench_service.py --quick
"""

import sys

from repro.experiments.benches import (
    run_service_cell,
    run_service_sweep,
    service_setup,
)

GATES = 96
REQUESTS = 64
RATES = (100.0, 400.0)
WINDOWS = (0.002, 0.02, 0.08)
MAX_BATCH = 16

QUICK_REQUESTS = 16
QUICK_RATES = (400.0,)
QUICK_WINDOWS = (0.002, 0.02)

# Back-compat aliases for the pre-S29 module-level names.
_setup = service_setup


def run_cell(cc, spec, key, *, rate, window, requests=REQUESTS,
             verify_sample=4):
    """One (arrival rate, batch window) cell of the sweep."""
    return run_service_cell(
        cc, spec, key, rate=rate, window=window, requests=requests,
        max_batch=MAX_BATCH, verify_sample=verify_sample,
    )


def run_sweep(rates=RATES, windows=WINDOWS, requests: int = REQUESTS) -> list:
    return run_service_sweep(
        rates=rates, windows=windows, requests=requests, gates=GATES
    )["cells"]


def _format(rows) -> str:
    lines = [
        f"{'rate':>6} {'window':>8} {'batches':>8} {'mean sz':>8} "
        f"{'thpt p/s':>9} {'p95 ms':>8} {'cached':>7} {'ok':>3}"
    ]
    for r in rows:
        lines.append(
            f"{r['rate']:6.0f} {r['window_ms']:6.0f}ms {r['batches']:8d} "
            f"{r['mean_batch']:8.1f} {r['throughput']:9.1f} "
            f"{r['p95_ms']:8.1f} {r['cache_absorbed']:7d} "
            f"{'y' if r['verified'] else 'N':>3}"
        )
    return "\n".join(lines)


# -- pytest entry points (quick, CI-safe) -------------------------------------

def test_bench_service_quick_cells(show):
    """Quick sweep: every cell completes, verifies, and forms batches."""
    rows = run_sweep(
        rates=QUICK_RATES, windows=QUICK_WINDOWS, requests=QUICK_REQUESTS
    )
    show("service sweep (quick):\n" + _format(rows))
    for row in rows:
        assert row["verified"], row
        assert row["completed"] >= QUICK_REQUESTS
        assert row["batches"] >= 1


def test_bench_wider_window_forms_larger_batches(show):
    """The batching knob works: a 40x wider window must not form *more*
    batches for the same load, and typically forms larger ones."""
    cc, spec, key = _setup()
    tight = run_cell(cc, spec, key, rate=400.0, window=0.002,
                     requests=QUICK_REQUESTS * 2)
    wide = run_cell(cc, spec, key, rate=400.0, window=0.08,
                    requests=QUICK_REQUESTS * 2)
    show(
        f"window 2ms → {tight['batches']} batches (mean {tight['mean_batch']:.1f}); "
        f"window 80ms → {wide['batches']} batches (mean {wide['mean_batch']:.1f})"
    )
    assert wide["batches"] <= tight["batches"]
    assert wide["mean_batch"] >= tight["mean_batch"]


if __name__ == "__main__":
    quick = "--quick" in sys.argv[1:]
    if quick:
        rows = run_sweep(
            rates=QUICK_RATES, windows=QUICK_WINDOWS, requests=QUICK_REQUESTS
        )
    else:
        rows = run_sweep()
    print(f"service sweep over {len(rows)} cells "
          f"({'quick' if quick else 'full'} mode, {GATES} gates):")
    print(_format(rows))
    if not all(r["verified"] for r in rows):
        sys.exit(1)
