"""Streaming service sweep: arrival rate × batch window.

Not a paper table, but the paper's thesis made operational: batch
proving only pays if the front-end can *form* batches from an online
stream.  This benchmark replays synthetic Poisson traffic through
:class:`repro.service.ProofService` across a grid of arrival rates and
batching windows and reports, per cell, the achieved throughput, mean
batch size, cache absorption, and p95 end-to-end latency — the
throughput/latency tradeoff the ``max_wait_seconds`` knob buys.

Expected shape: longer windows form larger (more efficient) batches and
raise throughput under load, at the cost of added queueing latency at
low rates; the cache line shows duplicate traffic served below proving
cost.

Run directly for a report:  PYTHONPATH=src python benchmarks/bench_service.py
Quick mode (CI smoke):      PYTHONPATH=src python benchmarks/bench_service.py --quick
"""

import sys
import time

import pytest

from repro.core import ProofTask, SnarkProver, make_pcs, random_circuit
from repro.field import DEFAULT_FIELD
from repro.runtime import ProverSpec
from repro.service import (
    BatchPolicy,
    ProofService,
    RuntimeProofBackend,
    poisson_trace,
    replay,
    spec_key,
    task_witness_key,
)

GATES = 96
REQUESTS = 64
RATES = (100.0, 400.0)
WINDOWS = (0.002, 0.02, 0.08)
MAX_BATCH = 16

QUICK_REQUESTS = 16
QUICK_RATES = (400.0,)
QUICK_WINDOWS = (0.002, 0.02)


def _setup(gates: int = GATES):
    cc = random_circuit(DEFAULT_FIELD, gates, seed=9)
    pcs = make_pcs(DEFAULT_FIELD, cc.r1cs, num_col_checks=6)
    prover = SnarkProver(cc.r1cs, pcs, public_indices=cc.public_indices)
    spec = ProverSpec.from_prover(prover)
    return cc, spec, spec_key(spec)


def run_cell(
    cc,
    spec,
    key,
    *,
    rate: float,
    window: float,
    requests: int = REQUESTS,
    verify_sample: int = 4,
) -> dict:
    """One (arrival rate, batch window) cell of the sweep."""
    backend = RuntimeProofBackend({key: spec})
    policy = BatchPolicy(max_batch_size=MAX_BATCH, max_wait_seconds=window)
    events = poisson_trace(
        requests, rate, seed=int(rate) ^ 17, duplicate_fraction=0.15
    )

    def make_request(i):
        task = ProofTask(i, cc.witness, cc.public_values)
        return task, key, task_witness_key(task) + i.to_bytes(4, "little")

    service = ProofService(backend, policy=policy, max_queue=4 * requests)
    start = time.perf_counter()
    tickets, rejected = replay(service, events, make_request)
    service.drain(timeout=600)
    wall = time.perf_counter() - start
    service.close()

    accepted = [t for t in tickets if t is not None]
    proofs = [t.result(timeout=60) for t in accepted]
    verifier = backend.verifier_for(key)
    verified = all(
        verifier.verify(p, cc.public_values) for p in proofs[:verify_sample]
    )
    stats = service.stats
    return {
        "rate": rate,
        "window_ms": window * 1e3,
        "completed": stats.completed,
        "throughput": stats.completed / wall if wall > 0 else 0.0,
        "mean_batch": stats.mean_batch_size,
        "batches": len(stats.batch_sizes),
        "cache_absorbed": stats.cache_hits + stats.coalesced,
        "p95_ms": stats.p95_latency_seconds * 1e3,
        "deadline_misses": stats.deadline_misses,
        "rejected": rejected,
        "verified": verified,
    }


def run_sweep(
    rates=RATES, windows=WINDOWS, requests: int = REQUESTS
) -> list:
    cc, spec, key = _setup()
    return [
        run_cell(cc, spec, key, rate=rate, window=window, requests=requests)
        for rate in rates
        for window in windows
    ]


def _format(rows) -> str:
    lines = [
        f"{'rate':>6} {'window':>8} {'batches':>8} {'mean sz':>8} "
        f"{'thpt p/s':>9} {'p95 ms':>8} {'cached':>7} {'ok':>3}"
    ]
    for r in rows:
        lines.append(
            f"{r['rate']:6.0f} {r['window_ms']:6.0f}ms {r['batches']:8d} "
            f"{r['mean_batch']:8.1f} {r['throughput']:9.1f} "
            f"{r['p95_ms']:8.1f} {r['cache_absorbed']:7d} "
            f"{'y' if r['verified'] else 'N':>3}"
        )
    return "\n".join(lines)


# -- pytest entry points (quick, CI-safe) -------------------------------------

def test_bench_service_quick_cells(show):
    """Quick sweep: every cell completes, verifies, and forms batches."""
    rows = run_sweep(
        rates=QUICK_RATES, windows=QUICK_WINDOWS, requests=QUICK_REQUESTS
    )
    show("service sweep (quick):\n" + _format(rows))
    for row in rows:
        assert row["verified"], row
        assert row["completed"] >= QUICK_REQUESTS
        assert row["batches"] >= 1


def test_bench_wider_window_forms_larger_batches(show):
    """The batching knob works: a 40x wider window must not form *more*
    batches for the same load, and typically forms larger ones."""
    cc, spec, key = _setup()
    tight = run_cell(cc, spec, key, rate=400.0, window=0.002,
                     requests=QUICK_REQUESTS * 2)
    wide = run_cell(cc, spec, key, rate=400.0, window=0.08,
                    requests=QUICK_REQUESTS * 2)
    show(
        f"window 2ms → {tight['batches']} batches (mean {tight['mean_batch']:.1f}); "
        f"window 80ms → {wide['batches']} batches (mean {wide['mean_batch']:.1f})"
    )
    assert wide["batches"] <= tight["batches"]
    assert wide["mean_batch"] >= tight["mean_batch"]


if __name__ == "__main__":
    quick = "--quick" in sys.argv[1:]
    if quick:
        rows = run_sweep(
            rates=QUICK_RATES, windows=QUICK_WINDOWS, requests=QUICK_REQUESTS
        )
    else:
        rows = run_sweep()
    print(f"service sweep over {len(rows)} cells "
          f"({'quick' if quick else 'full'} mode, {GATES} gates):")
    print(_format(rows))
    if not all(r["verified"] for r in rows):
        sys.exit(1)
