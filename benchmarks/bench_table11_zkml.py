"""E10 — Table 11: verifiable machine learning (VGG-16 / CIFAR-10).

Simulated pipeline throughput for the 21M-gate VGG-16 circuit, plus a
real end-to-end proof of a small CNN's inference through the MLaaS
service (the functional counterpart at laptop scale).
"""

from repro.bench import compute_table11, format_rows
from repro.zkml import MlaasService, random_input, tiny_cnn

MODEL = tiny_cnn(input_size=4, channels=1, classes=3)
MODEL.init_params(7)
SERVICE = MlaasService(MODEL, num_col_checks=6)
INPUT = random_input(MODEL.input_shape, seed=1, frac_bits=4)


def test_table11_vgg16(benchmark, show):
    rows = benchmark(compute_table11)
    show(format_rows("Table 11 — verifiable ML systems (VGG-16/CIFAR-10)", rows))
    ours = next(r for r in rows if r.label == "Ours").values
    baselines = [r.values for r in rows if r.label != "Ours"]
    # Sub-second amortized proof generation — the paper's headline claim.
    assert 1.0 / ours["throughput"] < 1.0
    # Orders of magnitude over every CPU baseline.
    for base in baselines:
        assert ours["throughput"] / base["throughput"] > 200
    # Best accuracy of the cohort (the paper trained a better model).
    assert ours["accuracy"] == max(r.values["accuracy"] for r in rows)


def test_functional_mlaas_prove(benchmark):
    """Real SNARK proof of a small CNN inference (commit-predict-prove)."""
    resp = benchmark(SERVICE.prove_prediction, INPUT)
    assert resp.proof is not None


def test_functional_mlaas_verify(benchmark):
    resp = SERVICE.prove_prediction(INPUT)
    ok = benchmark(SERVICE.verify_prediction, INPUT, resp)
    assert ok
