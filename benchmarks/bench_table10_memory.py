"""E9 — Table 10: amortized device memory per in-flight proof."""

from repro.bench import compute_table10, format_rows
from repro.gpu import dynamic_footprint_blocks, preload_footprint_blocks


def test_table10_memory(benchmark, show):
    rows = benchmark(compute_table10)
    show(format_rows("Table 10 — device memory per proof (GB)", rows))
    for row in rows:
        v = row.values
        assert v["ours_gb"] < v["bellperson_gb"]
        assert v["reduction"] > 3  # paper: ~9-11x less memory
    # Memory grows with S for both systems.
    ours = [r.values["ours_gb"] for r in rows]
    assert ours == sorted(ours)


def test_dynamic_vs_preload_footprint(benchmark, show):
    """§3.1's closed forms: 2N blocks (dynamic) vs mN (preload)."""

    def run():
        n = 1 << 18
        return dynamic_footprint_blocks(n), preload_footprint_blocks(n, 16)

    dyn, pre = benchmark(run)
    show(
        f"Footprint @ N=2^18: dynamic {dyn} blocks vs preload(16 trees) "
        f"{pre} blocks -> {pre / dyn:.1f}x reduction"
    )
    assert pre / dyn > 7
