"""Lane-vectorized prover: fused same-circuit batches vs serial proving.

Thin CLI shim (S29): the measurement core lives in
:func:`repro.experiments.benches.run_lanes` and is registered as the
``bench_lanes`` experiment — ``python -m repro experiment run
bench_lanes`` is the canonical entry point (artifact dir + ledger).
This script keeps the legacy interface: the ``--min-speedup`` guard
(default 2.0x, exits nonzero below it), ``--quick`` CI sizes, and a
JSON dump in the normalized ExperimentResult schema.

Run directly for a report:  PYTHONPATH=src python benchmarks/bench_lanes.py
Quick mode (CI smoke):      PYTHONPATH=src python benchmarks/bench_lanes.py --quick
"""

import argparse
import json

from repro.experiments import default_bench_json, execute_spec, get_experiment
from repro.experiments.benches import run_lanes  # noqa: F401  (back-compat)


def _report(row: dict) -> None:
    print(
        f"[lanes]     {row['gates']} gates x {row['lanes']} lanes | serial "
        f"{row['serial_seconds'] * 1e3:7.1f} ms | laned "
        f"{row['laned_seconds'] * 1e3:7.1f} ms | speedup "
        f"{row['lane_speedup']:.2f}x | bytes identical: "
        f"{row['byte_identical']}"
    )
    print(
        f"[lanes]     throughput: serial {row['serial_throughput']:.1f} "
        f"proofs/s -> laned {row['laned_throughput']:.1f} proofs/s"
    )


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI smoke sizes")
    parser.add_argument(
        "--gates", type=int, default=None, help="circuit size override"
    )
    parser.add_argument(
        "--lanes", type=int, default=None, help="lane width override"
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="fail (exit 1) when laned/serial speedup drops below this "
        "(default: the registered guard's 2.0)",
    )
    parser.add_argument(
        "--out",
        default=str(default_bench_json("BENCH_lanes.json")),
        help="where to write the JSON results",
    )
    args = parser.parse_args()

    overrides = {}
    if args.gates:
        overrides["gates"] = args.gates
    if args.lanes:
        overrides["lanes"] = args.lanes
    spec = get_experiment("bench_lanes")
    result = execute_spec(
        spec,
        quick=args.quick,
        param_overrides=overrides or None,
        guard_overrides=(
            {"lane_speedup": args.min_speedup}
            if args.min_speedup is not None
            else None
        ),
    )
    if result.status == "error":
        raise SystemExit(result.error)
    _report(result.data)

    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(result.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"[lanes]     wrote {args.out}")

    failures = result.guard_failures
    if failures:
        raise SystemExit(f"perf regression: {failures[0].detail}")
