"""Parallel proving runtime: scaling vs serial, and crash recovery.

Thin CLI shim (S29): the measurement cores live in
:mod:`repro.experiments.benches` (``run_scaling``,
``run_crash_recovery``) and are registered together as the
``bench_parallel_runtime`` experiment — ``python -m repro experiment
run bench_parallel_runtime`` is the canonical entry point (artifact
dir + ledger).  The pytest entry points below stay here so ``pytest
benchmarks/`` keeps exercising the runtime exactly as before.

Not a paper table: the paper fills a GPU's SMs with a pipelined kernel
schedule; :mod:`repro.runtime` fills the host's CPU cores with real proof
generation — a 4-worker pool over ≥ 32 tasks should land well above 2×
the serial `prove_all` throughput on a ≥ 4-core machine, and an injected
worker crash mid-batch must still yield a complete, verifying proof set.

Run directly for a report:  PYTHONPATH=src python benchmarks/bench_parallel_runtime.py
Quick mode (CI smoke):      PYTHONPATH=src python benchmarks/bench_parallel_runtime.py --quick
"""

import os
import sys

import pytest

from repro.experiments.benches import (  # noqa: F401  (back-compat)
    crash_first_attempts,
    run_crash_recovery,
    run_scaling,
)

GATES = 384
TASKS = 48
WORKERS = 4


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4, reason="scaling run needs >= 4 cores"
)
def test_bench_parallel_speedup(show):
    """E14 companion: >= 2x over serial with 4 workers on >= 32 tasks."""
    row = run_scaling()
    show(
        f"parallel runtime: {row['workers']} workers, {row['tasks']} tasks — "
        f"serial {row['serial_throughput']:.2f} p/s, "
        f"parallel {row['parallel_throughput']:.2f} p/s, "
        f"speedup {row['speedup']:.2f}x, "
        f"utilization {row['utilization'] * 100:.0f}%"
    )
    assert row["speedup"] >= 2.0


def test_bench_crash_recovery(show):
    """An injected mid-batch worker crash is absorbed by the retry path."""
    row = run_crash_recovery(tasks=8, workers=min(WORKERS, os.cpu_count() or 1))
    show(
        f"crash recovery: retries={row['retries']}, "
        f"complete={row['complete']}, verified={row['verified']}"
    )
    assert row["complete"] and row["verified"]
    assert row["retries"] >= 1


if __name__ == "__main__":
    cores = os.cpu_count() or 1
    quick = "--quick" in sys.argv[1:]
    print(f"host cores: {cores}{' (quick mode)' if quick else ''}")
    workers = min(2 if quick else WORKERS, cores)
    row = run_scaling(tasks=8 if quick else TASKS, workers=workers)
    print(
        f"[scaling]   {row['tasks']} tasks | serial "
        f"{row['serial_throughput']:6.2f} p/s | {row['workers']} workers "
        f"{row['parallel_throughput']:6.2f} p/s | speedup {row['speedup']:.2f}x "
        f"| utilization {row['utilization'] * 100:.0f}% "
        f"| p95 {row['p95_latency_ms']:.0f} ms"
    )
    rec = run_crash_recovery(tasks=8 if quick else TASKS, workers=workers)
    print(
        f"[recovery]  injected crashes -> retries={rec['retries']}, "
        f"complete={rec['complete']}, all proofs verify={rec['verified']}"
    )
