"""Parallel proving runtime: scaling vs serial, and crash recovery.

Not a paper table: the paper fills a GPU's SMs with a pipelined kernel
schedule; :mod:`repro.runtime` fills the host's CPU cores with real proof
generation.  This benchmark measures the functional half's scaling — a
4-worker pool over ≥ 32 tasks should land well above 2× the serial
`prove_all` throughput on a ≥ 4-core machine — and demonstrates that an
injected worker crash mid-batch still yields a complete, verifying proof
set via the retry path.

Run directly for a report:  PYTHONPATH=src python benchmarks/bench_parallel_runtime.py
Quick mode (CI smoke):      PYTHONPATH=src python benchmarks/bench_parallel_runtime.py --quick
"""

import os
import sys
import time

import pytest

from repro.core import (
    BatchProver,
    ProofTask,
    SnarkProver,
    make_pcs,
    random_circuit,
    verify_all,
)
from repro.field import DEFAULT_FIELD
from repro.runtime import ParallelProvingRuntime, ProverSpec

#: Sized so each proof takes ~20 ms: pool startup (~0.1 s) then amortizes
#: far below the measured speedup on a >= 4-core host.
GATES = 384
TASKS = 48
WORKERS = 4


def _setup(gates: int = GATES, tasks: int = TASKS):
    cc = random_circuit(DEFAULT_FIELD, gates, seed=5)
    pcs = make_pcs(DEFAULT_FIELD, cc.r1cs, num_col_checks=6)
    prover = SnarkProver(cc.r1cs, pcs, public_indices=cc.public_indices)
    task_list = [
        ProofTask(i, cc.witness, cc.public_values) for i in range(tasks)
    ]
    return prover, task_list


def crash_first_attempts(task_id: int, attempt: int) -> None:
    """Injected fault: tasks 3 and 17 die on their first attempt."""
    if task_id in (3, 17) and attempt == 1:
        raise RuntimeError(f"injected worker crash on task {task_id}")


def run_scaling(tasks: int = TASKS, workers: int = WORKERS) -> dict:
    """Serial vs pooled throughput on the same batch."""
    prover, task_list = _setup(tasks=tasks)
    spec = ProverSpec.from_prover(prover)

    serial_start = time.perf_counter()
    serial_proofs, serial_stats = BatchProver(prover).prove_all(task_list)
    serial_seconds = time.perf_counter() - serial_start

    runtime = ParallelProvingRuntime(spec, workers=workers, chunk_size=2)
    parallel_start = time.perf_counter()
    parallel_proofs, parallel_stats = runtime.prove_tasks(task_list)
    parallel_seconds = time.perf_counter() - parallel_start

    verifier = spec.build_verifier()
    assert verify_all(verifier, serial_proofs, task_list)
    assert verify_all(verifier, parallel_proofs, task_list)
    return {
        "tasks": tasks,
        "workers": workers,
        "serial_seconds": serial_seconds,
        "serial_throughput": serial_stats.throughput_per_second,
        "parallel_seconds": parallel_seconds,
        "parallel_throughput": parallel_stats.throughput_per_second,
        "speedup": serial_seconds / parallel_seconds,
        "utilization": parallel_stats.worker_utilization,
        "p95_latency_ms": parallel_stats.p95_latency_seconds * 1e3,
    }


def run_crash_recovery(tasks: int = TASKS, workers: int = WORKERS) -> dict:
    """A crashing worker mid-batch must not cost any proofs."""
    prover, task_list = _setup(tasks=tasks)
    spec = ProverSpec.from_prover(prover)
    runtime = ParallelProvingRuntime(
        spec, workers=workers, fault_injector=crash_first_attempts
    )
    proofs, stats = runtime.prove_tasks(task_list)
    complete = len(proofs) == len(task_list)
    verified = verify_all(spec.build_verifier(), proofs, task_list)
    return {
        "complete": complete,
        "verified": verified,
        "retries": stats.retries,
        "throughput": stats.throughput_per_second,
    }


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4, reason="scaling run needs >= 4 cores"
)
def test_bench_parallel_speedup(show):
    """E14 companion: >= 2x over serial with 4 workers on >= 32 tasks."""
    row = run_scaling()
    show(
        f"parallel runtime: {row['workers']} workers, {row['tasks']} tasks — "
        f"serial {row['serial_throughput']:.2f} p/s, "
        f"parallel {row['parallel_throughput']:.2f} p/s, "
        f"speedup {row['speedup']:.2f}x, "
        f"utilization {row['utilization'] * 100:.0f}%"
    )
    assert row["speedup"] >= 2.0


def test_bench_crash_recovery(show):
    """An injected mid-batch worker crash is absorbed by the retry path."""
    row = run_crash_recovery(tasks=8, workers=min(WORKERS, os.cpu_count() or 1))
    show(
        f"crash recovery: retries={row['retries']}, "
        f"complete={row['complete']}, verified={row['verified']}"
    )
    assert row["complete"] and row["verified"]
    assert row["retries"] >= 1


if __name__ == "__main__":
    cores = os.cpu_count() or 1
    quick = "--quick" in sys.argv[1:]
    print(f"host cores: {cores}{' (quick mode)' if quick else ''}")
    workers = min(2 if quick else WORKERS, cores)
    row = run_scaling(tasks=8 if quick else TASKS, workers=workers)
    print(
        f"[scaling]   {row['tasks']} tasks | serial "
        f"{row['serial_throughput']:6.2f} p/s | {row['workers']} workers "
        f"{row['parallel_throughput']:6.2f} p/s | speedup {row['speedup']:.2f}x "
        f"| utilization {row['utilization'] * 100:.0f}% "
        f"| p95 {row['p95_latency_ms']:.0f} ms"
    )
    rec = run_crash_recovery(tasks=8 if quick else TASKS, workers=workers)
    print(
        f"[recovery]  injected crashes -> retries={rec['retries']}, "
        f"complete={rec['complete']}, all proofs verify={rec['verified']}"
    )
