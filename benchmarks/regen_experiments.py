#!/usr/bin/env python3
"""Regenerate EXPERIMENTS.md from live simulator runs.

Thin shim (S29): the rendering moved to
:func:`repro.experiments.report.render_experiments_md`, which consumes
normalized ExperimentResults from the registered paper-table
experiments.  The canonical entry point is now::

    python -m repro experiment reproduce-all

which additionally runs every extension bench into an
``artifacts/<run-id>/`` directory and appends the cross-run ledger.
This script keeps the old one-file behavior — recompute the paper
artifacts and rewrite ``EXPERIMENTS.md`` — nothing else.

Run:  python benchmarks/regen_experiments.py  (writes ../EXPERIMENTS.md)
"""

from __future__ import annotations

from repro.experiments import execute_spec, get_experiment, repo_root
from repro.experiments.report import PAPER_EXPERIMENTS, render_experiments_md


def main() -> int:
    results = {}
    for name in PAPER_EXPERIMENTS:
        result = execute_spec(get_experiment(name))
        if not result.ok:
            raise SystemExit(f"{name} failed: {result.error or result.status}")
        results[name] = result
    out_path = repo_root() / "EXPERIMENTS.md"
    out_path.write_text(render_experiments_md(results))
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
