"""E1 — Table 3: Merkle tree module throughput (trees/ms).

Regenerates Orion-CPU vs Simon-GPU vs Ours on the simulated GH200 for
N = 2^18..2^22 blocks, and micro-benchmarks the *real* Python Merkle
implementations at laptop scale.
"""

from repro.bench import compute_table3, format_rows
from repro.hashing import get_hasher
from repro.merkle import MerkleTree, merkle_root_streaming


def test_table3_simulated(benchmark, show):
    rows = benchmark(compute_table3)
    show(format_rows("Table 3 — Merkle tree throughput (trees/ms)", rows))
    # Shape assertions: ours wins everywhere, advantage grows as N shrinks.
    speedups = [r.values["speedup_vs_gpu"] for r in rows]
    assert all(s > 1 for s in speedups)
    assert speedups[-1] > speedups[0]
    assert all(r.values["speedup_vs_cpu"] > 300 for r in rows)


BLOCKS = [bytes([i % 256]) * 64 for i in range(1 << 10)]


def test_functional_merkle_tree_sha256(benchmark):
    """Real from-scratch SHA-256 Merkle tree over 2^10 blocks."""
    hasher = get_hasher("sha256")
    root = benchmark(lambda: MerkleTree.from_blocks(BLOCKS[:256], hasher).root)
    assert len(root) == 32


def test_functional_merkle_tree_hw(benchmark):
    """Same tree with the hashlib-backed hasher (hardware-speed stand-in)."""
    hasher = get_hasher("sha256-hw")
    root = benchmark(lambda: MerkleTree.from_blocks(BLOCKS, hasher).root)
    assert len(root) == 32


def test_functional_merkle_streaming(benchmark):
    """The §3.1 layer-streaming construction (2N-block working set)."""
    hasher = get_hasher("sha256-hw")
    root = benchmark(lambda: merkle_root_streaming(BLOCKS, hasher))
    assert root == MerkleTree.from_blocks(BLOCKS, hasher).root
