"""Benchmark-suite helpers: print each regenerated table once."""

import pytest


@pytest.fixture
def show(capsys):
    """Print through pytest's capture so tables land in the bench output."""

    def _show(text: str) -> None:
        with capsys.disabled():
            print("\n" + text)

    return _show
