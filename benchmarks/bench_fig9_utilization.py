"""E5 — Figure 9: GPU core utilization over time per module (3090Ti).

Renders ASCII utilization traces for the pipelined scheduler vs the
non-pipelined baseline and checks the figure's qualitative content: the
pipelined schemes hold high utilization; the baselines decay sharply.
"""

from repro.bench import compute_fig9


def _sparkline(trace, width=60):
    if not trace:
        return ""
    chars = " ▁▂▃▄▅▆▇█"
    step = max(1, len(trace) // width)
    out = []
    for i in range(0, len(trace), step):
        u = trace[i][1]
        out.append(chars[min(len(chars) - 1, int(u * (len(chars) - 1) + 0.5))])
    return "".join(out)


def test_fig9_utilization(benchmark, show):
    data = benchmark(compute_fig9)
    lines = ["Figure 9 — GPU core utilization (3090Ti, 10752 cores)"]
    for module, traces in data.items():
        lines.append(f"  {module:9s} ours     |{_sparkline(traces['ours'])}|"
                     f" mean={traces['ours_mean']:.2f}")
        lines.append(f"  {module:9s} baseline |{_sparkline(traces['baseline'])}|"
                     f" mean={traces['baseline_mean']:.2f}")
    show("\n".join(lines))
    for module, traces in data.items():
        # Pipelined utilization stays high (the mean includes the fill and
        # drain ramps of Figure 4b; steady state sits near peak)...
        assert traces["ours_mean"] > 0.7, module
        # ...and leaves the baseline's decaying profile far behind.
        assert traces["ours_mean"] > traces["baseline_mean"] + 0.3, module
