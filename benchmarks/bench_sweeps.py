"""Sweep benchmarks: the trend curves behind the paper's tables.

Batch amortization (§4 full-workload state), thread scaling (§4 resource
allocation), pipelined-vs-naive speedup vs input size (Tables 3-5 trend),
and device scaling (Table 8 trend).
"""

from repro.gpu import (
    batch_amortization_curve,
    device_scaling_curve,
    get_gpu,
    monotone_nondecreasing,
    monotone_nonincreasing,
    size_speedup_curve,
    thread_scaling_curve,
)
from repro.pipeline import merkle_graph, sumcheck_graph

GH200 = get_gpu("GH200")


def test_sweep_batch_amortization(benchmark, show):
    xs, series = benchmark(
        lambda: batch_amortization_curve(GH200, merkle_graph(1 << 18))
    )
    rows = ", ".join(
        f"B={int(b)}: {a * 1e6:.0f}us" for b, a in zip(xs, series["amortized_seconds"])
    )
    show(f"Batch amortization (Merkle 2^18): {rows}")
    assert monotone_nonincreasing(series["amortized_seconds"])
    # The paper's full-workload claim: large batches amortize fill/drain
    # to within a few percent of the steady beat.
    assert series["amortized_seconds"][-1] < 1.1 * series["steady_beat_seconds"][-1]


def test_sweep_thread_scaling(benchmark, show):
    xs, series = benchmark(
        lambda: thread_scaling_curve(GH200, sumcheck_graph(18))
    )
    rows = ", ".join(
        f"{int(t)}thr: {v:.0f}/s"
        for t, v in zip(xs, series["throughput_per_second"])
    )
    show(f"Thread scaling (sum-check 2^18): {rows}")
    assert monotone_nondecreasing(series["throughput_per_second"])


def test_sweep_size_speedup(benchmark, show):
    xs, series = benchmark(
        lambda: size_speedup_curve(GH200, lambda lg: merkle_graph(1 << lg))
    )
    rows = ", ".join(
        f"2^{int(lg)}: {s:.2f}x" for lg, s in zip(xs, series["speedup"])
    )
    show(f"Pipelined/naive speedup vs size (Merkle): {rows}")
    # The advantage widens as trees shrink (Tables 3-4's key trend).
    assert series["speedup"][0] > series["speedup"][-1] > 1.0


def test_sweep_device_scaling(benchmark, show):
    xs, series = benchmark(
        lambda: device_scaling_curve(lambda dev: merkle_graph(1 << 20))
    )
    paired = sorted(zip(xs, series["throughput_per_second"]))
    show(
        "Device scaling (Merkle 2^20): "
        + ", ".join(f"{int(x)}Mcyc/s: {t:.1f}/s" for x, t in paired)
    )
    assert monotone_nondecreasing([t for _, t in paired])
