"""Stage-pipelined executor vs pool and serial at equal worker counts.

Thin CLI shim (S29): the measurement core lives in
:func:`repro.experiments.benches.run_pipeline_sweep` and is registered
as the ``bench_pipeline`` experiment — ``python -m repro experiment run
bench_pipeline`` is the canonical entry point (artifact dir + ledger).
This script keeps the legacy interface: the ``--min-ratio`` guard
(default 1.0x, exits nonzero when the pipeline stops keeping up with
the pool at the largest swept batch), ``--quick`` CI sizes, and a JSON
dump (now the normalized ExperimentResult schema, written to the repo
root by default rather than the shell's cwd).

Run directly for a report:  PYTHONPATH=src python benchmarks/bench_pipeline.py
Quick mode (CI smoke):      PYTHONPATH=src python benchmarks/bench_pipeline.py --quick
"""

import argparse
import json

from repro.experiments import default_bench_json, execute_spec, get_experiment
from repro.experiments.benches import (  # noqa: F401  (back-compat)
    run_pipeline_sweep,
    run_pipeline_sweep as run_sweep,
)

GATES = 384
WORKERS = 2
BATCHES = (4, 8, 16, 32)
QUICK_GATES = 128
QUICK_BATCHES = (4, 8)


def _report(result: dict) -> None:
    workers = result["workers"]
    for row in result["rows"]:
        cells = "  ".join(
            f"{name} {row[name]['seconds'] * 1e3:8.1f} ms "
            f"({row[name]['throughput']:6.2f}/s)"
            for name in ("serial", f"pool:{workers}", f"pipelined:{workers}")
        )
        print(f"[pipeline]  batch {row['batch']:3d} | {cells}")
    print(
        f"[pipeline]  crossover vs pool:{workers} at batch "
        f"{result['crossover_vs_pool']} | vs serial at batch "
        f"{result['crossover_vs_serial']} "
        f"(host cores: {result['host_cores']})"
    )


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI smoke sizes")
    parser.add_argument(
        "--gates", type=int, default=None, help="circuit size override"
    )
    parser.add_argument(
        "--workers", type=int, default=None, help="total workers per side"
    )
    parser.add_argument(
        "--min-ratio",
        type=float,
        default=None,
        help="fail (exit 1) when pipelined/pool throughput at the largest "
        "batch drops below this (default: the registered guard's 1.0)",
    )
    parser.add_argument(
        "--out",
        default=str(default_bench_json("BENCH_pipeline.json")),
        help="where to write the JSON results",
    )
    args = parser.parse_args()

    overrides = {}
    if args.gates:
        overrides["gates"] = args.gates
    if args.workers:
        overrides["workers"] = args.workers
    spec = get_experiment("bench_pipeline")
    result = execute_spec(
        spec,
        quick=args.quick,
        param_overrides=overrides or None,
        guard_overrides=(
            {"min_ratio": args.min_ratio}
            if args.min_ratio is not None
            else None
        ),
    )
    if result.status == "error":
        raise SystemExit(result.error)
    _report(result.data)

    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(result.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"[pipeline]  wrote {args.out}")

    failures = result.guard_failures
    if failures:
        raise SystemExit(f"perf regression: {failures[0].detail}")
