"""Stage-pipelined executor vs pool and serial at equal worker counts.

The pipelined backend (S27) decomposes every proof into its stage units
(encode → merkle → sumcheck → open) and streams them through per-stage
worker groups sized from the measured *exclusive* stage fractions — the
paper's pipelined batch design (Fig. 4), where stage k of proof i
overlaps stage k+1 of proof i−1.  This benchmark answers the question
that decides whether the pipeline earns its place:

1. **Throughput** — at equal total workers, ``pipelined:W`` must match
   or beat ``pool:W`` on uniform batches once the batch is long enough
   to fill the pipeline; the sweep reports the crossover batch size.
2. **Byte identity** — every backend's proofs serialize to the exact
   serial bytes; overlap buys time, never a different transcript.

Results land in ``BENCH_pipeline.json`` and a regression guard
(``--min-ratio``, default 1.0x) exits nonzero when the pipeline stops
keeping up with the pool at the largest swept batch.

Run directly for a report:  PYTHONPATH=src python benchmarks/bench_pipeline.py
Quick mode (CI smoke):      PYTHONPATH=src python benchmarks/bench_pipeline.py --quick
"""

import argparse
import json
import os
import time

from repro.core import (
    ProofTask,
    SnarkProver,
    make_pcs,
    random_circuit,
    serialize_proof,
)
from repro.execution import resolve_backend
from repro.field import DEFAULT_FIELD
from repro.runtime import ProverSpec

GATES = 384
WORKERS = 2
BATCHES = (4, 8, 16, 32)
QUICK_GATES = 128
QUICK_BATCHES = (4, 8)


def _setup(gates: int, tasks: int):
    cc = random_circuit(DEFAULT_FIELD, gates, seed=7)
    pcs = make_pcs(DEFAULT_FIELD, cc.r1cs, num_col_checks=6)
    prover = SnarkProver(cc.r1cs, pcs, public_indices=cc.public_indices)
    spec = ProverSpec.from_prover(prover)
    task_list = [
        ProofTask(i, cc.witness, cc.public_values) for i in range(tasks)
    ]
    return spec, task_list


def _measure(selector: str, spec, task_list):
    """One fresh backend run: wall seconds, throughput, wire bytes.

    A fresh backend per measurement charges the pipelined warmup slice
    (and the pool's worker startup) to every batch size — the honest
    cold-start comparison."""
    backend = resolve_backend(selector)
    start = time.perf_counter()
    proofs, stats = backend.prove_tasks(spec, task_list)
    seconds = time.perf_counter() - start
    wire = [serialize_proof(p, DEFAULT_FIELD) for p in proofs]
    return {
        "seconds": seconds,
        "throughput": len(task_list) / seconds,
        "workers": stats.workers,
    }, wire


def run_sweep(gates: int, workers: int, batches) -> dict:
    """Batch-size sweep of serial vs pool:W vs pipelined:W.

    Asserts byte parity of every backend against serial at every batch
    size, and reports the smallest batch where the pipeline matches the
    pool (``crossover_vs_pool``) and serial (``crossover_vs_serial``)."""
    rows = []
    crossover_pool = None
    crossover_serial = None
    for batch in batches:
        spec, task_list = _setup(gates, batch)
        serial_row, serial_wire = _measure("serial", spec, task_list)
        pool_row, pool_wire = _measure(f"pool:{workers}", spec, task_list)
        pipe_row, pipe_wire = _measure(
            f"pipelined:{workers}", spec, task_list
        )
        assert pool_wire == serial_wire, "pool changed the proof bytes"
        assert pipe_wire == serial_wire, "pipeline changed the proof bytes"
        row = {
            "batch": batch,
            "serial": serial_row,
            f"pool:{workers}": pool_row,
            f"pipelined:{workers}": pipe_row,
            "byte_identical": True,
        }
        rows.append(row)
        if (
            crossover_pool is None
            and pipe_row["throughput"] >= pool_row["throughput"]
        ):
            crossover_pool = batch
        if (
            crossover_serial is None
            and pipe_row["throughput"] >= serial_row["throughput"]
        ):
            crossover_serial = batch
    return {
        "gates": gates,
        "workers": workers,
        "host_cores": os.cpu_count() or 1,
        "rows": rows,
        "crossover_vs_pool": crossover_pool,
        "crossover_vs_serial": crossover_serial,
    }


def _report(result: dict) -> None:
    workers = result["workers"]
    for row in result["rows"]:
        cells = "  ".join(
            f"{name} {row[name]['seconds'] * 1e3:8.1f} ms "
            f"({row[name]['throughput']:6.2f}/s)"
            for name in ("serial", f"pool:{workers}", f"pipelined:{workers}")
        )
        print(f"[pipeline]  batch {row['batch']:3d} | {cells}")
    print(
        f"[pipeline]  crossover vs pool:{workers} at batch "
        f"{result['crossover_vs_pool']} | vs serial at batch "
        f"{result['crossover_vs_serial']} "
        f"(host cores: {result['host_cores']})"
    )


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI smoke sizes")
    parser.add_argument(
        "--gates", type=int, default=None, help="circuit size override"
    )
    parser.add_argument(
        "--workers", type=int, default=WORKERS, help="total workers per side"
    )
    parser.add_argument(
        "--min-ratio",
        type=float,
        default=1.0,
        help="fail (exit 1) when pipelined/pool throughput at the largest "
        "batch drops below this",
    )
    parser.add_argument(
        "--out",
        default="BENCH_pipeline.json",
        help="where to write the JSON results",
    )
    args = parser.parse_args()

    gates = args.gates or (QUICK_GATES if args.quick else GATES)
    batches = QUICK_BATCHES if args.quick else BATCHES
    result = run_sweep(gates, args.workers, batches)
    _report(result)

    result["min_ratio"] = args.min_ratio
    with open(args.out, "w", encoding="utf-8") as handle:
        json.dump(result, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"[pipeline]  wrote {args.out}")

    last = result["rows"][-1]
    ratio = (
        last[f"pipelined:{args.workers}"]["throughput"]
        / last[f"pool:{args.workers}"]["throughput"]
    )
    if ratio < args.min_ratio:
        raise SystemExit(
            f"perf regression: pipelined:{args.workers} is {ratio:.2f}x the "
            f"pool:{args.workers} throughput at batch {last['batch']}, "
            f"below the --min-ratio floor {args.min_ratio:.2f}x"
        )
