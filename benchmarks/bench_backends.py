"""Execution backends: overhead of the seam, and sharded composition.

Not a paper table: this measures the unified backend layer (S24) that
every proving entry point now routes through.  Two questions an operator
cares about before trusting a seam on the hot path:

1. **Overhead** — `SerialBackend` must track inline `prover.prove` calls
   (the abstraction may not tax the floor), and `pool:N` must keep the
   runtime's scaling.
2. **Composition** — `sharded:pool:N,pool:N` must beat a single child on
   batches large enough to amortize both pools' startup.

Run directly for a report:  PYTHONPATH=src python benchmarks/bench_backends.py
Quick mode (CI smoke):      PYTHONPATH=src python benchmarks/bench_backends.py --quick
"""

import os
import sys
import time

from repro.core import (
    ProofTask,
    SnarkProver,
    make_pcs,
    random_circuit,
    verify_all,
)
from repro.execution import resolve_backend
from repro.field import DEFAULT_FIELD
from repro.runtime import ProverSpec

GATES = 384
TASKS = 48


def _setup(gates: int = GATES, tasks: int = TASKS):
    cc = random_circuit(DEFAULT_FIELD, gates, seed=7)
    pcs = make_pcs(DEFAULT_FIELD, cc.r1cs, num_col_checks=6)
    prover = SnarkProver(cc.r1cs, pcs, public_indices=cc.public_indices)
    spec = ProverSpec.from_prover(prover)
    task_list = [
        ProofTask(i, cc.witness, cc.public_values) for i in range(tasks)
    ]
    return prover, spec, task_list


def run_seam_overhead(tasks: int = TASKS) -> dict:
    """Inline prover.prove loop vs the same loop behind SerialBackend."""
    prover, spec, task_list = _setup(tasks=tasks)

    inline_start = time.perf_counter()
    inline_proofs = [
        prover.prove(t.witness, t.public_values) for t in task_list
    ]
    inline_seconds = time.perf_counter() - inline_start

    backend = resolve_backend("serial")
    backend.adopt_prover(spec, prover)
    seam_start = time.perf_counter()
    seam_proofs, stats = backend.prove_tasks(spec, task_list)
    seam_seconds = time.perf_counter() - seam_start

    assert len(seam_proofs) == len(inline_proofs)
    assert verify_all(spec.build_verifier(), seam_proofs, task_list)
    return {
        "tasks": tasks,
        "inline_seconds": inline_seconds,
        "seam_seconds": seam_seconds,
        "overhead_pct": (seam_seconds / inline_seconds - 1.0) * 100.0,
        "throughput": stats.throughput_per_second,
    }


def run_composition(tasks: int = TASKS, workers: int = 2) -> dict:
    """One pool vs two concurrent pools behind the sharded backend."""
    _, spec, task_list = _setup(tasks=tasks)
    rows = {}
    for selector in (
        f"pool:{workers}",
        f"sharded:pool:{workers},pool:{workers}",
    ):
        backend = resolve_backend(selector)
        start = time.perf_counter()
        proofs, stats = backend.prove_tasks(spec, task_list)
        seconds = time.perf_counter() - start
        assert verify_all(spec.build_verifier(), proofs, task_list)
        rows[selector] = {
            "seconds": seconds,
            "throughput": stats.throughput_per_second,
            "workers": stats.workers,
        }
    return rows


if __name__ == "__main__":
    cores = os.cpu_count() or 1
    quick = "--quick" in sys.argv[1:]
    print(f"host cores: {cores}{' (quick mode)' if quick else ''}")
    tasks = 8 if quick else TASKS
    workers = min(2, cores) if quick else min(4, cores)

    row = run_seam_overhead(tasks=tasks)
    print(
        f"[seam]      {row['tasks']} tasks | inline "
        f"{row['inline_seconds'] * 1e3:7.1f} ms | serial backend "
        f"{row['seam_seconds'] * 1e3:7.1f} ms | overhead "
        f"{row['overhead_pct']:+.1f}%"
    )

    rows = run_composition(tasks=tasks, workers=workers)
    for selector, r in rows.items():
        print(
            f"[compose]   {selector:28s} {r['workers']} worker(s) | "
            f"{r['seconds'] * 1e3:8.1f} ms | "
            f"{r['throughput']:6.2f} proofs/s"
        )
