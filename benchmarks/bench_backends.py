"""Execution backends: overhead of the seam, and sharded composition.

Thin CLI shim (S29): the measurement cores live in
:mod:`repro.experiments.benches` (``run_seam_overhead``,
``run_composition``) and are registered together as the
``bench_backends`` experiment — ``python -m repro experiment run
bench_backends`` is the canonical entry point (artifact dir + ledger).
Two questions an operator cares about before trusting a seam on the
hot path:

1. **Overhead** — `SerialBackend` must track inline `prover.prove` calls
   (the abstraction may not tax the floor), and `pool:N` must keep the
   runtime's scaling.
2. **Composition** — `sharded:pool:N,pool:N` must beat a single child on
   batches large enough to amortize both pools' startup.

Run directly for a report:  PYTHONPATH=src python benchmarks/bench_backends.py
Quick mode (CI smoke):      PYTHONPATH=src python benchmarks/bench_backends.py --quick
"""

import os
import sys

from repro.experiments.benches import (  # noqa: F401  (back-compat)
    run_composition,
    run_seam_overhead,
)

GATES = 384
TASKS = 48


if __name__ == "__main__":
    cores = os.cpu_count() or 1
    quick = "--quick" in sys.argv[1:]
    print(f"host cores: {cores}{' (quick mode)' if quick else ''}")
    tasks = 8 if quick else TASKS
    workers = min(2, cores) if quick else min(4, cores)

    row = run_seam_overhead(tasks=tasks)
    print(
        f"[seam]      {row['tasks']} tasks | inline "
        f"{row['inline_seconds'] * 1e3:7.1f} ms | serial backend "
        f"{row['seam_seconds'] * 1e3:7.1f} ms | overhead "
        f"{row['overhead_pct']:+.1f}%"
    )

    rows = run_composition(tasks=tasks, workers=workers)
    for selector, r in rows.items():
        print(
            f"[compose]   {selector:28s} {r['workers']} worker(s) | "
            f"{r['seconds'] * 1e3:8.1f} ms | "
            f"{r['throughput']:6.2f} proofs/s"
        )
