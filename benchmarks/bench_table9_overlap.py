"""E8 — Table 9: multi-stream communication/computation overlap."""

from repro.bench import compute_table9, format_rows
from repro.pipeline import BatchZkpSystem


def test_table9_overlap(benchmark, show):
    rows = benchmark(compute_table9)
    show(format_rows("Table 9 — per-beat comm/comp overlap (ms)", rows))
    for row in rows:
        v = row.values
        # Overlap: the beat costs ~max(comm, comp), far below comm + comp.
        assert v["overall_ms"] < v["comm_ms"] + v["comp_ms"] * 0.9
        assert v["overall_ms"] >= max(v["comm_ms"], v["comp_ms"]) * 0.99
        # ~320 MB moved per beat at S = 2^20, as the paper reports.
        assert 250 < v["comm_mb"] < 400


def test_overlap_ablation_single_stream(benchmark, show):
    """Without multi-stream the beat serializes (comm + comp)."""

    def run():
        system = BatchZkpSystem("V100", scale=1 << 20)
        multi = system.simulate(batch_size=64, multi_stream=True)
        single = system.simulate(batch_size=64, multi_stream=False)
        return multi.sim.beat, single.sim.beat

    multi, single = benchmark(run)
    show(
        f"V100 overlap ablation: multi-stream beat "
        f"{multi.overall_seconds * 1e3:.2f} ms vs single-stream "
        f"{single.overall_seconds * 1e3:.2f} ms "
        f"(saving {(single.overall_seconds - multi.overall_seconds) * 1e3:.2f} ms/beat)"
    )
    assert single.overall_seconds > multi.overall_seconds * 1.5
