"""E6/E11 — Table 7 + the §6.3 speedup breakdown.

Amortized per-proof time: Libsnark (CPU, NTT+MSM), Bellperson (GPU,
NTT+MSM), Orion&Arkworks (CPU, same modules as ours), Ours (pipelined
GPU), S = 2^18..2^22; plus a real end-to-end SNARK micro-benchmark.
"""

from repro.bench import compute_breakdown, compute_table7, format_rows
from repro.core import SnarkProver, SnarkVerifier, make_pcs, random_circuit
from repro.field import DEFAULT_FIELD

F = DEFAULT_FIELD
CC = random_circuit(F, 128, seed=3)
PCS = make_pcs(F, CC.r1cs, num_col_checks=6)
PROVER = SnarkProver(CC.r1cs, PCS, public_indices=CC.public_indices)
VERIFIER = SnarkVerifier(CC.r1cs, PCS, public_indices=CC.public_indices)


def test_table7_systems(benchmark, show):
    rows = benchmark(compute_table7)
    show(format_rows("Table 7 — amortized per-proof time (ms)", rows))
    for row in rows:
        v = row.values
        # Ordering: libsnark >> bellperson > orion&ark >> ours.
        assert v["libsnark_ms"] > v["bellperson_ms"] > v["ours_ms"]
        assert v["orion_ark_ms"] > v["ours_ms"]
        # Headline factors: >300x vs Bellperson, >300x vs Orion&Arkworks.
        assert v["speedup_vs_bellperson"] > 250
        assert v["speedup_vs_orion_ark"] > 250
        # Module breakdown ordering matches the paper's.
        assert (
            v["ours_sumcheck_ms"] > v["ours_encoder_ms"] > v["ours_merkle_ms"]
        )


def test_breakdown_protocol_vs_pipeline(benchmark, show):
    bd = benchmark(compute_breakdown)
    show(
        "Speedup breakdown @ S=2^20 (§6.3): "
        f"protocol {bd['protocol_speedup']:.1f}x (paper "
        f"{bd['paper_protocol_speedup']}x), pipeline "
        f"{bd['pipeline_speedup']:.1f}x (paper {bd['paper_pipeline_speedup']}x)"
    )
    assert 15 < bd["protocol_speedup"] < 40
    assert 8 < bd["pipeline_speedup"] < 30


def test_functional_snark_prove(benchmark):
    """Real end-to-end proof generation, S = 128 gates."""
    proof = benchmark(PROVER.prove, CC.witness, CC.public_values)
    assert VERIFIER.verify(proof, CC.public_values)


def test_functional_snark_verify(benchmark):
    proof = PROVER.prove(CC.witness, CC.public_values)
    ok = benchmark(VERIFIER.verify, proof, CC.public_values)
    assert ok
