"""E7 — Table 8: system throughput/latency across GPU generations."""

from repro.bench import compute_table8, format_rows


def test_table8_across_gpus(benchmark, show):
    rows = benchmark(compute_table8)
    show(format_rows("Table 8 — throughput (/s) and latency (s) per GPU", rows))
    by_dev = {r.label: r.values for r in rows}
    # Headline: >=250x throughput over Bellperson on V100 (paper: 259.5x).
    assert by_dev["V100"]["throughput_speedup"] > 250
    # Every device: big throughput win AND lower latency than Bellperson
    # (the paper notes ours wins latency too thanks to the new protocol).
    for dev, v in by_dev.items():
        assert v["throughput_speedup"] > 200, dev
        assert v["ours_latency_s"] < v["bell_latency_s"], dev
    # Throughput ordering follows device capability.
    assert (
        by_dev["H100"]["ours_throughput"]
        > by_dev["3090Ti"]["ours_throughput"]
        > by_dev["A100"]["ours_throughput"]
        > by_dev["V100"]["ours_throughput"]
    )
