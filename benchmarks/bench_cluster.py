"""Cluster scale-out: 1-node vs 2-node fleets of real node processes.

BatchZK scales one GPU up; the cluster layer (S28) scales machines out.
This benchmark spawns real ``python -m repro node`` subprocesses via
:class:`~repro.cluster.NodePool`, routes one batch through the
``cluster:`` coordinator, and answers the two questions that decide
whether the wire earns its keep:

1. **Scaling efficiency** — with 2 single-worker nodes on a multi-core
   host, cluster throughput must reach ``--min-scaling`` (default 1.6×)
   of the 1-node fleet at the largest swept batch.  On a single-core
   host two proving processes time-slice one core, so the guard is
   reported but not enforced there (CI runners have ≥2 cores).
2. **Byte identity** — every fleet size serializes to the exact serial
   bytes; distribution buys throughput, never a different transcript.

Results land in ``BENCH_cluster.json``.

Run directly for a report:  PYTHONPATH=src python benchmarks/bench_cluster.py
Quick mode (CI smoke):      PYTHONPATH=src python benchmarks/bench_cluster.py --quick
"""

import argparse
import json
import os
import time

from repro.cluster import NodePool
from repro.core import (
    ProofTask,
    SnarkProver,
    make_pcs,
    random_circuit,
    serialize_proof,
)
from repro.execution import SerialBackend, resolve_backend
from repro.field import DEFAULT_FIELD
from repro.runtime import ProverSpec

GATES = 256
BATCHES = (8, 16, 32)
QUICK_GATES = 96
QUICK_BATCHES = (16,)


def _setup(gates: int, tasks: int):
    cc = random_circuit(DEFAULT_FIELD, gates, seed=7)
    pcs = make_pcs(DEFAULT_FIELD, cc.r1cs, num_col_checks=6)
    prover = SnarkProver(cc.r1cs, pcs, public_indices=cc.public_indices)
    spec = ProverSpec.from_prover(prover)
    task_list = [
        ProofTask(i, cc.witness, cc.public_values) for i in range(tasks)
    ]
    return spec, task_list


def _measure_fleet(n_nodes: int, spec, task_list):
    """Throughput of a fresh ``n_nodes``-strong fleet on one batch."""
    pool = NodePool(backend="serial")
    try:
        pool.scale_to(n_nodes)
        backend = resolve_backend(pool.cluster_selector())
        # Warm the fleet's caches out-of-band: the steady state the ring
        # routing maintains is what we are measuring, not cold setup.
        backend.prove_tasks(spec, task_list[:n_nodes])
        start = time.perf_counter()
        proofs, stats = backend.prove_tasks(spec, task_list)
        seconds = time.perf_counter() - start
        affinity = backend.cluster_stats()["cache_affinity"]
        backend.close()
    finally:
        pool.close()
    wire = [serialize_proof(p, DEFAULT_FIELD) for p in proofs]
    return {
        "nodes": n_nodes,
        "seconds": seconds,
        "throughput_per_s": len(task_list) / seconds,
        "workers": stats.workers,
        "cache_affinity": affinity["hit_rate"],
    }, wire


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help="small sweep for CI smoke")
    parser.add_argument("--min-scaling", type=float, default=1.6,
                        help="required 2-node/1-node throughput ratio at "
                        "the largest batch (default 1.6; enforced only on "
                        "hosts with >= 2 cores)")
    parser.add_argument("--out", default=None,
                        help="output JSON path (default BENCH_cluster.json "
                        "next to this script)")
    args = parser.parse_args()

    gates = QUICK_GATES if args.quick else GATES
    batches = QUICK_BATCHES if args.quick else BATCHES
    cores = os.cpu_count() or 1
    print(f"cluster scale-out bench: S={gates} gates, host cores={cores}")

    results = []
    ratio = None
    for tasks in batches:
        spec, task_list = _setup(gates, tasks)
        serial_wire = [
            serialize_proof(p, DEFAULT_FIELD)
            for p in SerialBackend().prove_tasks(spec, task_list)[0]
        ]
        row = {"batch": tasks, "fleets": []}
        for n_nodes in (1, 2):
            fleet, wire = _measure_fleet(n_nodes, spec, task_list)
            assert wire == serial_wire, (
                f"{n_nodes}-node fleet diverged from serial bytes"
            )
            row["fleets"].append(fleet)
            print(
                f"  batch {tasks:3d}  nodes {n_nodes}  "
                f"{fleet['throughput_per_s']:6.1f} proofs/s  "
                f"affinity {fleet['cache_affinity']:.2f}"
            )
        ratio = (
            row["fleets"][1]["throughput_per_s"]
            / row["fleets"][0]["throughput_per_s"]
        )
        row["scaling_2_over_1"] = ratio
        print(f"  batch {tasks:3d}  2-node scaling {ratio:.2f}x")
        results.append(row)

    out_path = args.out or os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "BENCH_cluster.json"
    )
    payload = {
        "gates": gates,
        "host_cores": cores,
        "min_scaling": args.min_scaling,
        "byte_identical_to_serial": True,
        "rows": results,
    }
    with open(out_path, "w") as fh:
        json.dump(payload, fh, indent=2)
    print(f"wrote {out_path}")

    if cores < 2:
        print(
            f"single-core host: scaling guard ({args.min_scaling:.2f}x) "
            f"reported but not enforced (measured {ratio:.2f}x)"
        )
        return 0
    if ratio < args.min_scaling:
        print(
            f"FAIL: 2-node scaling {ratio:.2f}x < required "
            f"{args.min_scaling:.2f}x at batch {results[-1]['batch']}"
        )
        return 1
    print(f"scaling guard ok: {ratio:.2f}x >= {args.min_scaling:.2f}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
