"""Cluster scale-out: 1-node vs 2-node fleets of real node processes.

Thin CLI shim (S29): the measurement core lives in
:func:`repro.experiments.benches.run_cluster_scaleout` and is
registered as the ``bench_cluster`` experiment — ``python -m repro
experiment run bench_cluster`` is the canonical entry point (artifact
dir + ledger).  This script keeps the legacy interface: the
``--min-scaling`` guard (default 1.6x at the largest swept batch,
enforced only on hosts with ≥ 2 cores — on a single-core host two
proving processes time-slice one core, so the guard is reported but
advisory), ``--quick`` CI sizes, and a JSON dump (now the normalized
ExperimentResult schema, written to the repo root by default rather
than next to this script).

Run directly for a report:  PYTHONPATH=src python benchmarks/bench_cluster.py
Quick mode (CI smoke):      PYTHONPATH=src python benchmarks/bench_cluster.py --quick
"""

import argparse
import json

from repro.experiments import default_bench_json, execute_spec, get_experiment
from repro.experiments.benches import (  # noqa: F401  (back-compat)
    run_cluster_scaleout,
)

GATES = 256
BATCHES = (8, 16, 32)
QUICK_GATES = 96
QUICK_BATCHES = (16,)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--quick", action="store_true",
                        help="small sweep for CI smoke")
    parser.add_argument("--min-scaling", type=float, default=None,
                        help="required 2-node/1-node throughput ratio at "
                        "the largest batch (default: the registered guard's "
                        "1.6; enforced only on hosts with >= 2 cores)")
    parser.add_argument("--out",
                        default=str(default_bench_json("BENCH_cluster.json")),
                        help="output JSON path (default BENCH_cluster.json "
                        "at the repo root)")
    args = parser.parse_args()

    spec = get_experiment("bench_cluster")
    result = execute_spec(
        spec,
        quick=args.quick,
        guard_overrides=(
            {"min_scaling": args.min_scaling}
            if args.min_scaling is not None
            else None
        ),
    )
    if result.status == "error":
        print(result.error)
        return 1
    payload = result.data
    print(f"cluster scale-out bench: S={payload['gates']} gates, "
          f"host cores={payload['host_cores']}")
    for row in payload["rows"]:
        for fleet in row["fleets"]:
            print(
                f"  batch {row['batch']:3d}  nodes {fleet['nodes']}  "
                f"{fleet['throughput_per_s']:6.1f} proofs/s  "
                f"affinity {fleet['cache_affinity']:.2f}"
            )
        print(f"  batch {row['batch']:3d}  2-node scaling "
              f"{row['scaling_2_over_1']:.2f}x")

    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(result.to_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out}")

    verdict = result.guards[0]
    if not verdict.enforced:
        print(
            f"single-core host: scaling guard ({verdict.threshold:.2f}x) "
            f"reported but not enforced "
            f"(measured {payload['scaling_2_over_1']:.2f}x)"
        )
        return 0
    if not verdict.passed:
        print(f"FAIL: {verdict.detail}")
        return 1
    print(f"scaling guard ok: {verdict.value:.2f}x >= "
          f"{verdict.threshold:.2f}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
