"""Real-implementation micro-benchmarks of the cryptographic substrates.

Not a paper table: these time the actual Python implementations (field
ops, SHA-256, PCS, NTT, MSM) so the repository's functional half has
honest performance numbers alongside the simulated tables.
"""

import random

import numpy as np

from repro.baselines import NTT, EllipticCurve, msm_pippenger
from repro.commitment import BrakedownPCS
from repro.field import DEFAULT_FIELD, MultilinearPolynomial, eq_table, f31_mul
from repro.field.primes import MERSENNE31
from repro.hashing import Transcript, compress_block, sha256

F = DEFAULT_FIELD
RNG = random.Random(1)

PCS = BrakedownPCS(F, num_vars=10, seed=1, num_col_checks=8)
POLY = MultilinearPolynomial.random(F, 10, RNG)
POINT = F.rand_vector(10, RNG)
_, STATE = PCS.commit(POLY.evals)

CURVE = EllipticCurve()
MSM_POINTS = CURVE.random_points(32, seed=1)
MSM_SCALARS = [RNG.randrange(1, CURVE.params.order) for _ in range(32)]

NTT_INSTANCE = NTT(1 << 10)
NTT_DATA = [RNG.randrange(NTT_INSTANCE.field.modulus) for _ in range(1 << 10)]

F31_A = np.random.default_rng(0).integers(0, MERSENNE31, 1 << 16, dtype=np.uint64)


def test_bench_sha256_compress(benchmark):
    """One raw 64-byte compression (the Merkle interior-node unit)."""
    out = benchmark(compress_block, b"\xab" * 64)
    assert len(out) == 32


def test_bench_sha256_1kb(benchmark):
    out = benchmark(sha256, b"\x5a" * 1024)
    assert len(out) == 32


def test_bench_field_mul_python(benchmark):
    a, b = RNG.randrange(F.modulus), RNG.randrange(F.modulus)
    benchmark(F.mul, a, b)


def test_bench_f31_mul_vectorised(benchmark):
    """64k Mersenne-31 multiplications in one numpy call."""
    out = benchmark(f31_mul, F31_A, F31_A)
    assert out.shape == F31_A.shape


def test_bench_eq_table(benchmark):
    table = benchmark(eq_table, F, POINT)
    assert len(table) == 1 << 10


def test_bench_multilinear_evaluate(benchmark):
    benchmark(POLY.evaluate, POINT)


def test_bench_pcs_commit(benchmark):
    com, _ = benchmark(PCS.commit, POLY.evals)
    assert len(com.root) == 32


def test_bench_pcs_open(benchmark):
    proof = benchmark(lambda: PCS.open(STATE, POINT, Transcript(b"b")))
    assert proof.size_field_elements() > 0


def test_bench_ntt_forward(benchmark):
    out = benchmark(NTT_INSTANCE.forward, NTT_DATA)
    assert len(out) == 1 << 10


def test_bench_msm_pippenger(benchmark):
    """32-term MSM on secp256k1 (the first-category workload unit)."""
    out = benchmark(msm_pippenger, CURVE, MSM_SCALARS, MSM_POINTS)
    assert out is not None
