"""Resilience layer: what chaos costs, and what the layer buys back.

Not a paper table: this measures the S25 resilience plane.  Three
questions an operator asks before turning breakers and failover on in a
proving farm:

1. **Degradation curve** — throughput vs injected crash rate through
   ``resilient:sharded:serial,serial``.  Faults should cost retries and
   failovers, never proofs; throughput should degrade smoothly, not
   cliff.
2. **Fault-free overhead** — the resilient wrapper around a sharded
   core with no chaos, vs the bare sharded core (the tax of breakers,
   health ledgers, and round planning on the happy path).
3. **Journal tax** — write-ahead journaling per proof (flush + fsync
   each append), and what resuming saves when half the batch is
   already proven.

Run directly for a report:  PYTHONPATH=src python benchmarks/bench_resilience.py
Quick mode (CI smoke):      PYTHONPATH=src python benchmarks/bench_resilience.py --quick
"""

import os
import sys
import tempfile
import time

from repro.core import (
    ProofTask,
    SnarkProver,
    make_pcs,
    random_circuit,
    verify_all,
)
from repro.execution import resolve_backend
from repro.field import DEFAULT_FIELD
from repro.resilience import (
    FaultInjector,
    apply_fault_plan,
    journaled_prove,
    split_results,
)
from repro.runtime import ProverSpec

GATES = 256
TASKS = 32
CRASH_RATES = (0.0, 0.05, 0.1, 0.2, 0.4)


def _setup(gates: int = GATES, tasks: int = TASKS):
    cc = random_circuit(DEFAULT_FIELD, gates, seed=7)
    pcs = make_pcs(DEFAULT_FIELD, cc.r1cs, num_col_checks=6)
    prover = SnarkProver(cc.r1cs, pcs, public_indices=cc.public_indices)
    spec = ProverSpec.from_prover(prover)
    task_list = [
        ProofTask(i, cc.witness, cc.public_values) for i in range(tasks)
    ]
    return spec, task_list


def run_degradation_curve(tasks: int = TASKS, rates=CRASH_RATES) -> list:
    """Throughput vs crash rate; every proof must still verify."""
    spec, task_list = _setup(tasks=tasks)
    verifier = spec.build_verifier()
    rows = []
    for rate in rates:
        backend = resolve_backend("resilient:sharded:serial,serial")
        injector = FaultInjector.from_plan(f"crash:{rate},seed=7")
        apply_fault_plan(backend, injector, min_retries=4)
        start = time.perf_counter()
        results, stats = backend.prove_tasks(spec, task_list)
        seconds = time.perf_counter() - start
        proofs, quarantined = split_results(results)
        assert not quarantined, "crash storms must not quarantine"
        assert verify_all(
            verifier, [p for _, p in proofs], task_list
        )
        rstats = backend.last_resilience_stats
        rows.append({
            "rate": rate,
            "seconds": seconds,
            "throughput": len(proofs) / seconds,
            "faults": rstats.total_faults_injected,
            "failovers": rstats.failovers,
            "rounds": rstats.rounds,
        })
    return rows


def run_wrapper_overhead(tasks: int = TASKS) -> dict:
    """Fault-free resilient wrapper vs its bare sharded core."""
    spec, task_list = _setup(tasks=tasks)
    timings = {}
    for selector in (
        "sharded:serial,serial",
        "resilient:sharded:serial,serial",
    ):
        backend = resolve_backend(selector)
        start = time.perf_counter()
        backend.prove_tasks(spec, task_list)
        timings[selector] = time.perf_counter() - start
    bare = timings["sharded:serial,serial"]
    wrapped = timings["resilient:sharded:serial,serial"]
    return {
        "bare_seconds": bare,
        "wrapped_seconds": wrapped,
        "overhead_pct": (wrapped / bare - 1.0) * 100.0,
    }


def run_journal_tax(tasks: int = TASKS) -> dict:
    """Journaling cost per proof, and the resume saving at 100% overlap."""
    spec, task_list = _setup(tasks=tasks)
    backend = resolve_backend("serial")

    start = time.perf_counter()
    backend.prove_tasks(spec, task_list)
    plain = time.perf_counter() - start

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "bench.jsonl")
        start = time.perf_counter()
        journaled_prove(backend, spec, task_list, path)
        journaled = time.perf_counter() - start

        start = time.perf_counter()
        _, _, report = journaled_prove(
            backend, spec, task_list, path, resume=True
        )
        resumed = time.perf_counter() - start
        assert report.skipped == len(task_list)

    return {
        "plain_seconds": plain,
        "journaled_seconds": journaled,
        "tax_pct": (journaled / plain - 1.0) * 100.0,
        "resume_seconds": resumed,
        "resume_speedup": plain / resumed if resumed > 0 else float("inf"),
    }


if __name__ == "__main__":
    quick = "--quick" in sys.argv[1:]
    tasks = 8 if quick else TASKS
    rates = (0.0, 0.1, 0.3) if quick else CRASH_RATES
    print(f"resilience bench{' (quick mode)' if quick else ''}: "
          f"{tasks} tasks, {GATES} gates")

    print("\nthroughput vs crash rate (resilient:sharded:serial,serial)")
    for row in run_degradation_curve(tasks=tasks, rates=rates):
        print(
            f"[chaos]   crash={row['rate']:4.2f} | "
            f"{row['throughput']:6.2f} proofs/s | "
            f"{row['faults']:3d} faults injected | "
            f"{row['failovers']:3d} failovers | "
            f"{row['rounds']:2d} rounds"
        )

    row = run_wrapper_overhead(tasks=tasks)
    print(
        f"\n[wrapper] bare sharded {row['bare_seconds'] * 1e3:8.1f} ms | "
        f"resilient {row['wrapped_seconds'] * 1e3:8.1f} ms | "
        f"overhead {row['overhead_pct']:+.1f}%"
    )

    row = run_journal_tax(tasks=tasks)
    print(
        f"[journal] plain {row['plain_seconds'] * 1e3:8.1f} ms | "
        f"journaled {row['journaled_seconds'] * 1e3:8.1f} ms "
        f"(tax {row['tax_pct']:+.1f}%) | resume "
        f"{row['resume_seconds'] * 1e3:7.1f} ms "
        f"({row['resume_speedup']:.0f}x)"
    )
