"""Resilience layer: what chaos costs, and what the layer buys back.

Thin CLI shim (S29): the measurement cores live in
:mod:`repro.experiments.benches` (``run_degradation_curve``,
``run_wrapper_overhead``, ``run_journal_tax``) and are registered
together as the ``bench_resilience`` experiment — ``python -m repro
experiment run bench_resilience`` is the canonical entry point
(artifact dir + ledger).  Three questions an operator asks before
turning breakers and failover on in a proving farm:

1. **Degradation curve** — throughput vs injected crash rate through
   ``resilient:sharded:serial,serial``.  Faults should cost retries and
   failovers, never proofs; throughput should degrade smoothly, not
   cliff.
2. **Fault-free overhead** — the resilient wrapper around a sharded
   core with no chaos, vs the bare sharded core.
3. **Journal tax** — write-ahead journaling per proof, and what
   resuming saves when the whole batch is already proven.

Run directly for a report:  PYTHONPATH=src python benchmarks/bench_resilience.py
Quick mode (CI smoke):      PYTHONPATH=src python benchmarks/bench_resilience.py --quick
"""

import sys

from repro.experiments.benches import (  # noqa: F401  (back-compat)
    run_degradation_curve,
    run_journal_tax,
    run_wrapper_overhead,
)

GATES = 256
TASKS = 32
CRASH_RATES = (0.0, 0.05, 0.1, 0.2, 0.4)


if __name__ == "__main__":
    quick = "--quick" in sys.argv[1:]
    tasks = 8 if quick else TASKS
    rates = (0.0, 0.1, 0.3) if quick else CRASH_RATES
    print(f"resilience bench{' (quick mode)' if quick else ''}: "
          f"{tasks} tasks, {GATES} gates")

    print("\nthroughput vs crash rate (resilient:sharded:serial,serial)")
    for row in run_degradation_curve(tasks=tasks, rates=rates):
        print(
            f"[chaos]   crash={row['rate']:4.2f} | "
            f"{row['throughput']:6.2f} proofs/s | "
            f"{row['faults']:3d} faults injected | "
            f"{row['failovers']:3d} failovers | "
            f"{row['rounds']:2d} rounds"
        )

    row = run_wrapper_overhead(tasks=tasks)
    print(
        f"\n[wrapper] bare sharded {row['bare_seconds'] * 1e3:8.1f} ms | "
        f"resilient {row['wrapped_seconds'] * 1e3:8.1f} ms | "
        f"overhead {row['overhead_pct']:+.1f}%"
    )

    row = run_journal_tax(tasks=tasks)
    print(
        f"[journal] plain {row['plain_seconds'] * 1e3:8.1f} ms | "
        f"journaled {row['journaled_seconds'] * 1e3:8.1f} ms "
        f"(tax {row['tax_pct']:+.1f}%) | resume "
        f"{row['resume_seconds'] * 1e3:7.1f} ms "
        f"({row['resume_speedup']:.0f}x)"
    )
