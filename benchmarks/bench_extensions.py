"""Extension benchmarks: GKR prover, MiMC, multi-GPU scaling, zkBridge.

Not paper tables — these cover the repository's extensions (DESIGN.md
systems added beyond the paper's evaluation).
"""

import random

from repro.apps import TX_CIRCUIT_SCALE, revenue_report
from repro.field import DEFAULT_FIELD
from repro.gkr import GkrProver, GkrVerifier, matmul_circuit, random_layered_circuit
from repro.hashing import MimcPermutation, MimcSponge
from repro.pipeline import MultiGpuBatchSystem

F = DEFAULT_FIELD
RNG = random.Random(5)

GKR_CIRCUIT = matmul_circuit(F, 4)
GKR_INPUTS = F.rand_vector(32, RNG)
GKR_PROOF = GkrProver(GKR_CIRCUIT).prove(GKR_INPUTS)

SPONGE = MimcSponge(F)
PERM = MimcPermutation(F)


def test_bench_gkr_prove_matmul(benchmark):
    """GKR proof of a 4x4 matrix product (two-phase Libra prover)."""
    proof = benchmark(lambda: GkrProver(GKR_CIRCUIT).prove(GKR_INPUTS))
    assert proof.size_field_elements() > 0


def test_bench_gkr_verify_matmul(benchmark):
    ok = benchmark(lambda: GkrVerifier(GKR_CIRCUIT).verify(GKR_INPUTS, GKR_PROOF))
    assert ok


def test_bench_gkr_deep_circuit(benchmark):
    """Deeper random circuit: proof cost scales with depth x width."""
    circuit = random_layered_circuit(F, depth=6, width=16, input_size=16, seed=1)
    inputs = F.rand_vector(16, RNG)
    proof = benchmark(lambda: GkrProver(circuit).prove(inputs))
    assert GkrVerifier(circuit).verify(inputs, proof)


def test_bench_mimc_encrypt(benchmark):
    """One full MiMC encryption (alpha=17, ~37 rounds on M61)."""
    benchmark(PERM.encrypt, 123456789, 987654321)


def test_bench_mimc_sponge_8(benchmark):
    vals = F.rand_vector(8, RNG)
    benchmark(SPONGE.hash, vals)


def test_bench_multigpu_scaling(benchmark, show):
    """Farm throughput scaling across 1-4 devices."""

    def run():
        out = {}
        for n in (1, 2, 4):
            farm = MultiGpuBatchSystem(["A100"] * n, scale=1 << 16)
            out[n] = farm.simulate(batch_size=1024).throughput_per_second
        return out

    scaling = benchmark(run)
    show(
        "Multi-GPU scaling (A100 x n, S=2^16): "
        + ", ".join(f"{n} GPU {t:.0f}/s" for n, t in scaling.items())
        + f" -> 4-GPU efficiency {scaling[4] / (4 * scaling[1]):.2f}"
    )
    assert scaling[2] > 1.7 * scaling[1]
    assert scaling[4] > 3.2 * scaling[1]


def test_bench_zkbridge_revenue(benchmark, show):
    report = benchmark(
        lambda: revenue_report(scale=TX_CIRCUIT_SCALE, devices=("GH200",))
    )
    pipe = report.rows["GH200/pipelined"]
    naive = report.rows["GH200/kernel-per-task"]
    show(
        f"zkBridge economics: pipelined ${pipe['revenue_per_hour']:,.0f}/h vs "
        f"kernel-per-task ${naive['revenue_per_hour']:,.0f}/h"
    )
    assert pipe["revenue_per_hour"] > naive["revenue_per_hour"]
