"""E12 — Ablations of the design choices DESIGN.md calls out.

1. Per-stage kernels vs kernel-per-task (the paper's core claim).
2. Proportional (§4) vs uniform thread allocation.
3. Bucket-sorted vs unsorted row->warp assignment (§3.3).
4. Double-buffer vs stride table store (Figure 5) — hazard counts.
5. Dynamic loading vs preloading memory footprints (§3.1).
"""

import random

from repro.gpu import (
    GpuCostModel,
    allocate_threads_proportional,
    allocate_threads_uniform,
    get_gpu,
    run_naive,
    run_pipelined,
)
from repro.encoder import sorted_schedule, unsorted_schedule
from repro.pipeline import merkle_graph, sumcheck_graph
from repro.sumcheck import DoubleBuffer, StrideBuffer, required_capacity

GH200 = get_gpu("GH200")
COSTS = GpuCostModel()


def test_ablation_pipelining(benchmark, show):
    """Pipelined vs intuitive scheduling, same hardware, same cost model,
    NO baseline compute penalty — isolates the scheduling discipline."""

    def run():
        g = merkle_graph(1 << 18, COSTS)
        pipe = run_pipelined(GH200, g, 128, include_transfers=False)
        naive = run_naive(GH200, g, 128, compute_penalty=1.0)
        return (
            pipe.steady_throughput_per_second / naive.steady_throughput_per_second
        )

    gain = benchmark(run)
    show(f"Ablation 1 — pipelining alone: {gain:.2f}x throughput @ Merkle 2^18")
    assert gain > 2.0


def test_ablation_thread_allocation(benchmark, show):
    """§4's proportional allocation vs a uniform split."""

    def run():
        g = sumcheck_graph(18, COSTS)
        prop = run_pipelined(
            GH200, g, 64, include_transfers=False,
            allocator=allocate_threads_proportional,
        )
        unif = run_pipelined(
            GH200, g, 64, include_transfers=False,
            allocator=allocate_threads_uniform,
        )
        return prop.steady_interval_seconds, unif.steady_interval_seconds

    prop_beat, unif_beat = benchmark(run)
    show(
        f"Ablation 2 — thread allocation: proportional beat "
        f"{prop_beat * 1e6:.1f} us vs uniform {unif_beat * 1e6:.1f} us "
        f"({unif_beat / prop_beat:.1f}x)"
    )
    assert unif_beat > prop_beat * 5  # uniform starves the big first round


def test_ablation_bucket_sorting(benchmark, show):
    """§3.3: sorted warps on realistic mixed row lengths."""

    def run():
        rng = random.Random(0)
        # Bimodal rows: mostly light expander rows plus heavy dense rows.
        lens = [rng.choice([8, 8, 8, 8, 64, 200]) for _ in range(4096)]
        return (
            unsorted_schedule(lens).simd_cost / sorted_schedule(lens).simd_cost
        )

    gain = benchmark(run)
    show(f"Ablation 3 — bucket-sorted warps: {gain:.2f}x fewer warp-cycles")
    assert gain > 1.5


def test_ablation_buffer_strategy(benchmark, show):
    """Figure 5: the chosen double buffer is hazard-free; stride is not."""

    def run():
        db = DoubleBuffer(capacity=required_capacity(1 << 10))
        db.allocate(0, 1 << 10)
        for period in range(1, 12):
            db.begin_period(period)
            db.read_regions(period)
            size = 1 << 9
            while size >= 1:
                db.allocate(period, size)
                size //= 2
        sb = StrideBuffer(capacity=(1 << 10) + 64)
        region = sb.allocate(0, 1 << 10)
        for period in range(1, 12):
            sb.read(period, region)
            region = sb.allocate(period, max(1, (1 << 10) >> period))
        return len(db.hazard_pairs()), len(sb.hazard_pairs())

    db_hazards, sb_hazards = benchmark(run)
    show(
        f"Ablation 4 — buffers: double-buffer hazards {db_hazards}, "
        f"stride hazards {sb_hazards}"
    )
    assert db_hazards == 0
    assert sb_hazards > 0


def test_ablation_stage_merge(benchmark, show):
    """§4's tail-merge: capping stages cuts latency at ~no throughput cost."""

    def run():
        full = merkle_graph(1 << 20, COSTS)
        capped = merkle_graph(1 << 20, COSTS, max_stages=9)
        r_full = run_pipelined(GH200, full, 64, include_transfers=False)
        r_capped = run_pipelined(GH200, capped, 64, include_transfers=False)
        return r_full, r_capped

    r_full, r_capped = benchmark(run)
    show(
        f"Ablation 5 — tail merge: latency {r_full.latency_seconds * 1e3:.2f} -> "
        f"{r_capped.latency_seconds * 1e3:.2f} ms, throughput "
        f"{r_full.steady_throughput_per_ms:.2f} -> "
        f"{r_capped.steady_throughput_per_ms:.2f} /ms"
    )
    assert r_capped.latency_seconds < r_full.latency_seconds
    assert (
        r_capped.steady_throughput_per_second
        > 0.9 * r_full.steady_throughput_per_second
    )
