#!/usr/bin/env python3
"""Verifiable machine learning (paper §5, Figure 8; Table 11).

Part 1 — the real thing at laptop scale: an MLaaS service commits its
(small) CNN's parameters to a Merkle root, answers a prediction request,
and attaches a real zero-knowledge proof that the committed model produced
that prediction.  The customer verifies it, and a substituted model is
caught.

Part 2 — the paper's scale: the full VGG-16/CIFAR-10 circuit (≈21 M
multiplication gates from zkCNN-style accounting) through the calibrated
pipeline simulator, reproducing Table 11's throughput/latency shape.

Run:  python examples/verifiable_ml.py
"""

import time

from repro.baselines import OURS_ACCURACY_PERCENT, ZKML_BASELINES
from repro.zkml import (
    MlaasService,
    random_input,
    simulate_vgg16_service,
    tiny_cnn,
    vgg16_cifar10,
)


def real_service_demo() -> None:
    print("=== Part 1: real MLaaS proof (tiny CNN) ===\n")
    model = tiny_cnn(input_size=4, channels=1, classes=3)
    model.init_params(seed=7)
    service = MlaasService(model, num_col_checks=8)
    print(f"  model: {model.name}, {model.parameter_count()} parameters")
    print(f"  preprocessing commitment (Merkle root): {service.model_root.hex()[:32]}…")

    image = random_input(model.input_shape, seed=42, frac_bits=4)
    t0 = time.perf_counter()
    response = service.prove_prediction(image)
    dt = time.perf_counter() - t0
    print(f"  prediction logits: {response.prediction}")
    print(
        f"  proof: {response.proof.size_bytes(service.field)} bytes, "
        f"generated in {dt * 1e3:.0f} ms"
    )
    assert service.verify_prediction(image, response)
    print("  customer verification: ACCEPT")

    # A malicious provider swaps in a different model -> different root.
    evil_model = tiny_cnn(input_size=4, channels=1, classes=3)
    evil_model.init_params(seed=666)
    evil = MlaasService(evil_model, num_col_checks=8)
    evil_response = evil.prove_prediction(image)
    assert not service.verify_prediction(image, evil_response)
    print("  substituted model: REJECT (Merkle root mismatch)\n")


def vgg16_simulation() -> None:
    print("=== Part 2: VGG-16 / CIFAR-10 at paper scale (simulated GH200) ===\n")
    model = vgg16_cifar10()
    gates = model.gate_count()
    print(f"  VGG-16 circuit: {gates / 1e6:.1f} M multiplication gates")
    top = sorted(model.per_layer_gates(), key=lambda kv: -kv[1])[:3]
    for name, g in top:
        print(f"    heaviest layer {name}: {g / 1e6:.2f} M gates")
    result = simulate_vgg16_service(model, device="GH200")
    thpt = result.sim.steady_throughput_per_second
    print(f"\n  {'system':10s} {'proofs/s':>10s} {'latency (s)':>12s} {'accuracy':>9s}")
    for name, base in ZKML_BASELINES.items():
        print(
            f"  {name:10s} {base.throughput_per_second:10.4f} "
            f"{base.latency_seconds:12.1f} {base.accuracy_percent:8.2f}%"
        )
    print(
        f"  {'Ours':10s} {thpt:10.4f} {result.latency_seconds:12.1f} "
        f"{OURS_ACCURACY_PERCENT:8.2f}%   (paper: 9.5220 / 15.2)"
    )
    amortized = 1.0 / thpt
    print(
        f"\n  amortized proof generation: {amortized * 1e3:.0f} ms -> "
        f"{'SUB-SECOND' if amortized < 1 else 'over a second'} "
        f"(the paper's headline claim)"
    )


if __name__ == "__main__":
    real_service_demo()
    vgg16_simulation()
