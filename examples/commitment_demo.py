#!/usr/bin/env python3
"""Anatomy of the Brakedown polynomial commitment (encoder + Merkle).

Walks through what the paper's commit path actually does — matrixize,
encode rows with the linear-time encoder, Merkle-commit codeword columns —
then opens an evaluation and shows which checks catch which attacks.

Run:  python examples/commitment_demo.py
"""

import random

from repro.commitment import BrakedownPCS
from repro.field import DEFAULT_FIELD, MultilinearPolynomial
from repro.hashing import Transcript

F = DEFAULT_FIELD
RNG = random.Random(99)


def main() -> None:
    num_vars = 10
    pcs = BrakedownPCS(F, num_vars=num_vars, seed=3, num_col_checks=16)
    params = pcs.params
    print("Commitment parameters")
    print(f"  polynomial:      {1 << num_vars} evaluations ({num_vars} variables)")
    print(f"  matrix shape:    {params.num_rows} x {params.num_cols}")
    print(
        f"  codeword length: {params.codeword_length} "
        f"(inverse rate {params.encoder_params.inv_rate}, "
        f"{pcs.encoder.num_stages} recursion stages)"
    )
    print(f"  column checks:   {params.num_col_checks}\n")

    poly = MultilinearPolynomial.random(F, num_vars, RNG)
    commitment, state = pcs.commit(poly.evals)
    print(f"Commit: Merkle root {commitment.root.hex()[:32]}…")
    print(f"  encoder work: {pcs.encoder.total_nnz()} sparse MACs per row-set")

    point = F.rand_vector(num_vars, RNG)
    value = pcs.evaluate(state, point)
    assert value == poly.evaluate(point)
    proof = pcs.open(state, point, Transcript(b"demo"))
    print(f"\nOpen at a random point: value = {value}")
    print(
        f"  proof: {len(proof.proximity_row)}-element proximity row + "
        f"{len(proof.evaluation_row)}-element evaluation row + "
        f"{len(proof.columns)} column openings "
        f"({proof.size_bytes(F)} bytes total)"
    )

    ok = pcs.verify(commitment, point, value, proof, Transcript(b"demo"))
    print(f"  verify: {'ACCEPT' if ok else 'REJECT'}")
    assert ok

    print("\nAttack drills (every one must be caught):")
    import dataclasses

    wrong_value = not pcs.verify(
        commitment, point, (value + 1) % F.modulus, proof, Transcript(b"demo")
    )
    print(f"  claim a wrong evaluation        -> rejected: {wrong_value}")

    bad_row = dataclasses.replace(
        proof, evaluation_row=[(v + 1) % F.modulus for v in proof.evaluation_row]
    )
    caught = not pcs.verify(commitment, point, value, bad_row, Transcript(b"demo"))
    print(f"  forge the evaluation row        -> rejected: {caught}")

    bad_col = dataclasses.replace(
        proof,
        columns=[
            dataclasses.replace(
                proof.columns[0],
                values=[(v + 1) % F.modulus for v in proof.columns[0].values],
            )
        ]
        + list(proof.columns[1:]),
    )
    caught = not pcs.verify(commitment, point, value, bad_col, Transcript(b"demo"))
    print(f"  tamper an opened column         -> rejected: {caught}")

    other = MultilinearPolynomial.random(F, num_vars, RNG)
    com_other, _ = pcs.commit(other.evals)
    caught = not pcs.verify(com_other, point, value, proof, Transcript(b"demo"))
    print(f"  swap in another commitment root -> rejected: {caught}")


if __name__ == "__main__":
    main()
