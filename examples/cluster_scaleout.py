#!/usr/bin/env python3
"""Scaling out: a two-node proving fleet with ring routing + autoscaling.

BatchZK pipelines one GPU; a proving *service* eventually adds machines.
This example runs the whole S28 stack on localhost:

1. spawns two real ``python -m repro node`` subprocesses (NodePool),
2. routes a batch through the ``cluster:`` coordinator — tasks are
   ring-routed by circuit digest so each node's caches stay hot,
3. checks the cluster's proofs are byte-identical to a serial run,
4. reads the fleet's cache-affinity gauge from the nodes' STATS frames,
5. dry-runs the load-model autoscaler on a demand spike.

Run:  PYTHONPATH=src python examples/cluster_scaleout.py
"""

from repro.cluster import Autoscaler, LoadModel, NodePool
from repro.core import ProofTask, SnarkProver, make_pcs, random_circuit
from repro.core.serialize import serialize_proof
from repro.execution import SerialBackend, resolve_backend
from repro.field import DEFAULT_FIELD
from repro.runtime import ProverSpec

GATES = 96
TASKS = 12


def main() -> None:
    cc = random_circuit(DEFAULT_FIELD, GATES, seed=11)
    pcs = make_pcs(DEFAULT_FIELD, cc.r1cs, num_col_checks=6)
    prover = SnarkProver(cc.r1cs, pcs, public_indices=cc.public_indices)
    spec = ProverSpec.from_prover(prover)
    tasks = [ProofTask(i, cc.witness, cc.public_values) for i in range(TASKS)]

    print("=== Reference: serial oracle ===")
    serial_proofs, serial_stats = SerialBackend().prove_tasks(spec, tasks)
    serial_wire = [serialize_proof(p, DEFAULT_FIELD) for p in serial_proofs]
    print(f"{len(serial_proofs)} proofs at "
          f"{serial_stats.throughput_per_second:.1f}/s\n")

    print("=== Two-node fleet over TCP ===")
    with NodePool(backend="serial") as pool:
        pool.scale_to(2)
        print(f"nodes up: {', '.join(pool.addresses)}")
        backend = resolve_backend(pool.cluster_selector())
        proofs, stats = backend.prove_tasks(spec, tasks)
        wire = [serialize_proof(p, DEFAULT_FIELD) for p in proofs]
        assert wire == serial_wire, "cluster proofs must match serial bytes"
        print(f"{len(proofs)} proofs at {stats.throughput_per_second:.1f}/s "
              f"across {stats.workers} node workers — byte-identical: True")

        # Same circuit again: the ring sends it to the same nodes, whose
        # spec caches are now warm.
        backend.prove_tasks(spec, tasks)
        affinity = backend.cluster_stats()["cache_affinity"]
        print(f"fleet cache affinity: {affinity['hit_rate']:.0%} "
              f"({affinity['hits']} hits / {affinity['misses']} cold misses)")
        backend.close()

    print("\n=== Autoscaler dry run: a demand spike ===")
    model = LoadModel(per_proof_seconds=0.25, node_parallelism=1)
    scaler = Autoscaler(model, None, min_nodes=1, max_nodes=4,
                        cooldown_seconds=0.0, shrink_patience=2)
    for rate in (1.0, 2.0, 10.0, 10.0, 2.0, 2.0, 2.0):
        decision = scaler.observe(rate)
        print(f"  rate {rate:5.1f}/s  util {decision['utilization']:.2f}  "
              f"-> {scaler.current_nodes} node(s)  "
              f"[{decision['action']}: {decision['reason']}]")
    print("\nscale-up is immediate; scale-down waits out the patience "
          "window so bursts don't flap the fleet.")


if __name__ == "__main__":
    main()
