#!/usr/bin/env python3
"""Verifiable delegation with GKR (the Libra/Virgo protocol family).

The paper's Table 1 protocols (Libra, Virgo, Virgo++) prove *layered*
circuits with the GKR interactive proof — the original "delegation of
computation" setting: a weak verifier ships a computation to a powerful
prover and checks the result in time far below recomputing it.

This example delegates matrix multiplication: the prover computes
``C = A·B`` and a GKR proof; the verifier checks the proof layer by layer
(two sum-check phases per layer) without redoing the n³ multiplications.

Run:  python examples/delegated_computation.py
"""

import random
import time

from repro.field import DEFAULT_FIELD
from repro.gkr import GkrProver, GkrVerifier, matmul_circuit, random_layered_circuit

F = DEFAULT_FIELD


def matmul_delegation(n: int = 8) -> None:
    print(f"=== Delegating {n}x{n} matrix multiplication ===\n")
    rng = random.Random(42)
    circuit = matmul_circuit(F, n)
    print(f"  circuit: {circuit}")
    print(f"  total gates: {circuit.total_gates()} "
          f"({circuit.mul_gates()} multiplications)")

    a = [[rng.randrange(1000) for _ in range(n)] for _ in range(n)]
    b = [[rng.randrange(1000) for _ in range(n)] for _ in range(n)]
    inputs = [v for row in a for v in row] + [v for row in b for v in row]

    t0 = time.perf_counter()
    proof = GkrProver(circuit).prove(inputs)
    prove_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    ok = GkrVerifier(circuit).verify(inputs, proof)
    verify_s = time.perf_counter() - t0

    # Spot-check one output against plain arithmetic.
    c00 = sum(a[0][k] * b[k][0] for k in range(n)) % F.modulus
    assert proof.outputs[0] == c00
    print(f"  C[0][0] = {proof.outputs[0]} (matches direct computation)")
    print(f"  proof: {proof.size_field_elements()} field elements "
          f"across {len(proof.layer_proofs)} layers")
    print(f"  prove {prove_s * 1e3:.0f} ms, verify {verify_s * 1e3:.0f} ms, "
          f"accepted: {ok}\n")
    assert ok

    # Cheating prover: claim a wrong product.
    import dataclasses

    forged = dataclasses.replace(
        proof, outputs=[(proof.outputs[0] + 1) % F.modulus] + proof.outputs[1:]
    )
    rejected = not GkrVerifier(circuit).verify(inputs, forged)
    print(f"  forged C[0][0]: rejected = {rejected}")
    assert rejected


def committed_inputs_delegation(n: int = 4) -> None:
    """GKR over *private* inputs: the full Figure 1 workflow — the input
    matrices are committed with the encoder+Merkle commitment and the
    verifier never sees them."""
    print(f"\n=== Committed (private) inputs: {n}x{n} matmul ===\n")
    from repro.gkr import CommittedGkrProver, CommittedGkrVerifier

    rng = random.Random(3)
    circuit = matmul_circuit(F, n)
    inputs = F.rand_vector(2 * n * n, rng)

    prover = CommittedGkrProver(circuit, num_col_checks=8)
    verifier = CommittedGkrVerifier(circuit, num_col_checks=8)
    proof = prover.prove(inputs)
    ok = verifier.verify(proof)  # note: no inputs argument
    print(f"  input commitment: {proof.commitment.root.hex()[:32]}…")
    print(f"  proof: {proof.size_field_elements()} field elements "
          f"(GKR layers + 2 PCS openings)")
    print(f"  verifier accepts without ever seeing A or B: {ok}")
    assert ok


def deep_circuit_delegation() -> None:
    print("\n=== Deep random circuit (depth 6) ===\n")
    rng = random.Random(7)
    circuit = random_layered_circuit(F, depth=6, width=16, input_size=16, seed=3)
    inputs = F.rand_vector(16, rng)
    proof = GkrProver(circuit).prove(inputs)
    ok = GkrVerifier(circuit).verify(inputs, proof)
    print(f"  {circuit}")
    print(f"  proof: {proof.size_field_elements()} field elements; "
          f"accepted: {ok}")
    assert ok


if __name__ == "__main__":
    matmul_delegation()
    committed_inputs_delegation()
    deep_circuit_delegation()
