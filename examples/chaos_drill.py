#!/usr/bin/env python3
"""Chaos drill: seeded faults in, verified proofs out.

A proving farm earns trust by rehearsing failure, not by avoiding it.
This drill runs one batch through the S25 resilience stack —
`resilient:sharded:serial,serial` — under a deterministic fault plan
that schedules

* a 15% per-attempt worker crash rate,
* a 5% proof-corruption rate (caught by verify-on-return, re-proved),
* one forced outage of child 0 on its first call (fails over), and
* one poison task that crashes on every child (quarantined, typed),

then shows that every non-quarantined proof is byte-identical to a
fault-free run, and finishes with a crash-safe journal demo: kill a run
mid-batch, resume it, and re-prove nothing that already finished.

Run:  PYTHONPATH=src python examples/chaos_drill.py
"""

import os
import tempfile

from repro.core import (
    CircuitBuilder,
    ProofTask,
    SnarkProver,
    compile_builder,
    make_pcs,
    random_circuit,
)
from repro.core.serialize import serialize_proof
from repro.errors import QuarantinedTaskError
from repro.execution import SerialBackend, resolve_backend
from repro.field import DEFAULT_FIELD
from repro.resilience import (
    FaultInjector,
    ResilientBackend,
    apply_fault_plan,
    journaled_prove,
    split_results,
)
from repro.runtime import ProverSpec

GATES = 96
TASKS = 12
PLAN = "crash:0.15,corrupt:0.05,down=0@0x1,poison=5,seed=7"


def main() -> None:
    cc = random_circuit(DEFAULT_FIELD, GATES, seed=21)
    pcs = make_pcs(DEFAULT_FIELD, cc.r1cs, num_col_checks=6)
    prover = SnarkProver(cc.r1cs, pcs, public_indices=cc.public_indices)
    spec = ProverSpec.from_prover(prover)
    verifier = spec.build_verifier()
    tasks = [ProofTask(i, cc.witness, cc.public_values) for i in range(TASKS)]

    # The oracle: the same batch with no chaos at all.
    clean, _ = SerialBackend().prove_tasks(spec, tasks)
    clean_wire = [serialize_proof(p, DEFAULT_FIELD) for p in clean]

    # The drill: same batch, full fault plan, resilient substrate.
    backend = ResilientBackend(
        resolve_backend("sharded:serial,serial"),
        verify_on_return=True,  # corruption plan => check every proof
    )
    injector = FaultInjector.from_plan(PLAN)
    apply_fault_plan(backend, injector, min_retries=3)
    print(f"fault plan : {PLAN}")
    results, stats = backend.prove_tasks(spec, tasks)

    proofs, quarantined = split_results(results)
    ok = all(
        verifier.verify(proof, tasks[index].public_values)
        for index, proof in proofs
    )
    identical = all(
        serialize_proof(proof, DEFAULT_FIELD) == clean_wire[index]
        for index, proof in proofs
    )
    print(f"proofs     : {len(proofs)}/{TASKS} verified={ok} "
          f"byte-identical-to-fault-free={identical}")
    for verdict in quarantined:
        assert isinstance(verdict, QuarantinedTaskError)
        print(f"quarantine : {verdict}")
    print("\n" + backend.last_resilience_stats.report())
    for tracker in backend.health:
        print(f"health     : {tracker.summary()}")

    # The journal: kill a run after 4 tasks, then resume it.  The
    # journal is content-addressed (circuit + witness + publics), so the
    # demo needs tasks with *distinct* witnesses: one product circuit,
    # built once per input vector.
    print("\ncrash-safe journal")
    built = []
    for t in range(TASKS):
        cb = CircuitBuilder(DEFAULT_FIELD)
        wires = cb.private_inputs([t * 5 + k + 1 for k in range(5)])
        acc = wires[0]
        for wire in wires[1:]:
            acc = cb.mul(acc, wire)
        cb.expose_public(acc)
        built.append(compile_builder(cb))
    j0 = built[0]
    jpcs = make_pcs(DEFAULT_FIELD, j0.r1cs, num_col_checks=6)
    jspec = ProverSpec.from_prover(
        SnarkProver(j0.r1cs, jpcs, public_indices=j0.public_indices)
    )
    jtasks = [
        ProofTask(i, b.witness, b.public_values)
        for i, b in enumerate(built)
    ]
    jclean, _ = SerialBackend().prove_tasks(jspec, jtasks)
    jclean_wire = [serialize_proof(p, DEFAULT_FIELD) for p in jclean]

    class DiesAfter:
        def __init__(self, inner, survive):
            self.inner, self.survive, self.calls = inner, survive, 0

        def prove_tasks(self, spec, batch, **kwargs):
            if self.calls >= self.survive:
                raise RuntimeError("simulated power loss")
            self.calls += 1
            return self.inner.prove_tasks(spec, batch, **kwargs)

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "drill.jsonl")
        try:
            journaled_prove(
                DiesAfter(SerialBackend(), survive=4), jspec, jtasks, path,
                checkpoint_every=1,
            )
        except RuntimeError as exc:
            print(f"first run  : died ({exc}) with 4 proofs journaled")
        resumed, _, report = journaled_prove(
            SerialBackend(), jspec, jtasks, path, resume=True
        )
        print(f"resume     : {report.summary()}")
        assert report.skipped == 4 and report.proved == TASKS - 4
        assert [
            serialize_proof(p, DEFAULT_FIELD) for p in resumed
        ] == jclean_wire
        print("resume     : results byte-identical to the fault-free run")


if __name__ == "__main__":
    main()
