#!/usr/bin/env python3
"""Parallel proving runtime: fill every CPU core with real proofs.

The paper's system keeps a GPU's SMs busy with a pipelined kernel
schedule; the functional half of this repository has the same problem one
level up — a stream of independent proof tasks and a host with idle
cores.  This example runs the same batch three ways:

1. serial `BatchProver.prove_all` (the baseline),
2. the process-pool runtime via `BatchProver(prover, workers=N)`,
3. the runtime directly, with a fault injector crashing a task's first
   attempt to show retry-with-backoff absorbing worker failures.

Run:  PYTHONPATH=src python examples/parallel_proving.py
"""

import os

from repro.core import (
    BatchProver,
    ProofTask,
    SnarkProver,
    make_pcs,
    random_circuit,
    verify_all,
)
from repro.field import DEFAULT_FIELD
from repro.runtime import ParallelProvingRuntime, ProverSpec

GATES = 128
TASKS = 16


def crash_once(task_id: int, attempt: int) -> None:
    """Simulated infrastructure failure: task 5's first attempt dies."""
    if task_id == 5 and attempt == 1:
        raise RuntimeError("simulated worker crash")


def main() -> None:
    workers = min(4, os.cpu_count() or 1)
    cc = random_circuit(DEFAULT_FIELD, GATES, seed=11)
    pcs = make_pcs(DEFAULT_FIELD, cc.r1cs, num_col_checks=6)
    prover = SnarkProver(cc.r1cs, pcs, public_indices=cc.public_indices)
    spec = ProverSpec.from_prover(prover)
    verifier = spec.build_verifier()
    tasks = [ProofTask(i, cc.witness, cc.public_values) for i in range(TASKS)]

    print(f"=== Serial baseline ({TASKS} tasks, S = {GATES}) ===")
    batch = BatchProver(prover)
    proofs, stats = batch.prove_all(tasks)
    print(f"  {stats.throughput_per_second:.1f} proofs/s, "
          f"all verify: {verify_all(verifier, proofs, tasks)}\n")

    print(f"=== BatchProver with workers={workers} ===")
    proofs, stats = batch.prove_all(tasks, workers=workers)
    print(f"  {stats.throughput_per_second:.1f} proofs/s, "
          f"all verify: {verify_all(verifier, proofs, tasks)}")
    if batch.last_runtime_stats is not None:
        print("  -- runtime report --")
        for line in batch.last_runtime_stats.report().splitlines():
            print(f"  {line}")
    print()

    print("=== Runtime with an injected worker crash ===")
    runtime = ParallelProvingRuntime(
        spec, workers=workers, fault_injector=crash_once
    )
    proofs, rstats = runtime.prove_tasks(tasks)
    print(f"  retries: {rstats.retries}, proofs: {rstats.proofs_generated}, "
          f"all verify: {verify_all(verifier, proofs, tasks)}")
    assert rstats.retries >= 1


if __name__ == "__main__":
    main()
