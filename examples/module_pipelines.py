#!/usr/bin/env python3
"""The three pipelined ZKP modules, functional and simulated (paper §3).

For each of Merkle tree, sum-check and linear-time encoder this script:

* runs the *real* Python implementation on a small input,
* simulates batch generation at paper scale under both schedulers,
* renders a Figure 9-style utilization sparkline.

Run:  python examples/module_pipelines.py
"""

import random

from repro.bench import compute_fig9
from repro.field import DEFAULT_FIELD, MultilinearPolynomial
from repro.gpu import GpuCostModel, get_gpu, run_naive, run_pipelined
from repro.hashing import Transcript
from repro.merkle import MerkleTree
from repro.pipeline import encoder_graph, merkle_graph, sumcheck_graph
from repro.encoder import SpielmanEncoder
from repro.sumcheck import evaluation_point, prove

F = DEFAULT_FIELD
RNG = random.Random(2024)


def functional_demos() -> None:
    print("=== Functional module demos (real Python crypto) ===\n")

    blocks = [bytes([i % 256]) * 64 for i in range(64)]
    tree = MerkleTree.from_blocks(blocks)
    path = tree.open(17)
    print(f"  Merkle:   64-block tree, root {tree.root.hex()[:24]}…, "
          f"opening of leaf 17 verifies: {path.verify(tree.root, tree.hasher)}")

    poly = MultilinearPolynomial.random(F, 8, RNG)
    result = prove(F, poly.evals, Transcript(b"demo"))
    point = evaluation_point(result.challenges)
    print(f"  Sumcheck: n=8 proof, H = {result.proof.claimed_sum}, final "
          f"claim matches p(r): {poly.evaluate(point) == result.proof.final_value}")

    enc = SpielmanEncoder(F, 128, seed=1)
    msg = F.rand_vector(128, RNG)
    cw = enc.encode(msg)
    print(f"  Encoder:  128 -> {len(cw)} symbols across {enc.num_stages} "
          f"recursion stages, systematic prefix intact: {cw[:128] == msg}\n")


def simulated_section() -> None:
    print("=== Simulated batch throughput per module (GH200, N = 2^20) ===\n")
    gh = get_gpu("GH200")
    costs = GpuCostModel()
    workloads = [
        ("merkle", merkle_graph(1 << 20, costs), costs.naive_merkle_penalty, None),
        ("sumcheck", sumcheck_graph(20, costs), costs.naive_sumcheck_penalty, None),
        (
            "encoder",
            encoder_graph(1 << 20, costs),
            costs.naive_encoder_penalty,
            costs.encoder_stage_launch_seconds,
        ),
    ]
    for name, graph, penalty, launch in workloads:
        ours = run_pipelined(gh, graph, 128, costs=costs, include_transfers=False)
        base = run_naive(
            gh, graph, 128, costs=costs, compute_penalty=penalty,
            launch_seconds=launch,
        )
        print(
            f"  {name:9s} pipelined {ours.steady_throughput_per_ms:8.3f} items/ms"
            f"   baseline {base.steady_throughput_per_ms:8.3f} items/ms"
            f"   -> {ours.steady_throughput_per_second / base.steady_throughput_per_second:5.2f}x"
        )
    print()


def figure9_sparklines() -> None:
    print("=== Figure 9: core utilization over time (3090Ti) ===\n")
    chars = " ▁▂▃▄▅▆▇█"

    def spark(trace, width=56):
        step = max(1, len(trace) // width)
        return "".join(
            chars[min(8, int(trace[i][1] * 8 + 0.5))]
            for i in range(0, len(trace), step)
        )

    for module, traces in compute_fig9().items():
        print(f"  {module:9s} pipelined |{spark(traces['ours'])}|")
        print(f"  {module:9s} baseline  |{spark(traces['baseline'])}|\n")


if __name__ == "__main__":
    functional_demos()
    simulated_section()
    figure9_sparklines()
