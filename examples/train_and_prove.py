#!/usr/bin/env python3
"""Train a model, quantize it, commit it, and prove its predictions.

The full §5 preprocessing-and-serve lifecycle at reproduction scale:

1. train a float CNN with plain-numpy SGD on a synthetic blob dataset
   (the CIFAR-10 stand-in; see DESIGN.md substitutions);
2. quantize the trained weights into the verifiable model and compare
   accuracies (the Table 11 'Accuracy' column's workflow);
3. Merkle-commit the trained parameters (the customer's model anchor);
4. answer a prediction request with a real zero-knowledge proof and
   verify it.

Run:  python examples/train_and_prove.py
"""

import time

from repro.zkml import (
    MlaasService,
    QuantizedTensor,
    quantized_accuracy,
    synthetic_blobs,
    tiny_cnn,
    train_verifiable_model,
)


def main() -> None:
    # -- 1. Data and model --------------------------------------------------
    data = synthetic_blobs(num_samples=150, image_size=4, num_classes=3, seed=11)
    train, test = data.split(0.8)
    model = tiny_cnn(input_size=4, channels=1, classes=3)
    print(f"Dataset: {len(train)} train / {len(test)} test, "
          f"{data.num_classes} classes (synthetic blobs)")
    print(f"Model:   {model.name}, {model.parameter_count()} parameters, "
          f"{model.gate_count()} protocol gates")

    # Untrained baseline.
    model.init_params(0)
    untrained = quantized_accuracy(model, test)

    # -- 2. Train float, quantize -------------------------------------------------
    t0 = time.perf_counter()
    trainer, float_acc, _ = train_verifiable_model(
        model, train, epochs=6, lr=0.03, seed=11
    )
    train_s = time.perf_counter() - t0
    test_float = trainer.accuracy(test)
    test_quant = quantized_accuracy(model, test)
    print(f"\nTraining: {train_s:.1f} s of numpy SGD")
    print(f"  test accuracy untrained : {untrained:6.1%}")
    print(f"  test accuracy float     : {test_float:6.1%}")
    print(f"  test accuracy quantized : {test_quant:6.1%}  "
          f"(what the verifiable model actually serves)")

    # -- 3. Commit + 4. prove -----------------------------------------------------
    service = MlaasService(model, num_col_checks=8)
    print(f"\nCommitment: Merkle root {service.model_root.hex()[:32]}…")
    x = QuantizedTensor.from_float(test.x[0], frac_bits=4)
    t0 = time.perf_counter()
    response = service.prove_prediction(x)
    prove_s = time.perf_counter() - t0
    ok = service.verify_prediction(x, response)
    predicted = max(range(len(response.prediction)),
                    key=lambda i: response.prediction[i])
    print(f"Request:  true class {test.y[0]}, predicted class {predicted}")
    print(f"Proof:    {response.proof.size_bytes(service.field)} bytes, "
          f"{prove_s * 1e3:.0f} ms; customer verification: "
          f"{'ACCEPT' if ok else 'REJECT'}")
    assert ok


if __name__ == "__main__":
    main()
