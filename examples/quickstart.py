#!/usr/bin/env python3
"""Quickstart: build a circuit, generate a zero-knowledge proof, verify it.

This walks the full functional stack of the reproduction:

1. describe a computation as an arithmetic circuit (scale S = number of
   multiplication gates, as in the paper);
2. the prover commits to its witness with the Brakedown commitment
   (linear-time encoder + Merkle tree), runs the two sum-checks, and opens
   the commitment — exactly the module sequence of the paper's Figure 7;
3. the verifier replays the Fiat–Shamir transcript and checks everything.

Run:  python examples/quickstart.py
"""

import time

from repro.core import CircuitBuilder, SnarkProver, SnarkVerifier, compile_builder, make_pcs
from repro.field import DEFAULT_FIELD


def main() -> None:
    field = DEFAULT_FIELD
    print(f"Field: {field.name} (p = {field.modulus})")

    # -- 1. The statement: "I know x, y with (x+y)·(x−y) = 33 and x·y = 56"
    cb = CircuitBuilder(field)
    x = cb.private_input(7)  # secret witness
    y = cb.private_input(4)
    lhs = cb.mul(cb.add(x, y), cb.sub(x, y))  # (x+y)(x-y) = 33
    prod = cb.mul(x, y)  # x*y = 28
    cb.expose_public(lhs)
    cb.expose_public(prod)
    circuit = compile_builder(cb)
    print(
        f"Circuit: {circuit.r1cs.num_constraints} constraints "
        f"(S = {cb.num_multiplications} multiplication gates), "
        f"witness length {circuit.r1cs.num_vars}"
    )
    print(f"Public outputs: {circuit.public_values}")

    # -- 2. Prove.
    pcs = make_pcs(field, circuit.r1cs, num_col_checks=12)
    prover = SnarkProver(circuit.r1cs, pcs, public_indices=circuit.public_indices)
    t0 = time.perf_counter()
    proof = prover.prove(circuit.witness, circuit.public_values)
    prove_s = time.perf_counter() - t0
    sizes = proof.component_sizes(field)
    print(f"\nProof generated in {prove_s * 1e3:.1f} ms")
    print(f"  Merkle root:    {proof.commitment.root.hex()[:32]}…")
    print(f"  proof size:     {proof.size_bytes(field)} bytes")
    print(f"    sum-checks:   {sizes['sumchecks']} B")
    print(f"    PCS openings: {sizes['pcs_openings']} B")

    # -- 3. Verify.
    verifier = SnarkVerifier(
        circuit.r1cs, pcs, public_indices=circuit.public_indices
    )
    t0 = time.perf_counter()
    ok = verifier.verify(proof, circuit.public_values)
    verify_s = time.perf_counter() - t0
    print(f"\nVerification: {'ACCEPT' if ok else 'REJECT'} ({verify_s * 1e3:.1f} ms)")
    assert ok

    # A wrong claim is rejected.
    assert not verifier.verify(proof, [34, 28])
    print("Forged public output: REJECT (as it must be)")


if __name__ == "__main__":
    main()
