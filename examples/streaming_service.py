#!/usr/bin/env python3
"""Streaming proof service: the paper's "flowing stream" setting, live.

The paper's §1 scenario is a ZKP service provider continuously absorbing
customer inputs.  This demo opens the streaming front door over a real
verifiable-ML model and pushes a small mixed workload through it:

1. `MlaasService.serve()` starts a `ProofService` whose dynamic batcher
   groups same-circuit requests into uniform batches (one shared prover
   setup per batch);
2. customers submit INTERACTIVE requests with deadlines alongside BULK
   backfill, plus a couple of exact repeats — which the result cache and
   single-flight dedup serve without proving twice;
3. every ticket resolves to a `PredictionResponse` the customer verifies
   against the model's Merkle commitment;
4. the `ServiceStats` dashboard shows the batch shapes, cache
   absorption, and end-to-end latency percentiles.

Run:  PYTHONPATH=src python examples/streaming_service.py
"""

from repro.service import BatchPolicy, Priority
from repro.zkml import MlaasService, random_input, tiny_cnn

DISTINCT = 5  # distinct customer inputs
REPEATS = 3   # exact duplicates sprinkled on top


def main() -> None:
    model = tiny_cnn(input_size=4, channels=1, classes=3)
    model.init_params(3)
    service = MlaasService(model, num_col_checks=6)
    print(f"model committed, root {service.model_root.hex()[:16]}…")

    inputs = [
        random_input(model.input_shape, seed=100 + i, frac_bits=4)
        for i in range(DISTINCT)
    ]
    policy = BatchPolicy(max_batch_size=4, max_wait_seconds=0.05)

    with service.serve(policy=policy, max_queue=32) as front:
        tickets = []
        for i, x in enumerate(inputs):
            interactive = i % 2 == 0
            tickets.append(front.submit(
                x,
                priority=(
                    Priority.INTERACTIVE if interactive else Priority.BULK
                ),
                deadline_seconds=120.0 if interactive else None,
            ))
        # Repeat traffic: identical (model, input) pairs dedupe.
        repeats = [
            front.submit(inputs[i % DISTINCT]) for i in range(REPEATS)
        ]
        responses = [t.result(timeout=300) for t in tickets]
        repeat_responses = [t.result(timeout=300) for t in repeats]

        print(f"\n=== {len(tickets)} fresh + {len(repeats)} repeat "
              f"requests served ===")
        for i, (x, resp) in enumerate(zip(inputs, responses)):
            ok = service.verify_prediction(x, resp)
            print(f"  request {i}: prediction {resp.prediction}, "
                  f"proof verifies: {ok}")
            assert ok, "customer-side verification failed"
        for i, (ticket, resp) in enumerate(zip(repeats, repeat_responses)):
            ok = service.verify_prediction(inputs[i % DISTINCT], resp)
            print(f"  repeat  {i}: served via {ticket.source}, "
                  f"proof verifies: {ok}")
            assert ok
            assert ticket.source in ("cache", "coalesced")

        print("\n=== service dashboard ===")
        for line in front.stats.report().splitlines():
            print(f"  {line}")
        stats = front.stats
        assert stats.completed == DISTINCT + REPEATS
        assert stats.cache_hits + stats.coalesced >= REPEATS
        assert sum(stats.batch_size_histogram.values()) >= 1
    print("\nstream served: every proof verified, repeats never re-proved")


if __name__ == "__main__":
    main()
