#!/usr/bin/env python3
"""Execution backends: one proving batch, three interchangeable substrates.

BatchZK's system half treats execution resources as interchangeable: the
same task stream can fill one device, a pool of them, or a sharded farm.
The functional counterpart is `repro.execution`: every proving entry
point runs behind one `ProvingBackend` seam, and operators pick the
substrate with a selector string.  This example proves one batch on

1. `serial`                 — in-process, the reference oracle,
2. `pool:N`                 — the retrying process-pool runtime,
3. `sharded:pool:N,serial`  — two concurrent children, tasks split
                              proportionally to their parallelism,

shows the proofs are byte-identical across all three, and then replays
a correlated JSONL trace to reconstruct one task's span lineage.

Run:  PYTHONPATH=src python examples/execution_backends.py
"""

import io
import os

from repro.core import (
    ProofTask,
    SnarkProver,
    make_pcs,
    random_circuit,
    verify_all,
)
from repro.core.serialize import serialize_proof
from repro.execution import load_trace, resolve_backend, span_index
from repro.field import DEFAULT_FIELD
from repro.runtime import JsonlTraceSink, ProverSpec

GATES = 96
TASKS = 10


def main() -> None:
    workers = min(2, os.cpu_count() or 1)
    cc = random_circuit(DEFAULT_FIELD, GATES, seed=21)
    pcs = make_pcs(DEFAULT_FIELD, cc.r1cs, num_col_checks=6)
    prover = SnarkProver(cc.r1cs, pcs, public_indices=cc.public_indices)
    spec = ProverSpec.from_prover(prover)
    verifier = spec.build_verifier()
    tasks = [ProofTask(i, cc.witness, cc.public_values) for i in range(TASKS)]

    selectors = ["serial", f"pool:{workers}", f"sharded:pool:{workers},serial"]
    wire_by_selector = {}
    for selector in selectors:
        backend = resolve_backend(selector)
        proofs, stats = backend.prove_tasks(spec, tasks)
        ok = verify_all(verifier, proofs, tasks)
        wire_by_selector[selector] = [
            serialize_proof(p, DEFAULT_FIELD) for p in proofs
        ]
        print(
            f"{selector:24s} {stats.proofs_generated:3d} proofs in "
            f"{stats.total_seconds * 1e3:7.1f} ms "
            f"({stats.workers} worker(s)), verify: {ok}"
        )

    reference = wire_by_selector["serial"]
    identical = all(wire == reference for wire in wire_by_selector.values())
    print(f"\nbyte-identical proofs across all backends: {identical}")

    print("\n=== Correlated trace (sharded run) ===")
    buffer = io.StringIO()
    sink = JsonlTraceSink(buffer)
    sharded = resolve_backend(f"sharded:pool:{workers},serial")
    sharded.prove_tasks(spec, tasks, trace=sink)
    events = load_trace(buffer.getvalue().splitlines())
    nodes = span_index(events)
    roots = [n for n in nodes.values() if n.parent not in nodes]
    print(f"{len(events)} events, {len(nodes)} spans")
    for root in roots:
        print(f"  {root.kind:8s} {root.span}")
        for child in root.children:
            node = nodes[child]
            print(
                f"    {node.kind:8s} {node.span} "
                f"({len(node.children)} child span(s))"
            )


if __name__ == "__main__":
    main()
