#!/usr/bin/env python3
"""Batch proof generation: the paper's headline experiment, simulated.

Runs the fully pipelined BatchZK system (Figure 7) on the simulated GH200
and V100 for a stream of proof tasks at circuit scale S = 2^20, comparing:

* the paper's pipelined per-stage-kernel discipline (Figure 4b),
* the intuitive kernel-per-task discipline (Figure 4a),
* the NTT+MSM GPU baseline (Bellperson, vendor model),
* the same-modules CPU baseline (Orion & Arkworks).

Also generates a *real* batch of (small) proofs with the functional
BatchProver so the two halves of the reproduction meet in one script.

Run:  python examples/batch_throughput.py
"""

from repro.baselines import bellperson_times, orion_arkworks_times
from repro.core import BatchProver, ProofTask, SnarkProver, SnarkVerifier, make_pcs, random_circuit
from repro.field import DEFAULT_FIELD
from repro.gpu import GpuCostModel, get_gpu, run_naive
from repro.pipeline import BatchZkpSystem, zkp_system_graph

SCALE = 1 << 20
BATCH = 512


def simulated_section() -> None:
    print(f"=== Simulated batch generation, S = 2^20, batch = {BATCH} ===\n")
    costs = GpuCostModel()
    for dev in ("GH200", "V100"):
        system = BatchZkpSystem(dev, scale=SCALE, costs=costs)
        ours = system.simulate(batch_size=BATCH)
        naive = run_naive(
            get_gpu(dev), zkp_system_graph(SCALE, costs), BATCH, costs=costs,
            compute_penalty=1.3,
        )
        bell = bellperson_times(SCALE, dev if dev != "GH200" else "GH200")
        oa = orion_arkworks_times(SCALE)
        thpt = ours.sim.steady_throughput_per_second
        print(f"[{dev}]")
        print(
            f"  ours (pipelined): {thpt:8.2f} proofs/s   "
            f"latency {ours.latency_seconds * 1e3:7.1f} ms   "
            f"memory {ours.memory_high_water_gb:.2f} GB"
        )
        print(
            f"  kernel-per-task : {naive.steady_throughput_per_second:8.2f} proofs/s   "
            f"latency {naive.latency_seconds * 1e3:7.1f} ms"
        )
        print(
            f"  Bellperson      : {1 / bell.total_seconds:8.2f} proofs/s   "
            f"-> ours {thpt * bell.total_seconds:7.1f}x"
        )
        print(
            f"  Orion&Arkworks  : {1 / oa.total_seconds:8.2f} proofs/s   "
            f"-> ours {thpt * oa.total_seconds:7.1f}x"
        )
        alloc = system.thread_allocation()
        total = sum(alloc.values())
        print(
            "  thread split    : "
            + ", ".join(f"{k} {v} ({100 * v / total:.0f}%)" for k, v in alloc.items())
        )
        print()


def functional_section() -> None:
    print("=== Real proofs: functional BatchProver (S = 96, batch = 8) ===\n")
    field = DEFAULT_FIELD
    cc = random_circuit(field, 96, seed=1)
    pcs = make_pcs(field, cc.r1cs, num_col_checks=8)
    prover = SnarkProver(cc.r1cs, pcs, public_indices=cc.public_indices)
    verifier = SnarkVerifier(cc.r1cs, pcs, public_indices=cc.public_indices)
    tasks = [ProofTask(i, cc.witness, cc.public_values) for i in range(8)]
    proofs, stats = BatchProver(prover).prove_all(tasks)
    ok = all(verifier.verify(p, t.public_values) for p, t in zip(proofs, tasks))
    print(
        f"  generated {stats.proofs_generated} proofs in "
        f"{stats.total_seconds:.2f} s "
        f"({stats.throughput_per_second:.1f} proofs/s on this host CPU)"
    )
    print(f"  all proofs verify: {ok}")
    assert ok


if __name__ == "__main__":
    simulated_section()
    functional_section()
