#!/usr/bin/env python3
"""A zkBridge-style cross-chain proving service (paper §2.1).

The paper motivates batch throughput economically: bridge operators earn
a fee per proved transaction, so proofs/second is income.  This example:

1. proves real transaction-validity statements (MiMC commitment opening +
   value conservation) with the functional SNARK;
2. prices the pipelined vs kernel-per-task schedulers — and a small GPU
   farm — in fees per hour at a realistic per-transaction circuit scale.

Run:  python examples/zkbridge_service.py
"""

import time

from repro.apps import (
    BridgeProver,
    TX_CIRCUIT_SCALE,
    random_transactions,
    revenue_report,
)


def functional_section() -> None:
    print("=== Part 1: real transaction proofs ===\n")
    prover = BridgeProver(rounds=4)
    transactions = random_transactions(3, seed=7)
    for tx in transactions:
        t0 = time.perf_counter()
        compiled, proof = prover.prove(tx)
        dt = time.perf_counter() - t0
        commitment = tx.commitment(prover.field, prover.perm)
        ok = prover.verify(compiled, proof, commitment, tx.amount)
        wrong_amount = prover.verify(compiled, proof, commitment, tx.amount + 1)
        print(
            f"  tx #{tx.nonce}: amount {tx.amount:>10d}  "
            f"S={compiled.r1cs.num_constraints:4d} gates  "
            f"proved in {dt * 1e3:5.0f} ms  verify={ok}  "
            f"forged-amount accepted={wrong_amount}"
        )
        assert ok and not wrong_amount
    print()


def economics_section() -> None:
    print(
        "=== Part 2: throughput economics "
        f"(S = 2^18 per tx, $0.50/proof) ===\n"
    )
    report = revenue_report(
        fee_per_proof=0.50,
        scale=TX_CIRCUIT_SCALE,
        devices=("GH200", "V100"),
        farm=("V100", "A100", "H100"),
    )
    print(f"  {'configuration':28s} {'proofs/s':>10s} {'revenue/hour':>14s}")
    for name, row in sorted(
        report.rows.items(), key=lambda kv: -kv[1]["revenue_per_hour"]
    ):
        print(
            f"  {name:28s} {row['proofs_per_second']:10.1f} "
            f"${row['revenue_per_hour']:13,.0f}"
        )
    best = report.best_configuration()
    pipe = report.rows["GH200/pipelined"]["revenue_per_hour"]
    naive = report.rows["GH200/kernel-per-task"]["revenue_per_hour"]
    print(
        f"\n  best: {best}; on GH200 the pipelined scheduler earns "
        f"{pipe / naive:.2f}x the kernel-per-task baseline — "
        f"'more proofs per unit time brings more income' (§2.1)"
    )


if __name__ == "__main__":
    functional_section()
    economics_section()
