"""Structural edge cases: BatchZkpSystem knobs and verifier shape checks."""

import dataclasses

import pytest

from repro.core import SnarkProver, SnarkVerifier, make_pcs, random_circuit
from repro.errors import PipelineError, ProofError, SimulationError
from repro.field import DEFAULT_FIELD
from repro.pipeline import BatchZkpSystem, DEFAULT_STAGE_CAPS, build_module_graphs

F = DEFAULT_FIELD


class TestBatchZkpSystemKnobs:
    def test_stage_caps_respected(self):
        system = BatchZkpSystem(
            "GH200",
            scale=1 << 16,
            stage_caps={"encoder": 5, "merkle": 4, "sumcheck": 3},
        )
        assert len(system.module_graphs["encoder"].stages) <= 5
        assert len(system.module_graphs["merkle"].stages) <= 4
        assert len(system.module_graphs["sumcheck"].stages) <= 3

    def test_default_caps_give_about_28_stages(self):
        """Table 8's V100 latency implies ~28 pipeline stages at S=2^20."""
        system = BatchZkpSystem("V100", scale=1 << 20)
        assert 25 <= len(system.graph.stages) <= 32

    def test_partial_cap_override_merges_with_defaults(self):
        system = BatchZkpSystem("GH200", scale=1 << 16, stage_caps={"merkle": 3})
        assert len(system.module_graphs["merkle"].stages) <= 3
        assert (
            len(system.module_graphs["sumcheck"].stages)
            <= DEFAULT_STAGE_CAPS["sumcheck"]
        )

    def test_thread_budget_knob(self):
        small = BatchZkpSystem("V100", scale=1 << 16, total_threads=2048)
        large = BatchZkpSystem("V100", scale=1 << 16)
        r_small = small.simulate(batch_size=64)
        r_large = large.simulate(batch_size=64)
        assert (
            r_large.sim.steady_throughput_per_second
            > 2 * r_small.sim.steady_throughput_per_second
        )

    def test_device_spec_accepted_directly(self):
        from repro.gpu import get_gpu

        system = BatchZkpSystem(get_gpu("A100"), scale=1 << 16)
        assert system.device.name == "A100"

    def test_scale_floor_enforced(self):
        with pytest.raises(PipelineError):
            BatchZkpSystem("GH200", scale=512)

    def test_workload_scales_linearly(self):
        g1 = build_module_graphs(1 << 16)
        g2 = build_module_graphs(1 << 17)
        for name in ("encoder", "merkle", "sumcheck"):
            w1 = sum(s.work_units for s in g1[name].stages)
            w2 = sum(s.work_units for s in g2[name].stages)
            assert w2 == pytest.approx(2 * w1, rel=0.1), name


class TestVerifierStructuralChecks:
    @pytest.fixture(scope="class")
    def setting(self):
        cc = random_circuit(F, 24, seed=91)
        pcs = make_pcs(F, cc.r1cs, num_col_checks=4)
        prover = SnarkProver(cc.r1cs, pcs, public_indices=cc.public_indices)
        verifier = SnarkVerifier(cc.r1cs, pcs, public_indices=cc.public_indices)
        proof = prover.prove(cc.witness, cc.public_values)
        return cc, verifier, proof

    def test_wrong_constraint_round_count(self, setting):
        cc, verifier, proof = setting
        sc = proof.constraint_sumcheck
        bad_sc = dataclasses.replace(sc, round_polys=sc.round_polys[:-1])
        bad = dataclasses.replace(proof, constraint_sumcheck=bad_sc)
        assert not verifier.verify(bad, cc.public_values)

    def test_wrong_constraint_degree(self, setting):
        cc, verifier, proof = setting
        sc = proof.constraint_sumcheck
        bad_sc = dataclasses.replace(sc, degree=2)
        bad = dataclasses.replace(proof, constraint_sumcheck=bad_sc)
        assert not verifier.verify(bad, cc.public_values)

    def test_nonzero_claimed_sum(self, setting):
        cc, verifier, proof = setting
        sc = proof.constraint_sumcheck
        bad_sc = dataclasses.replace(sc, claimed_sum=1)
        bad = dataclasses.replace(proof, constraint_sumcheck=bad_sc)
        assert not verifier.verify(bad, cc.public_values)

    def test_wrong_witness_round_count(self, setting):
        cc, verifier, proof = setting
        sc = proof.witness_sumcheck
        bad_sc = dataclasses.replace(
            sc, round_polys=sc.round_polys + [[0, 0, 0]]
        )
        bad = dataclasses.replace(proof, witness_sumcheck=bad_sc)
        assert not verifier.verify(bad, cc.public_values)

    def test_wrong_witness_degree(self, setting):
        cc, verifier, proof = setting
        sc = proof.witness_sumcheck
        bad_sc = dataclasses.replace(sc, degree=3)
        bad = dataclasses.replace(proof, witness_sumcheck=bad_sc)
        assert not verifier.verify(bad, cc.public_values)

    def test_reordered_public_bindings(self, setting):
        cc, verifier, proof = setting
        if len(proof.public_bindings) >= 2:
            bad = dataclasses.replace(
                proof, public_bindings=list(reversed(proof.public_bindings))
            )
            assert not verifier.verify(bad, cc.public_values)

    def test_prover_rejects_bad_pcs_shape(self):
        cc = random_circuit(F, 24, seed=92)
        other = random_circuit(F, 200, seed=93)
        wrong_pcs = make_pcs(F, other.r1cs, num_col_checks=4)
        if wrong_pcs.params.num_vars != cc.r1cs.witness_vars:
            with pytest.raises(ProofError):
                SnarkProver(cc.r1cs, wrong_pcs, public_indices=cc.public_indices)
