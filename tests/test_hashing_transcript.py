"""Fiat–Shamir transcript tests: determinism, binding, domain separation."""

import pytest

from repro.errors import HashError
from repro.field import DEFAULT_FIELD, PrimeField
from repro.hashing import Transcript

F = DEFAULT_FIELD


def make_pair(label=b"t"):
    return Transcript(label), Transcript(label)


class TestDeterminism:
    def test_same_absorbs_same_challenges(self):
        t1, t2 = make_pair()
        for t in (t1, t2):
            t.absorb_bytes(b"a", b"hello")
            t.absorb_field(b"b", F, 42)
        assert t1.challenge_field(b"c", F) == t2.challenge_field(b"c", F)
        assert t1.challenge_bytes(b"d", 16) == t2.challenge_bytes(b"d", 16)

    def test_sequential_challenges_differ(self):
        t = Transcript(b"t")
        c1 = t.challenge_field(b"c", F)
        c2 = t.challenge_field(b"c", F)
        assert c1 != c2  # counter advances

    def test_challenge_then_absorb_then_challenge(self):
        t1, t2 = make_pair()
        a = t1.challenge_field(b"c", F)
        b = t2.challenge_field(b"c", F)
        assert a == b
        t1.absorb_int(b"x", 1)
        t2.absorb_int(b"x", 1)
        assert t1.challenge_field(b"c", F) == t2.challenge_field(b"c", F)


class TestBinding:
    def test_different_labels_diverge(self):
        t1 = Transcript(b"one")
        t2 = Transcript(b"two")
        assert t1.challenge_field(b"c", F) != t2.challenge_field(b"c", F)

    def test_different_data_diverges(self):
        t1, t2 = make_pair()
        t1.absorb_bytes(b"m", b"aaa")
        t2.absorb_bytes(b"m", b"aab")
        assert t1.challenge_field(b"c", F) != t2.challenge_field(b"c", F)

    def test_different_tags_diverge(self):
        t1, t2 = make_pair()
        t1.absorb_bytes(b"tag1", b"x")
        t2.absorb_bytes(b"tag2", b"x")
        assert t1.challenge_field(b"c", F) != t2.challenge_field(b"c", F)

    def test_tag_data_boundary_is_unambiguous(self):
        """absorb(tag='ab', data='c') must differ from absorb('a', 'bc')."""
        t1, t2 = make_pair()
        t1.absorb_bytes(b"ab", b"c")
        t2.absorb_bytes(b"a", b"bc")
        assert t1.challenge_field(b"c", F) != t2.challenge_field(b"c", F)

    def test_absorb_order_matters(self):
        t1, t2 = make_pair()
        t1.absorb_int(b"a", 1)
        t1.absorb_int(b"b", 2)
        t2.absorb_int(b"b", 2)
        t2.absorb_int(b"a", 1)
        assert t1.challenge_field(b"c", F) != t2.challenge_field(b"c", F)


class TestFieldSampling:
    def test_challenge_in_range(self):
        t = Transcript(b"t")
        small = PrimeField(97)
        for i in range(50):
            assert 0 <= t.challenge_field(b"c", small) < 97

    def test_vector_length_and_distinctness(self):
        t = Transcript(b"t")
        vec = t.challenge_field_vector(b"v", F, 10)
        assert len(vec) == 10
        assert len(set(vec)) == 10  # 61-bit collisions are negligible

    def test_indices_in_bounds(self):
        t = Transcript(b"t")
        idx = t.challenge_indices(b"i", 37, 100)
        assert len(idx) == 100
        assert all(0 <= i < 37 for i in idx)

    def test_indices_bad_bound(self):
        with pytest.raises(HashError):
            Transcript(b"t").challenge_indices(b"i", 0, 1)

    def test_challenge_bytes_length(self):
        t = Transcript(b"t")
        assert len(t.challenge_bytes(b"c", 100)) == 100


class TestForkAndValidation:
    def test_fork_depends_on_parent_state(self):
        t1, t2 = make_pair()
        t2.absorb_int(b"x", 9)
        f1 = t1.fork(b"child")
        f2 = t2.fork(b"child")
        assert f1.challenge_field(b"c", F) != f2.challenge_field(b"c", F)

    def test_fork_does_not_disturb_parent(self):
        t1, t2 = make_pair()
        _ = t1.fork(b"child")
        assert t1.challenge_field(b"c", F) == t2.challenge_field(b"c", F)

    def test_label_must_be_bytes(self):
        with pytest.raises(HashError):
            Transcript("str-label")  # type: ignore[arg-type]
