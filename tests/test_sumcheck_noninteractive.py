"""Non-interactive (Fiat–Shamir) sum-check and the Figure 5 buffers."""

import pytest

from repro.errors import SumcheckError
from repro.field import DEFAULT_FIELD, MultilinearPolynomial
from repro.hashing import Transcript
from repro.sumcheck import (
    DoubleBuffer,
    StrideBuffer,
    evaluation_point,
    prove,
    prove_product,
    required_capacity,
    verify,
)

F = DEFAULT_FIELD


class TestNonInteractive:
    def test_roundtrip_multilinear(self, rng):
        ml = MultilinearPolynomial.random(F, 5, rng)
        res = prove(F, ml.evals, Transcript(b"x"))
        challenges = verify(F, res.proof, Transcript(b"x"))
        assert challenges == res.challenges
        assert ml.evaluate(evaluation_point(challenges)) == res.proof.final_value

    def test_roundtrip_product(self, rng):
        a = MultilinearPolynomial.random(F, 4, rng)
        b = MultilinearPolynomial.random(F, 4, rng)
        res = prove_product(F, [a.evals, b.evals], Transcript(b"y"))
        challenges = verify(F, res.proof, Transcript(b"y"))
        pt = evaluation_point(challenges)
        assert (a.evaluate(pt) * b.evaluate(pt)) % F.modulus == res.proof.final_value

    def test_transcript_label_mismatch_fails(self, rng):
        ml = MultilinearPolynomial.random(F, 4, rng)
        res = prove(F, ml.evals, Transcript(b"x"))
        with pytest.raises(SumcheckError):
            verify(F, res.proof, Transcript(b"different"))

    def test_tampered_final_value_fails(self, rng):
        import dataclasses

        ml = MultilinearPolynomial.random(F, 4, rng)
        res = prove(F, ml.evals, Transcript(b"x"))
        bad = dataclasses.replace(
            res.proof, final_value=(res.proof.final_value + 1) % F.modulus
        )
        with pytest.raises(SumcheckError):
            verify(F, bad, Transcript(b"x"))

    def test_tampered_claimed_sum_fails(self, rng):
        import dataclasses

        ml = MultilinearPolynomial.random(F, 4, rng)
        res = prove(F, ml.evals, Transcript(b"x"))
        bad = dataclasses.replace(
            res.proof, claimed_sum=(res.proof.claimed_sum + 1) % F.modulus
        )
        with pytest.raises(SumcheckError):
            verify(F, bad, Transcript(b"x"))

    def test_proof_size_accounting(self, rng):
        ml = MultilinearPolynomial.random(F, 5, rng)
        res = prove(F, ml.evals, Transcript(b"x"))
        assert res.proof.size_field_elements() == 2 + 5 * 2
        assert res.proof.num_rounds == 5

    def test_challenges_bind_round_messages(self, rng):
        """Different polynomials => different FS challenges."""
        a = MultilinearPolynomial.random(F, 4, rng)
        b = MultilinearPolynomial.random(F, 4, rng)
        ra = prove(F, a.evals, Transcript(b"x"))
        rb = prove(F, b.evals, Transcript(b"x"))
        assert ra.challenges != rb.challenges


class TestDoubleBuffer:
    def test_write_read_alternates(self):
        db = DoubleBuffer(capacity=1024)
        assert DoubleBuffer.write_buffer_index(0) == 0
        assert DoubleBuffer.write_buffer_index(1) == 1
        assert DoubleBuffer.read_buffer_index(1) == 0

    def test_written_becomes_readable_next_period(self):
        db = DoubleBuffer(capacity=1024)
        region = db.allocate(period=0, length=100)
        db.begin_period(1)
        readable = db.read_regions(1)
        assert readable == [region]

    def test_no_hazards_in_steady_pipeline(self):
        """Figure 5's invariant: no same-period read/write overlap, ever."""
        db = DoubleBuffer(capacity=required_capacity(256))
        db.allocate(period=0, length=256)
        for period in range(1, 20):
            db.begin_period(period)
            db.read_regions(period)
            # Every live pipeline stage writes its folded (half-size)
            # output table this period.
            size = 128
            while size >= 1:
                db.allocate(period, size)
                size //= 2
        assert db.hazard_pairs() == []

    def test_stride_buffer_shows_hazards(self):
        """The rejected layout of Figure 5 does overlap."""
        sb = StrideBuffer(capacity=256)
        r1 = sb.allocate(period=0, length=200)
        sb.read(1, r1)
        sb.allocate(period=1, length=200)  # wraps into r1's region
        assert sb.hazard_pairs() != []

    def test_overflow_raises(self):
        db = DoubleBuffer(capacity=100)
        with pytest.raises(SumcheckError):
            db.allocate(period=0, length=101)

    def test_period_monotonicity(self):
        db = DoubleBuffer(capacity=100)
        db.begin_period(1)
        with pytest.raises(SumcheckError):
            db.begin_period(0)

    def test_wrong_period_allocation(self):
        db = DoubleBuffer(capacity=100)
        with pytest.raises(SumcheckError):
            db.allocate(period=5, length=10)

    def test_required_capacity_bounds(self):
        assert required_capacity(256) >= 256
        with pytest.raises(SumcheckError):
            required_capacity(0)

    def test_region_overlap_logic(self):
        from repro.sumcheck import BufferRegion

        a = BufferRegion(0, 0, 10)
        b = BufferRegion(0, 5, 10)
        c = BufferRegion(0, 10, 10)
        d = BufferRegion(1, 0, 10)
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(c)
        assert not a.overlaps(d)
