"""Multi-GPU batch scaling tests."""

import pytest

from repro.errors import PipelineError
from repro.pipeline import BatchZkpSystem, MultiGpuBatchSystem, farm_throughput

SCALE = 1 << 14


class TestSharding:
    def test_shares_sum_to_batch(self):
        farm = MultiGpuBatchSystem(["V100", "A100", "H100"], scale=SCALE)
        for batch in (1, 7, 64, 257):
            assert sum(farm.shard(batch)) == batch

    def test_faster_devices_get_more(self):
        farm = MultiGpuBatchSystem(["V100", "H100"], scale=SCALE)
        v100_share, h100_share = farm.shard(100)
        assert h100_share > v100_share

    def test_homogeneous_split_is_even(self):
        farm = MultiGpuBatchSystem(["A100", "A100"], scale=SCALE)
        assert farm.shard(100) == [50, 50]

    def test_tiny_batch(self):
        farm = MultiGpuBatchSystem(["V100", "H100"], scale=SCALE)
        shares = farm.shard(1)
        assert sorted(shares) == [0, 1]

    def test_invalid_batch(self):
        farm = MultiGpuBatchSystem(["V100"], scale=SCALE)
        with pytest.raises(PipelineError):
            farm.shard(0)

    def test_no_devices(self):
        with pytest.raises(PipelineError):
            MultiGpuBatchSystem([], scale=SCALE)


class TestSimulation:
    def test_two_gpus_beat_one(self):
        single = BatchZkpSystem("A100", scale=SCALE).simulate(batch_size=512)
        farm = MultiGpuBatchSystem(["A100", "A100"], scale=SCALE).simulate(
            batch_size=512
        )
        assert (
            farm.throughput_per_second
            > 1.6 * single.sim.throughput_per_second
        )

    def test_efficiency_improves_with_batch(self):
        farm = MultiGpuBatchSystem(["V100", "A100"], scale=SCALE)
        small = farm.simulate(batch_size=32)
        large = farm.simulate(batch_size=2048)
        assert large.scaling_efficiency > small.scaling_efficiency
        assert large.scaling_efficiency > 0.9

    def test_wall_time_is_slowest_shard(self):
        farm = MultiGpuBatchSystem(["V100", "H100"], scale=SCALE)
        res = farm.simulate(batch_size=128)
        shard_times = [
            s.result.sim.total_seconds for s in res.shards if s.result
        ]
        assert res.total_seconds == max(shard_times)

    def test_zero_task_shard_allowed(self):
        farm = MultiGpuBatchSystem(["V100", "H100"], scale=SCALE)
        res = farm.simulate(batch_size=1)
        assert sum(res.tasks_by_device().values()) == 1
        assert any(s.result is None for s in res.shards)

    def test_heterogeneous_farm_ordering(self):
        """Throughput grows monotonically as devices are added."""
        t1 = farm_throughput(["V100"], SCALE, batch_size=512)
        t2 = farm_throughput(["V100", "A100"], SCALE, batch_size=512)
        t3 = farm_throughput(["V100", "A100", "H100"], SCALE, batch_size=512)
        assert t1 < t2 < t3


class TestStatsBugfixes:
    """Regressions for the idle-shard, zero-rate, and re-probe bugs."""

    def test_idle_device_counted_in_ideal_throughput(self):
        farm = MultiGpuBatchSystem(["V100", "H100"], scale=SCALE)
        res = farm.simulate(batch_size=1)
        idle = [s for s in res.shards if s.result is None]
        assert idle and all(s.steady_rate > 0 for s in idle)
        # The ideal denominator is the full farm's steady capacity, idle
        # devices included — not just the shards that got work.
        assert res.ideal_throughput_per_second == pytest.approx(
            sum(farm.device_rates())
        )
        active_only = sum(
            s.result.sim.steady_throughput_per_second
            for s in res.shards
            if s.result is not None
        )
        assert res.ideal_throughput_per_second > active_only

    def test_idle_device_lowers_scaling_efficiency(self):
        farm = MultiGpuBatchSystem(["V100", "H100"], scale=SCALE)
        res = farm.simulate(batch_size=1)
        # One device working, one idle: efficiency can't exceed the
        # working device's share of total capacity.
        rates = farm.device_rates()
        assert res.scaling_efficiency <= max(rates) / sum(rates) + 1e-9

    def test_zero_total_rate_falls_back_to_even_split(self):
        farm = MultiGpuBatchSystem(["V100", "H100"], scale=SCALE)
        farm._rates_cache = [0.0, 0.0]  # degenerate cost model
        shares = farm.shard(5)
        assert sum(shares) == 5
        assert sorted(shares) == [2, 3]

    def test_device_rates_probed_once(self, monkeypatch):
        from repro.pipeline.system import BatchZkpSystem as System

        farm = MultiGpuBatchSystem(["V100", "A100"], scale=SCALE)
        calls = {"n": 0}
        original = System.simulate

        def counting(self, *args, **kwargs):
            calls["n"] += 1
            return original(self, *args, **kwargs)

        monkeypatch.setattr(System, "simulate", counting)
        farm.shard(10)
        farm.shard(20)
        farm.shard(30)
        assert calls["n"] == 2  # one probe per device, ever

    def test_repeated_simulate_does_not_reprobe(self, monkeypatch):
        from repro.pipeline.system import BatchZkpSystem as System

        farm = MultiGpuBatchSystem(["V100", "A100"], scale=SCALE)
        probes = {"n": 0}
        original = System.simulate

        def counting(self, *args, **kwargs):
            if kwargs.get("batch_size") == 64 and "multi_stream" not in kwargs:
                probes["n"] += 1
            return original(self, *args, **kwargs)

        monkeypatch.setattr(System, "simulate", counting)
        farm.simulate(batch_size=10)
        first = probes["n"]
        farm.simulate(batch_size=10)
        farm.simulate(batch_size=12)
        assert first == 2 and probes["n"] == first
