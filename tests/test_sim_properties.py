"""Hypothesis property tests for the GPU simulator's invariants."""

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.gpu import (
    GpuCostModel,
    KernelStage,
    ModuleGraph,
    allocate_threads_proportional,
    get_gpu,
    run_naive,
    run_pipelined,
)

GH200 = get_gpu("GH200")

stage_strategy = st.builds(
    KernelStage,
    name=st.just("s"),
    work_units=st.integers(min_value=1, max_value=1 << 16),
    cycles_per_unit=st.floats(min_value=1.0, max_value=5000.0),
    bytes_in=st.integers(min_value=0, max_value=1 << 20),
    bytes_out=st.integers(min_value=0, max_value=1 << 20),
    memory_bytes=st.integers(min_value=0, max_value=1 << 20),
    unit=st.just("hash"),
)
graph_strategy = st.lists(stage_strategy, min_size=1, max_size=12).map(
    lambda stages: ModuleGraph(name="prop", stages=stages)
)


class TestAllocatorProperties:
    @given(graph=graph_strategy, budget=st.integers(min_value=16, max_value=4096))
    @settings(max_examples=50, deadline=None)
    def test_exact_budget_and_floor(self, graph, budget):
        assume(budget >= len(graph.stages))
        alloc = allocate_threads_proportional(graph.stages, budget)
        assert sum(alloc) == budget
        assert all(a >= 1 for a in alloc)

    @given(graph=graph_strategy)
    @settings(max_examples=40, deadline=None)
    def test_beat_within_factor_of_ideal(self, graph):
        """With a generous thread pool, the realized beat never exceeds
        a small multiple of the perfect work/threads bound."""
        budget = 1 << 14
        alloc = allocate_threads_proportional(graph.stages, budget)
        beat = max(s.duration_cycles(a) for s, a in zip(graph.stages, alloc))
        ideal = graph.total_work_cycles() / budget
        # A single stage can be indivisible (one work unit), so bound by
        # the max of the proportional ideal and the largest atomic unit.
        atomic = max(s.cycles_per_unit for s in graph.stages)
        assert beat <= max(2.0 * ideal, 1.01 * atomic)


class TestSchedulerProperties:
    @given(
        graph=graph_strategy,
        batch=st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=30, deadline=None)
    def test_pipelined_time_decomposition(self, graph, batch):
        res = run_pipelined(GH200, graph, batch, include_transfers=False)
        stages = len([s for s in graph.stages if s.work_units > 0])
        assert res.total_seconds == pytest.approx(
            (batch + stages - 1) * res.steady_interval_seconds, rel=1e-9
        )
        assert res.latency_seconds == pytest.approx(
            stages * res.steady_interval_seconds, rel=1e-9
        )

    @given(
        graph=graph_strategy,
        batch=st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=30, deadline=None)
    def test_pipelined_beat_at_least_ideal(self, graph, batch):
        res = run_pipelined(GH200, graph, batch, include_transfers=False)
        ideal = GH200.cycles_to_seconds(
            graph.total_work_cycles() / GH200.cuda_cores
        )
        assert res.steady_interval_seconds >= ideal * 0.999

    @given(graph=graph_strategy, batch=st.integers(min_value=1, max_value=32))
    @settings(max_examples=30, deadline=None)
    def test_utilization_bounds(self, graph, batch):
        pipe = run_pipelined(GH200, graph, batch, include_transfers=False)
        naive = run_naive(GH200, graph, batch)
        for res in (pipe, naive):
            assert all(0.0 <= u <= 1.0 for _, u in res.utilization_trace)

    @given(graph=graph_strategy, batch=st.integers(min_value=1, max_value=32))
    @settings(max_examples=30, deadline=None)
    def test_naive_scales_with_waves(self, graph, batch):
        res = run_naive(GH200, graph, batch)
        max_work = max(s.work_units for s in graph.stages)
        threads = min(GH200.cuda_cores, max_work)
        concurrency = max(1, GH200.cuda_cores // threads)
        waves = -(-batch // concurrency)
        assert res.total_seconds == pytest.approx(
            waves * res.latency_seconds, rel=1e-9
        )

    @given(graph=graph_strategy)
    @settings(max_examples=30, deadline=None)
    def test_pipelined_memory_is_graph_footprint(self, graph):
        res = run_pipelined(GH200, graph, 8, include_transfers=False)
        active = [s for s in graph.stages if s.work_units > 0]
        assert res.memory_high_water_bytes == sum(s.memory_bytes for s in active)

    @given(
        graph=graph_strategy,
        penalty=st.floats(min_value=1.0, max_value=8.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_penalty_monotone(self, graph, penalty):
        base = run_naive(GH200, graph, 8, compute_penalty=1.0)
        slowed = run_naive(GH200, graph, 8, compute_penalty=penalty)
        assert slowed.total_seconds >= base.total_seconds * 0.999

    @given(graph=graph_strategy)
    @settings(max_examples=25, deadline=None)
    def test_transfers_only_slow_down(self, graph):
        with_io = run_pipelined(GH200, graph, 8, include_transfers=True)
        without = run_pipelined(GH200, graph, 8, include_transfers=False)
        assert with_io.steady_interval_seconds >= without.steady_interval_seconds * 0.999


class TestTailMergeProperties:
    @given(
        num_blocks=st.integers(min_value=4, max_value=1 << 16),
        cap=st.integers(min_value=2, max_value=12),
    )
    @settings(max_examples=40, deadline=None)
    def test_merkle_merge_conserves_everything(self, num_blocks, cap):
        from repro.pipeline import merkle_graph

        full = merkle_graph(num_blocks)
        capped = merkle_graph(num_blocks, max_stages=cap)
        assert len(capped.stages) <= cap
        for attr in ("total_work_cycles", "total_bytes_in", "total_bytes_out",
                     "peak_memory_bytes"):
            assert getattr(capped, attr)() == getattr(full, attr)()
