"""Hot-path kernel layer tests (S26): golden parity, caches, profiling.

Three properties pin the layer down:

1. **Golden parity** — every fast kernel matches its naive reference
   twin element-for-element (the twins are the pre-kernel code paths).
2. **Byte identity** — end-to-end proofs from the kernelized prover
   serialize to the same bytes as reference-path proofs, across every
   execution backend.
3. **Observability** — stage profiles attach to task records and a
   single JSONL trace reconstructs a per-stage cost breakdown.
"""

import io
import pickle
import random

import numpy as np
import pytest

from repro.commitment.brakedown import BrakedownPCS
from repro.core import ProofTask, SnarkProver, SnarkVerifier, random_circuit
from repro.core.constraint import ConstraintSumcheckProver
from repro.core.serialize import serialize_proof
from repro.encoder.spielman import SpielmanEncoder
from repro.errors import ExecutionError
from repro.execution import resolve_backend, stage_breakdown
from repro.execution.trace import load_trace
from repro.field import DEFAULT_FIELD, PrimeField
from repro.field import fast61
from repro.field.multilinear import MultilinearPolynomial
from repro.field.primes import MERSENNE61
from repro.hashing.hashers import get_hasher
from repro.hashing.sha256 import compress_block, sha256
from repro.kernels import (
    EncoderCache,
    SpecCache,
    collect_stages,
    default_spec_cache,
    exclusive_stage_seconds,
    field_kernels,
    kernels_enabled,
    sha256_compress_many,
    sha256_many,
    spec_cache_key,
    stage,
    use_reference_kernels,
)
from repro.merkle.tree import BLOCK_SIZE, MerkleTree, pad_leaves
from repro.runtime import JsonlTraceSink, ProverSpec
from repro.sumcheck.prover import ProductSumcheckProver

F = DEFAULT_FIELD
P = MERSENNE61


def _rand_vec(rng, n, p=P):
    return [rng.randrange(p) for _ in range(n)]


# -- fast61 numpy primitives --------------------------------------------------


class TestFast61:
    EDGE = [0, 1, 2, P - 1, P - 2, (1 << 32) - 1, (1 << 32) + 1, 1 << 60]

    def test_mul_exact_on_edge_pairs(self):
        a = np.array([x for x in self.EDGE for _ in self.EDGE], dtype=np.uint64)
        b = np.array(self.EDGE * len(self.EDGE), dtype=np.uint64)
        got = fast61.f61_mul(a, b).tolist()
        want = [(int(x) * int(y)) % P for x, y in zip(a, b)]
        assert got == want

    def test_add_sub_random(self, rng):
        a = np.array(_rand_vec(rng, 257), dtype=np.uint64)
        b = np.array(_rand_vec(rng, 257), dtype=np.uint64)
        assert fast61.f61_add(a, b).tolist() == [
            (int(x) + int(y)) % P for x, y in zip(a, b)
        ]
        assert fast61.f61_sub(a, b).tolist() == [
            (int(x) - int(y)) % P for x, y in zip(a, b)
        ]

    def test_sum_and_dot_exact(self, rng):
        # Worst case for uint64 accumulation: many near-p values.
        a = np.array([P - 1 - i for i in range(1000)], dtype=np.uint64)
        b = np.array(_rand_vec(rng, 1000), dtype=np.uint64)
        assert fast61.f61_sum(a) == sum(int(x) for x in a) % P
        assert fast61.f61_dot(a, b) == (
            sum(int(x) * int(y) for x, y in zip(a, b)) % P
        )

    def test_columns_sum(self, rng):
        m = np.array(
            [_rand_vec(rng, 33) for _ in range(65)], dtype=np.uint64
        )
        want = [
            sum(int(m[i, j]) for i in range(65)) % P for j in range(33)
        ]
        assert fast61.f61_columns_sum(m).tolist() == want

    def test_spmv_matches_naive(self, rng):
        n_in, n_out, nnz = 40, 30, 200
        src = [rng.randrange(n_in) for _ in range(nnz)]
        dst = [rng.randrange(n_out) for _ in range(nnz)]
        w = _rand_vec(rng, nnz)
        op = fast61.F61SpMV(src, dst, w, n_in, n_out)
        x = _rand_vec(rng, n_in)
        want = [0] * n_out
        for s, d, ww in zip(src, dst, w):
            want[d] = (want[d] + x[s] * ww) % P
        assert op.apply_list(x) == want
        batch = np.array([_rand_vec(rng, n_in) for _ in range(5)], dtype=np.uint64)
        got = op.apply_batch(batch)
        for row_in, row_out in zip(batch, got):
            assert op.apply(row_in).tolist() == row_out.tolist()

    def test_spmv_empty_edges(self):
        op = fast61.F61SpMV([], [], [], 4, 6)
        assert op.apply_list([1, 2, 3, 4]) == [0] * 6


# -- field kernels vs reference twins -----------------------------------------


FIELDS = [F, PrimeField(2**31 - 1, check=False), PrimeField(97, check=False)]


class TestFieldKernelParity:
    @pytest.mark.parametrize("field", FIELDS, ids=["m61", "m31", "p97"])
    @pytest.mark.parametrize("n", [2, 64, 256])
    def test_fold_table(self, field, n, rng):
        table = _rand_vec(rng, n, field.modulus)
        r = rng.randrange(field.modulus)
        assert field_kernels.fold_table(
            field, table, r
        ) == field_kernels._reference_fold_table(field, table, r)

    def test_fold_table_preserves_arrays(self, rng):
        table = np.array(_rand_vec(rng, 8), dtype=np.uint64)
        r = rng.randrange(P)
        out = field_kernels.fold_table(F, table, r)
        assert isinstance(out, np.ndarray)
        assert out.tolist() == field_kernels._reference_fold_table(
            F, table.tolist(), r
        )

    @pytest.mark.parametrize("field", FIELDS, ids=["m61", "m31", "p97"])
    @pytest.mark.parametrize("n", [1, 3, 7])
    def test_eq_table(self, field, n, rng):
        point = _rand_vec(rng, n, field.modulus)
        assert field_kernels.eq_table(
            field, point
        ) == field_kernels._reference_eq_table(field, point)

    @pytest.mark.parametrize("field", FIELDS, ids=["m61", "m31", "p97"])
    @pytest.mark.parametrize("shape", [(3, 5), (17, 64), (64, 128)])
    def test_combine_rows(self, field, shape, rng):
        rows, width = shape
        matrix = [_rand_vec(rng, width, field.modulus) for _ in range(rows)]
        coeffs = _rand_vec(rng, rows, field.modulus)
        coeffs[0] = 0  # exercise the zero-coefficient skip
        assert field_kernels.combine_rows(
            field, matrix, coeffs
        ) == field_kernels._reference_combine_rows(field, matrix, coeffs)

    @pytest.mark.parametrize("field", FIELDS, ids=["m61", "m31", "p97"])
    def test_spmv(self, field, rng):
        p = field.modulus
        rows = [
            [(rng.randrange(12), rng.randrange(p)) for _ in range(3)]
            for _ in range(8)
        ]
        x = _rand_vec(rng, 8, p)
        assert field_kernels.spmv(
            field, rows, x, 12
        ) == field_kernels._reference_spmv(field, rows, x, 12)

    @pytest.mark.parametrize("field", FIELDS, ids=["m61", "m31", "p97"])
    @pytest.mark.parametrize("n", [4, 64])
    def test_round_kernels(self, field, n, rng):
        p = field.modulus
        ta, tb = _rand_vec(rng, n, p), _rand_vec(rng, n, p)
        eq, az = _rand_vec(rng, n, p), _rand_vec(rng, n, p)
        bz, cz = _rand_vec(rng, n, p), _rand_vec(rng, n, p)
        with use_reference_kernels():
            quad = field_kernels.product_round_quadratic(field, ta, tb)
            cubic = field_kernels.constraint_round_cubic(field, eq, az, bz, cz)
            pair = field_kernels.product_pair_sum(field, ta, tb)
            claim = field_kernels.constraint_claimed_sum(field, eq, az, bz, cz)
            viol = field_kernels.constraint_violation(field, az, bz, cz)
        assert field_kernels.product_round_quadratic(field, ta, tb) == quad
        assert (
            field_kernels.constraint_round_cubic(field, eq, az, bz, cz) == cubic
        )
        assert field_kernels.product_pair_sum(field, ta, tb) == pair
        assert (
            field_kernels.constraint_claimed_sum(field, eq, az, bz, cz) == claim
        )
        assert field_kernels.constraint_violation(field, az, bz, cz) == viol

    def test_constraint_violation_detects(self):
        az, bz, cz = [2] * 64, [3] * 64, [6] * 64
        assert not field_kernels.constraint_violation(F, az, bz, cz)
        cz[17] = 7
        assert field_kernels.constraint_violation(F, az, bz, cz)

    @pytest.mark.parametrize("field", FIELDS, ids=["m61", "m31", "p97"])
    @pytest.mark.parametrize("n", [8, 64])
    def test_evaluate_table(self, field, n, rng):
        table = _rand_vec(rng, n, field.modulus)
        point = _rand_vec(rng, n.bit_length() - 1, field.modulus)
        want = field_kernels.evaluate_table_bits(field, table, point)
        got = field_kernels.evaluate_table(field, table, point)
        assert got == want
        assert isinstance(got, int) and not isinstance(got, np.integer)

    @pytest.mark.parametrize("field", FIELDS, ids=["m61", "m31", "p97"])
    def test_pack_vector(self, field, rng):
        values = _rand_vec(rng, 50, field.modulus)
        assert field_kernels.pack_vector(
            field, values
        ) == field_kernels._reference_pack_vector(field, values)

    def test_pack_vector_noncanonical_falls_back(self):
        # Negative and >= p values must reduce exactly like to_bytes.
        values = [-1, P + 5, 3]
        assert field_kernels.pack_vector(
            F, values
        ) == field_kernels._reference_pack_vector(F, values)

    def test_dispatch_toggle(self):
        assert kernels_enabled()
        with use_reference_kernels():
            assert not kernels_enabled()
        assert kernels_enabled()


# -- SWAR hash kernels --------------------------------------------------------


class TestHashKernels:
    @pytest.mark.parametrize("n", [1, 2, 7, 64, 65])
    def test_sha256_many_matches_scalar(self, n, rng):
        blocks = [bytes([rng.randrange(256)]) * (i + 1) for i in range(n)]
        assert sha256_many(blocks) == [sha256(b) for b in blocks]

    @pytest.mark.parametrize("n", [1, 3, 64, 100])
    def test_compress_many_matches_scalar(self, n, rng):
        blocks = [
            bytes(rng.randrange(256) for _ in range(64)) for _ in range(n)
        ]
        assert sha256_compress_many(blocks) == [
            compress_block(b) for b in blocks
        ]

    def test_hasher_hash_many(self, rng):
        blocks = [bytes([i]) * 64 for i in range(40)]
        for name in ("sha256", "sha256-hw"):
            hasher = get_hasher(name)
            assert hasher.hash_many(blocks) == [
                hasher.hash_bytes(b) for b in blocks
            ]

    def test_compress_layer(self):
        hasher = get_hasher("sha256-hw")
        layer = [bytes([i]) * 32 for i in range(8)]
        got = hasher.compress_layer(layer)
        assert got == [
            hasher.compress(layer[i], layer[i + 1])
            for i in range(0, 8, 2)
        ]


# -- merkle / encoder integration ---------------------------------------------


class TestMerkleAndEncoder:
    def test_pad_leaves_filler_is_memoized(self):
        hasher = get_hasher("sha256")
        filler = hasher.zero_digest(BLOCK_SIZE)
        assert filler == hasher.hash_bytes(bytes(BLOCK_SIZE))
        assert hasher.zero_digest(BLOCK_SIZE) is filler  # cached object
        padded = pad_leaves([bytes([1]) * 32] * 3, hasher)
        assert padded[3] == filler

    def test_from_field_vectors_matches_manual(self, rng):
        cols = [_rand_vec(rng, 4) for _ in range(6)]
        tree = MerkleTree.from_field_vectors(F, cols)
        manual = MerkleTree(
            [
                tree.hasher.hash_bytes(b"".join(F.to_bytes(v) for v in col))
                for col in cols
            ],
            tree.hasher,
        )
        assert tree.root == manual.root

    def test_sparse_apply_parity(self, rng):
        enc = SpielmanEncoder(F, 64, seed=5)
        msg = _rand_vec(rng, 64)
        fast = enc.encode(msg)
        with use_reference_kernels():
            ref = SpielmanEncoder(F, 64, seed=5).encode(msg)
        assert fast == ref

    def test_encode_many_parity(self, rng):
        enc = SpielmanEncoder(F, 64, seed=5)
        messages = [_rand_vec(rng, 64) for _ in range(5)]
        assert enc.encode_many(messages) == [enc.encode(m) for m in messages]

    def test_encode_many_single_message(self, rng):
        enc = SpielmanEncoder(F, 32, seed=1)
        msg = _rand_vec(rng, 32)
        assert enc.encode_many([msg]) == [enc.encode(msg)]


# -- sum-check array state ----------------------------------------------------


class TestSumcheckArrayState:
    def _drive(self, prover, rng):
        out = []
        while prover.rounds_remaining:
            out.append(prover.round_polynomial())
            prover.fold(rng.randrange(P))
        return out

    def test_constraint_prover_array_matches_list(self):
        rng_a, rng_b = random.Random(7), random.Random(7)
        n = 64
        eq = _rand_vec(random.Random(1), n)
        az = _rand_vec(random.Random(2), n)
        bz = _rand_vec(random.Random(3), n)
        cz = _rand_vec(random.Random(4), n)
        fast = ConstraintSumcheckProver(F, eq, az, bz, cz)
        assert isinstance(fast._eq, np.ndarray)
        with use_reference_kernels():
            ref = ConstraintSumcheckProver(F, eq, az, bz, cz)
        assert isinstance(ref._eq, list)
        assert fast.claimed_sum == ref.claimed_sum
        rounds_fast = self._drive(fast, rng_a)
        with use_reference_kernels():
            rounds_ref = self._drive(ref, rng_b)
        assert rounds_fast == rounds_ref
        finals = fast.final_values()
        assert finals == ref.final_values()
        assert all(type(v) is int for v in finals)

    def test_product_prover_array_matches_list(self):
        rng_a, rng_b = random.Random(9), random.Random(9)
        ta = _rand_vec(random.Random(5), 64)
        tb = _rand_vec(random.Random(6), 64)
        fast = ProductSumcheckProver(F, [ta, tb])
        assert isinstance(fast._tables[0], np.ndarray)
        with use_reference_kernels():
            ref = ProductSumcheckProver(F, [ta, tb])
        assert fast.claimed_sum == ref.claimed_sum
        rounds_fast = self._drive(fast, rng_a)
        with use_reference_kernels():
            rounds_ref = self._drive(ref, rng_b)
        assert rounds_fast == rounds_ref
        finals = fast.final_factor_values()
        assert finals == ref.final_factor_values()
        assert all(type(v) is int for v in finals)

    def test_degree_three_product_stays_on_lists(self):
        tables = [_rand_vec(random.Random(i), 64) for i in range(3)]
        prover = ProductSumcheckProver(F, tables)
        assert isinstance(prover._tables[0], list)

    def test_negative_inputs_fall_back_to_lists(self):
        n = 64
        eq = [-1] * n
        az = bz = cz = [1] * n
        prover = ConstraintSumcheckProver(F, eq, az, bz, cz)
        assert isinstance(prover._eq, list)
        assert prover._eq[0] == P - 1


# -- multilinear evaluation ---------------------------------------------------


class TestMultilinearEvaluate:
    @pytest.mark.parametrize("n", [1, 4, 7])
    def test_fold_evaluation_matches_bits_reference(self, n, rng):
        table = _rand_vec(rng, 1 << n)
        poly = MultilinearPolynomial(F, table)
        point = _rand_vec(rng, n)
        want = field_kernels.evaluate_table_bits(F, table, point)
        assert poly.evaluate(point) == want


# -- spec cache ---------------------------------------------------------------


class TestSpecCache:
    def test_value_keyed_hit(self):
        circ = random_circuit(F, 64, seed=2)
        spec_a = ProverSpec(
            r1cs=circ.r1cs, public_indices=tuple(circ.public_indices)
        )
        spec_b = ProverSpec(  # distinct object, identical value
            r1cs=circ.r1cs, public_indices=tuple(circ.public_indices)
        )
        assert spec_cache_key(spec_a) == spec_cache_key(spec_b)
        cache = SpecCache(maxsize=4)
        p1 = cache.get_prover(spec_a)
        p2 = cache.get_prover(spec_b)
        assert p1 is p2
        assert cache.hits == 1 and cache.misses == 1

    def test_different_knobs_miss(self):
        circ = random_circuit(F, 64, seed=2)
        cache = SpecCache(maxsize=4)
        cache.get_prover(ProverSpec(r1cs=circ.r1cs))
        cache.get_prover(ProverSpec(r1cs=circ.r1cs, num_col_checks=6))
        assert cache.misses == 2 and cache.hits == 0

    def test_lru_bound(self):
        cache = SpecCache(maxsize=1)
        for seed in (1, 2):
            circ = random_circuit(F, 64, seed=seed)
            cache.get_prover(ProverSpec(r1cs=circ.r1cs))
        assert len(cache) == 1

    def test_default_cache_is_shared(self):
        assert default_spec_cache() is default_spec_cache()


class TestEncoderCache:
    def test_hit_returns_same_graph_and_counts(self):
        cache = EncoderCache(maxsize=4)
        e1 = cache.get(F, 16, None, 7)
        e2 = cache.get(F, 16, None, 7)
        assert e1 is e2
        assert cache.hits == 1 and cache.misses == 1 and len(cache) == 1

    def test_lru_bound_and_eviction_stats(self):
        cache = EncoderCache(maxsize=2)
        for seed in (1, 2, 3):
            cache.get(F, 16, None, seed)
        assert len(cache) == 2
        assert cache.evictions == 1
        # Seed 1 was the least recently used entry — rebuilt on return.
        assert cache.get(F, 16, None, 1) is not None
        assert cache.misses == 4

    def test_recency_ordering_protects_hot_entries(self):
        # The pre-LRU memo evicted in insertion order, so the hottest
        # graph was dropped first; a hit must now refresh recency.
        cache = EncoderCache(maxsize=2)
        hot = cache.get(F, 16, None, 1)
        cache.get(F, 16, None, 2)
        assert cache.get(F, 16, None, 1) is hot  # refresh recency
        cache.get(F, 16, None, 3)  # evicts seed 2, not the hot seed 1
        assert cache.get(F, 16, None, 1) is hot
        assert cache.hits == 2

    def test_eviction_actually_frees_entries(self):
        import gc
        import weakref

        cache = EncoderCache(maxsize=1)
        ref = weakref.ref(cache.get(F, 16, None, 100))
        assert ref() is not None
        cache.get(F, 16, None, 101)  # evicts seed 100
        gc.collect()
        assert ref() is None, "evicted encoder still referenced"

    def test_default_encoder_cache_backs_cached_encoder(self):
        from repro.kernels import cached_encoder, default_encoder_cache

        cache = default_encoder_cache()
        before = cache.hits + cache.misses
        e1 = cached_encoder(F, 16, None, 12345)
        e2 = cached_encoder(F, 16, None, 12345)
        assert e1 is e2
        assert cache.hits + cache.misses >= before + 2


# -- stage profiling ----------------------------------------------------------


class TestStageProfile:
    def test_collect_and_nest(self):
        with collect_stages() as profile:
            with stage("commit"):
                with stage("merkle"):
                    pass
        assert set(profile.seconds) == {"commit", "merkle"}
        assert profile.seconds["commit"] >= profile.seconds["merkle"]

    def test_noop_without_collector(self):
        with stage("merkle"):
            pass  # must not raise or record anywhere

    def test_prove_records_all_stages(self):
        circ = random_circuit(F, 128, seed=3)
        prover = SnarkProver(circ.r1cs, public_indices=circ.public_indices)
        with collect_stages() as profile:
            prover.prove(circ.witness, circ.public_values)
        assert {"commit", "encode", "merkle", "sumcheck1", "sumcheck2",
                "open"} <= set(profile.seconds)
        ordered = list(profile.as_dict())
        assert ordered[:3] == ["commit", "encode", "merkle"]


# -- trace reconstruction -----------------------------------------------------


class TestStageTrace:
    def _run(self, selector):
        circ = random_circuit(F, 128, seed=4)
        spec = ProverSpec(
            r1cs=circ.r1cs, public_indices=tuple(circ.public_indices)
        )
        tasks = [
            ProofTask(i, circ.witness, circ.public_values) for i in range(3)
        ]
        buf = io.StringIO()
        sink = JsonlTraceSink(buf)
        backend = resolve_backend(selector)
        proofs, stats = backend.prove_tasks(spec, tasks, trace=sink)
        return buf.getvalue(), stats

    def test_serial_breakdown_from_single_jsonl(self):
        text, stats = self._run("serial")
        events = load_trace(text.splitlines())
        per_task = stage_breakdown(events, task_id=1)
        assert {"commit", "sumcheck1", "sumcheck2", "open"} <= set(per_task)
        # Records keep the raw inclusive profile; the replay's default is
        # the exclusive (summable) view of the same numbers.
        record = next(r for r in stats.records if r.task_id == 1)
        assert record.stage_seconds == stage_breakdown(
            events, task_id=1, exclusive=False
        )
        assert per_task == exclusive_stage_seconds(record.stage_seconds)
        totals = stage_breakdown(events)
        assert totals == stats.stage_totals()
        assert stage_breakdown(events, exclusive=False) == stats.stage_totals(
            exclusive=False
        )
        assert totals["commit"] >= per_task["commit"]

    def test_pool_breakdown(self):
        text, stats = self._run("pool:2")
        events = load_trace(text.splitlines())
        assert stage_breakdown(events) == stats.stage_totals()
        assert all(r.stage_seconds for r in stats.records)

    def test_exclusive_totals_never_double_count(self):
        _, stats = self._run("serial")
        incl = stats.stage_totals(exclusive=False)
        excl = stats.stage_totals()
        # The historical bug: summing the inclusive dict counts the
        # commit phase twice (commit ⊇ encode + merkle).
        assert excl["commit"] == pytest.approx(
            max(0.0, incl["commit"] - incl["encode"] - incl["merkle"])
        )
        for name in ("encode", "merkle", "sumcheck1", "sumcheck2", "open"):
            assert excl[name] == incl[name]
        assert sum(excl.values()) < sum(incl.values())
        # Exclusive fractions are shares of proving wall time: their sum
        # never exceeds the summed in-stage proving seconds.
        prove_wall = sum(r.prove_seconds for r in stats.records)
        assert sum(excl.values()) <= prove_wall + 1e-9

    def test_report_split_sums_to_at_most_wall(self):
        _, stats = self._run("serial")
        split_line = next(
            line for line in stats.report().splitlines()
            if line.startswith("stage split")
        )
        shown = sum(
            float(tok[:-2]) for tok in split_line.split() if tok.endswith("ms")
        )
        prove_wall = sum(r.prove_seconds for r in stats.records) * 1e3
        assert shown <= prove_wall * 1.01 + 0.1  # rounding slack

    def test_missing_task_raises(self):
        text, _ = self._run("serial")
        events = load_trace(text.splitlines())
        with pytest.raises(ExecutionError):
            stage_breakdown(events, task_id=999)

    def test_report_includes_stage_split(self):
        _, stats = self._run("serial")
        assert "stage split" in stats.report()


# -- end-to-end byte identity -------------------------------------------------


class TestByteIdentity:
    def _reference_proof(self, circ):
        with use_reference_kernels():
            prover = SnarkProver(
                circ.r1cs,
                BrakedownPCS(F, num_vars=circ.r1cs.witness_vars),
                public_indices=circ.public_indices,
            )
            return prover.prove(circ.witness, circ.public_values)

    def test_single_proof_byte_identical_and_verifies(self):
        circ = random_circuit(F, 256, seed=6)
        ref = self._reference_proof(circ)
        prover = SnarkProver(
            circ.r1cs,
            BrakedownPCS(F, num_vars=circ.r1cs.witness_vars),
            public_indices=circ.public_indices,
        )
        fast = prover.prove(circ.witness, circ.public_values)
        assert serialize_proof(fast, F) == serialize_proof(ref, F)
        verifier = SnarkVerifier(circ.r1cs, public_indices=circ.public_indices)
        assert verifier.verify(fast, circ.public_values)

    @pytest.mark.parametrize(
        "selector",
        ["serial", "pool:2", "sharded:serial,serial", "resilient:serial"],
    )
    def test_backends_byte_identical_to_reference(self, selector):
        circ = random_circuit(F, 128, seed=8)
        spec = ProverSpec(
            r1cs=circ.r1cs, public_indices=tuple(circ.public_indices)
        )
        tasks = [
            ProofTask(i, circ.witness, circ.public_values) for i in range(4)
        ]
        ref = self._reference_proof_for_spec(spec, circ)
        backend = resolve_backend(selector)
        proofs, _ = backend.prove_tasks(spec, tasks)
        for proof in proofs:
            assert serialize_proof(proof, F) == ref

    def _reference_proof_for_spec(self, spec, circ):
        with use_reference_kernels():
            proof = spec.build_prover().prove(
                circ.witness, circ.public_values
            )
            return serialize_proof(proof, F)


# -- pickling ------------------------------------------------------------------


class TestR1csPickle:
    def test_f61_caches_dropped_and_rebuilt(self):
        circ = random_circuit(F, 64, seed=10)
        r1cs = circ.r1cs
        z = r1cs.pad_witness(circ.witness)
        before = r1cs.matvec_tables(z)  # populates the F61SpMV caches
        clone = pickle.loads(pickle.dumps(r1cs))
        assert getattr(clone, "_f61_rows", None) is None
        assert clone.matvec_tables(z) == before
        assert clone.digest() == r1cs.digest()
