"""Sensitivity-analysis unit tests and codeword validation."""

import pytest

from repro.bench import SensitivityPoint, sensitivity_sweep, summarize
from repro.encoder import EncoderParams, SpielmanEncoder
from repro.field import DEFAULT_FIELD

F = DEFAULT_FIELD


class TestSensitivity:
    @pytest.fixture(scope="class")
    def points(self):
        # A reduced grid keeps the unit test fast; the bench runs the full one.
        return sensitivity_sweep(factors=(0.5, 1.0, 2.0))

    def test_grid_shape(self, points):
        assert len(points) == 3 * 5  # 3 factors x 5 fields

    def test_all_claims_hold(self, points):
        summary = summarize(points)
        assert summary["all_claims_hold"], summary["violations"]

    def test_identity_factor_matches_default(self, points):
        """factor=1.0 rows must agree with each other (same model)."""
        base = [p for p in points if p.factor == 1.0]
        first = base[0]
        for p in base[1:]:
            assert p.system_speedup_vs_bellperson == pytest.approx(
                first.system_speedup_vs_bellperson
            )

    def test_claims_hold_property(self):
        good = SensitivityPoint("x", 1.0, 10.0, 2.0, 300.0)
        assert good.claims_hold
        bad = SensitivityPoint("x", 1.0, 1.5, 2.0, 300.0)  # trend inverted
        assert not bad.claims_hold

    def test_launch_overhead_drives_small_size_gap(self, points):
        """Scaling kernel-launch cost up widens the small-module speedup
        (the baseline pays per-stage launches; the pipeline does not)."""
        launch = {
            p.factor: p.module_speedup_small
            for p in points
            if p.field_name == "kernel_launch_seconds"
        }
        assert launch[2.0] > launch[0.5]


class TestCodewordValidation:
    @pytest.fixture(scope="class")
    def encoder(self):
        return SpielmanEncoder(F, 256, seed=6)

    def test_valid_codeword_accepted(self, encoder, rng):
        msg = F.rand_vector(256, rng)
        assert encoder.is_codeword(encoder.encode(msg))

    def test_corrupted_parity_rejected(self, encoder, rng):
        cw = encoder.encode(F.rand_vector(256, rng))
        cw[-1] = (cw[-1] + 1) % F.modulus
        assert not encoder.is_codeword(cw)

    def test_corrupted_message_symbol_rejected(self, encoder, rng):
        """Flipping a message symbol invalidates the parity section."""
        cw = encoder.encode(F.rand_vector(256, rng))
        cw[3] = (cw[3] + 1) % F.modulus
        assert not encoder.is_codeword(cw)

    def test_wrong_length_rejected(self, encoder):
        assert not encoder.is_codeword([0] * 100)

    def test_zero_codeword_valid(self, encoder):
        assert encoder.is_codeword([0] * encoder.codeword_length)

    def test_higher_inverse_rate(self, rng):
        """inv_rate=4 codes encode and validate too (rate 1/4)."""
        enc = SpielmanEncoder(
            F, 128, params=EncoderParams(inv_rate=4, alpha=0.25), seed=1
        )
        msg = F.rand_vector(128, rng)
        cw = enc.encode(msg)
        assert len(cw) == 4 * 128
        assert cw[:128] == msg
        assert enc.is_codeword(cw)
