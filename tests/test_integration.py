"""Cross-module integration tests: full flows through multiple subsystems."""

import random

import pytest

from repro.commitment import BrakedownPCS
from repro.core import (
    BatchProver,
    CircuitBuilder,
    ProofTask,
    SnarkProver,
    SnarkVerifier,
    compile_builder,
    make_pcs,
    random_circuit,
    verify_all,
)
from repro.field import DEFAULT_FIELD, MultilinearPolynomial, PrimeField
from repro.field.primes import BN254_SCALAR, GOLDILOCKS
from repro.gpu import GpuCostModel, get_gpu, run_naive, run_pipelined
from repro.hashing import Transcript, get_hasher
from repro.merkle import MerkleTree
from repro.pipeline import BatchZkpSystem, merkle_graph
from repro.sumcheck import evaluation_point, prove_product
from repro.zkml import MlaasService, random_input, tiny_cnn

F = DEFAULT_FIELD


class TestFieldAgnosticProtocols:
    """The paper's protocols are field-agnostic; exercise non-default fields."""

    @pytest.mark.parametrize("modulus", [GOLDILOCKS, BN254_SCALAR])
    def test_snark_on_other_fields(self, modulus):
        field = PrimeField(modulus, check=False)
        cb = CircuitBuilder(field)
        x = cb.private_input(11)
        cb.expose_public(cb.mul(cb.square(x), x))  # x^3 = 1331
        cc = compile_builder(cb)
        pcs = make_pcs(field, cc.r1cs, num_col_checks=5)
        prover = SnarkProver(cc.r1cs, pcs, public_indices=cc.public_indices)
        verifier = SnarkVerifier(cc.r1cs, pcs, public_indices=cc.public_indices)
        proof = prover.prove(cc.witness, cc.public_values)
        assert cc.public_values == [1331]
        assert verifier.verify(proof, cc.public_values)

    @pytest.mark.parametrize("modulus", [GOLDILOCKS, BN254_SCALAR])
    def test_pcs_on_other_fields(self, modulus, rng):
        field = PrimeField(modulus, check=False)
        pcs = BrakedownPCS(field, num_vars=6, seed=1, num_col_checks=6)
        ml = MultilinearPolynomial.random(field, 6, rng)
        com, state = pcs.commit(ml.evals)
        pt = field.rand_vector(6, rng)
        proof = pcs.open(state, pt, Transcript(b"x"))
        assert pcs.verify(com, pt, ml.evaluate(pt), proof, Transcript(b"x"))


class TestProverVerifierSeparation:
    """Prover and verifier built independently from shared public data
    must agree."""

    def test_fresh_verifier_instance(self):
        cc = random_circuit(F, 48, seed=21)
        # Independent PCS objects with the same (public) parameters.
        pcs_p = make_pcs(F, cc.r1cs, seed=0, num_col_checks=7)
        pcs_v = make_pcs(F, cc.r1cs, seed=0, num_col_checks=7)
        prover = SnarkProver(cc.r1cs, pcs_p, public_indices=cc.public_indices)
        verifier = SnarkVerifier(cc.r1cs, pcs_v, public_indices=cc.public_indices)
        proof = prover.prove(cc.witness, cc.public_values)
        assert verifier.verify(proof, cc.public_values)

    def test_different_pcs_seed_breaks_verification(self):
        """The encoder seed is part of the public parameters — mismatched
        setups must not verify (different codes)."""
        cc = random_circuit(F, 48, seed=22)
        prover = SnarkProver(
            cc.r1cs, make_pcs(F, cc.r1cs, seed=0, num_col_checks=7),
            public_indices=cc.public_indices,
        )
        verifier = SnarkVerifier(
            cc.r1cs, make_pcs(F, cc.r1cs, seed=1, num_col_checks=7),
            public_indices=cc.public_indices,
        )
        proof = prover.prove(cc.witness, cc.public_values)
        assert not verifier.verify(proof, cc.public_values)


class TestProofsAreDistinctPerWitness:
    def test_two_witnesses_same_circuit(self):
        """Same circuit shape, different witnesses -> different commitments
        and different public outputs, both verifying."""
        cb1 = CircuitBuilder(F)
        a = cb1.private_input(3)
        cb1.expose_public(cb1.square(a))
        cc1 = compile_builder(cb1)

        cb2 = CircuitBuilder(F)
        b = cb2.private_input(5)
        cb2.expose_public(cb2.square(b))
        cc2 = compile_builder(cb2)

        assert cc1.r1cs.digest() == cc2.r1cs.digest()  # identical structure
        pcs = make_pcs(F, cc1.r1cs, num_col_checks=6)
        prover = SnarkProver(cc1.r1cs, pcs, public_indices=cc1.public_indices)
        verifier = SnarkVerifier(cc1.r1cs, pcs, public_indices=cc1.public_indices)
        p1 = prover.prove(cc1.witness, cc1.public_values)
        p2 = prover.prove(cc2.witness, cc2.public_values)
        assert p1.commitment.root != p2.commitment.root
        assert verifier.verify(p1, [9])
        assert verifier.verify(p2, [25])
        assert not verifier.verify(p1, [25])


class TestSumcheckFeedsPcs:
    """The core protocol pattern: sum-check reduces to a PCS opening."""

    def test_manual_reduction(self, rng):
        n = 6
        f = MultilinearPolynomial.random(F, n, rng)
        g = MultilinearPolynomial.random(F, n, rng)
        # Commit to f up front.
        pcs = BrakedownPCS(F, num_vars=n, seed=4, num_col_checks=8)
        com, state = pcs.commit(f.evals)
        # Sum-check Σ f·g with Fiat-Shamir.
        t_prover = Transcript(b"reduce")
        result = prove_product(F, [f.evals, g.evals], t_prover)
        point = evaluation_point(result.challenges)
        # The final claim factors as f(r)·g(r); open f(r) via the PCS.
        f_at_r = pcs.evaluate(state, point)
        opening = pcs.open(state, point, t_prover)
        # Verifier side: replay, then check the opening and the factorization.
        from repro.sumcheck import verify as sc_verify

        t_verifier = Transcript(b"reduce")
        challenges = sc_verify(F, result.proof, t_verifier)
        point_v = evaluation_point(challenges)
        assert point_v == point
        assert pcs.verify(com, point_v, f_at_r, opening, t_verifier)
        g_at_r = g.evaluate(point_v)
        assert (f_at_r * g_at_r) % F.modulus == result.proof.final_value


class TestMerkleCommitsModelAndWitness:
    def test_zkml_root_in_merkle_module(self):
        """The MLaaS model root equals a plain MerkleTree over the same
        parameter blocks (no hidden divergence between subsystems)."""
        model = tiny_cnn(input_size=4, channels=1, classes=3)
        model.init_params(3)
        service = MlaasService(model)
        tree = MerkleTree.from_blocks(model.parameter_blocks(), service.hasher)
        assert service.model_root == tree.root


class TestSimulationVsFunctionalConsistency:
    """The simulator's work accounting must match the functional code."""

    def test_merkle_hash_counts_agree(self):
        n = 1 << 8
        graph = merkle_graph(n)
        blocks = [bytes([i % 256]) * 64 for i in range(n)]
        tree = MerkleTree.from_blocks(blocks, get_hasher("sha256-hw"))
        functional_hashes = n + tree.hash_count()  # leaves + interior
        simulated_hashes = sum(s.work_units for s in graph.stages)
        assert simulated_hashes == functional_hashes

    def test_encoder_nnz_agree(self):
        """Simulated MAC counts within 15% of a real encoder's nnz (the
        graph uses closed-form sizes, the encoder random degrees)."""
        from repro.encoder import SpielmanEncoder
        from repro.pipeline import encoder_graph

        n = 1 << 10
        enc = SpielmanEncoder(F, n, seed=0)
        graph = encoder_graph(n)
        simulated = sum(s.work_units for s in graph.stages)
        assert abs(simulated - enc.total_nnz()) / enc.total_nnz() < 0.15

    def test_sumcheck_entry_counts_agree(self):
        """Graph entry-reads equal Algorithm 1's table touches."""
        from repro.pipeline import sumcheck_graph

        n = 10
        graph = sumcheck_graph(n)
        simulated = sum(s.work_units for s in graph.stages)
        algorithmic = sum(1 << (n - i) for i in range(n))
        assert simulated == algorithmic


class TestEndToEndBatchPipeline:
    def test_batch_functional_plus_simulated(self):
        """One scenario through both halves: prove a real batch AND
        simulate the same batch size at paper scale."""
        cc = random_circuit(F, 32, seed=31)
        pcs = make_pcs(F, cc.r1cs, num_col_checks=5)
        prover = SnarkProver(cc.r1cs, pcs, public_indices=cc.public_indices)
        verifier = SnarkVerifier(cc.r1cs, pcs, public_indices=cc.public_indices)
        tasks = [ProofTask(i, cc.witness, cc.public_values) for i in range(4)]
        proofs, stats = BatchProver(prover).prove_all(tasks)
        assert verify_all(verifier, proofs, tasks)

        sim = BatchZkpSystem("GH200", scale=1 << 14).simulate(batch_size=4)
        assert sim.sim.batch_size == 4
        assert sim.throughput_per_second > stats.throughput_per_second


class TestDeterministicReproducibility:
    def test_proofs_are_deterministic(self):
        """Same witness + same transcript schedule -> identical proofs
        (required for the batch system's reproducibility)."""
        cc = random_circuit(F, 24, seed=41)
        pcs = make_pcs(F, cc.r1cs, num_col_checks=5)
        prover = SnarkProver(cc.r1cs, pcs, public_indices=cc.public_indices)
        p1 = prover.prove(cc.witness, cc.public_values)
        p2 = prover.prove(cc.witness, cc.public_values)
        assert p1.commitment.root == p2.commitment.root
        assert p1.constraint_sumcheck == p2.constraint_sumcheck
        assert p1.vz == p2.vz

    def test_simulation_deterministic(self):
        a = BatchZkpSystem("V100", scale=1 << 14).simulate(batch_size=16)
        b = BatchZkpSystem("V100", scale=1 << 14).simulate(batch_size=16)
        assert a.sim.total_seconds == b.sim.total_seconds
        assert a.sim.thread_allocation == b.sim.thread_allocation
