"""Regression tests for the BatchStats lifecycle (fresh per run, reset()).

The original `prove_stream` accumulated into whatever ``self.stats``
already held, so two stream runs — or a stream after ``prove_all`` —
reported merged, wrong throughput; and ``prove_all`` rebound
``self.stats``, so previously-held references went stale.  The contract
now: one stable stats object per prover, reset in place at the start of
every run, with ``prove_all`` returning an immutable-by-convention
snapshot.
"""

import pytest

from repro.core import (
    BatchProver,
    BatchStats,
    ProofTask,
    SnarkProver,
    make_pcs,
    random_circuit,
)
from repro.field import DEFAULT_FIELD

F = DEFAULT_FIELD


@pytest.fixture(scope="module")
def batch():
    cc = random_circuit(F, 32, seed=2)
    pcs = make_pcs(F, cc.r1cs, num_col_checks=4)
    prover = SnarkProver(cc.r1cs, pcs, public_indices=cc.public_indices)
    tasks = [ProofTask(i, cc.witness, cc.public_values) for i in range(4)]
    return BatchProver(prover), tasks


class TestReset:
    def test_reset_zeroes_in_place(self):
        stats = BatchStats(
            proofs_generated=3, total_seconds=1.5, per_proof_seconds=[0.5] * 3
        )
        held = stats.per_proof_seconds
        stats.reset()
        assert stats.proofs_generated == 0
        assert stats.total_seconds == 0.0
        assert stats.per_proof_seconds == [] and stats.per_proof_seconds is held

    def test_snapshot_is_independent(self):
        stats = BatchStats(proofs_generated=2, total_seconds=1.0,
                           per_proof_seconds=[0.5, 0.5])
        snap = stats.snapshot()
        stats.reset()
        assert snap.proofs_generated == 2
        assert snap.per_proof_seconds == [0.5, 0.5]


class TestStreamLifecycle:
    def test_two_stream_runs_do_not_merge(self, batch):
        prover, tasks = batch
        list(prover.prove_stream(iter(tasks[:3])))
        assert prover.stats.proofs_generated == 3

        list(prover.prove_stream(iter(tasks[:2])))
        # Regression: this used to report 5 proofs and summed seconds.
        assert prover.stats.proofs_generated == 2
        assert len(prover.stats.per_proof_seconds) == 2
        assert prover.stats.total_seconds == pytest.approx(
            sum(prover.stats.per_proof_seconds)
        )

    def test_stream_after_prove_all_is_fresh(self, batch):
        prover, tasks = batch
        prover.prove_all(tasks)
        assert prover.stats.proofs_generated == len(tasks)
        list(prover.prove_stream(iter(tasks[:1])))
        assert prover.stats.proofs_generated == 1
        assert len(prover.stats.per_proof_seconds) == 1


class TestProveAllLifecycle:
    def test_stats_identity_is_stable(self, batch):
        prover, tasks = batch
        held = prover.stats
        prover.prove_all(tasks[:2])
        # Regression: prove_all used to rebind self.stats, orphaning refs.
        assert prover.stats is held
        assert held.proofs_generated == 2

    def test_returned_snapshot_survives_later_runs(self, batch):
        prover, tasks = batch
        _, first = prover.prove_all(tasks[:2])
        _, second = prover.prove_all(tasks[:4])
        assert first.proofs_generated == 2
        assert second.proofs_generated == 4
        assert first is not second

    def test_back_to_back_prove_all_not_merged(self, batch):
        prover, tasks = batch
        prover.prove_all(tasks)
        _, stats = prover.prove_all(tasks[:1])
        assert stats.proofs_generated == 1
        assert len(stats.per_proof_seconds) == 1
