"""Tests for univariate polynomials and Lagrange interpolation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FieldError
from repro.field import (
    DEFAULT_FIELD,
    Polynomial,
    barycentric_weights,
    evaluate_from_points,
    interpolate_on_range,
    lagrange_interpolate,
    vanishing_polynomial,
)

F = DEFAULT_FIELD
coeff_lists = st.lists(
    st.integers(min_value=0, max_value=F.modulus - 1), min_size=1, max_size=8
)


class TestPolynomialBasics:
    def test_trims_leading_zeros(self):
        assert Polynomial(F, [1, 2, 0, 0]).coeffs == [1, 2]

    def test_zero_polynomial(self):
        z = Polynomial.zero(F)
        assert z.is_zero() and z.degree == 0

    def test_monomial(self):
        m = Polynomial.monomial(F, 3, 5)
        assert m.coeffs == [0, 0, 0, 5]
        assert m(2) == 40

    def test_horner_evaluation(self):
        poly = Polynomial(F, [1, 2, 3])  # 1 + 2x + 3x^2
        assert poly(5) == 1 + 10 + 75

    def test_random_has_requested_degree(self, rng):
        assert Polynomial.random(F, 5, rng).degree == 5


class TestPolynomialArithmetic:
    @given(a=coeff_lists, b=coeff_lists)
    @settings(max_examples=40)
    def test_add_evaluates_pointwise(self, a, b):
        pa, pb = Polynomial(F, a), Polynomial(F, b)
        x = 123456789
        assert (pa + pb)(x) == F.add(pa(x), pb(x))

    @given(a=coeff_lists, b=coeff_lists)
    @settings(max_examples=40)
    def test_mul_evaluates_pointwise(self, a, b):
        pa, pb = Polynomial(F, a), Polynomial(F, b)
        x = 987654321
        assert (pa * pb)(x) == F.mul(pa(x), pb(x))

    @given(a=coeff_lists)
    @settings(max_examples=40)
    def test_sub_self_is_zero(self, a):
        pa = Polynomial(F, a)
        assert (pa - pa).is_zero()

    def test_scale(self):
        assert Polynomial(F, [1, 2]).scale(3).coeffs == [3, 6]

    def test_divmod_reconstructs(self, rng):
        a = Polynomial.random(F, 7, rng)
        b = Polynomial.random(F, 3, rng)
        q, r = a.divmod(b)
        assert (q * b + r).coeffs == a.coeffs
        assert r.degree < b.degree

    def test_divide_by_zero_raises(self):
        with pytest.raises(FieldError):
            Polynomial(F, [1]).divmod(Polynomial.zero(F))

    def test_compose_affine(self, rng):
        poly = Polynomial.random(F, 4, rng)
        a, b, x = 3, 7, 11
        assert poly.compose_affine(a, b)(x) == poly((a * x + b) % F.modulus)

    def test_shift(self):
        assert Polynomial(F, [1, 2]).shift(2).coeffs == [0, 0, 1, 2]


class TestLagrange:
    def test_interpolates_exactly(self, rng):
        xs = [0, 1, 2, 3, 4]
        ys = F.rand_vector(5, rng)
        poly = lagrange_interpolate(F, xs, ys)
        assert poly.degree <= 4
        assert [poly(x) for x in xs] == ys

    def test_recovers_known_polynomial(self, rng):
        poly = Polynomial.random(F, 6, rng)
        xs = list(range(7))
        ys = [poly(x) for x in xs]
        assert lagrange_interpolate(F, xs, ys) == poly

    def test_duplicate_points_raise(self):
        with pytest.raises(FieldError):
            lagrange_interpolate(F, [1, 1], [2, 3])

    def test_length_mismatch_raises(self):
        with pytest.raises(FieldError):
            lagrange_interpolate(F, [1, 2], [3])

    def test_evaluate_from_points_matches_interpolation(self, rng):
        xs = [0, 1, 2, 3]
        ys = F.rand_vector(4, rng)
        x = rng.randrange(F.modulus)
        poly = lagrange_interpolate(F, xs, ys)
        assert evaluate_from_points(F, xs, ys, x) == poly(x)

    def test_interpolate_on_range(self, rng):
        ys = F.rand_vector(5, rng)
        poly = interpolate_on_range(F, ys)
        assert [poly(i) for i in range(5)] == ys

    def test_vanishing_polynomial_vanishes(self, rng):
        xs = F.rand_vector(4, rng)
        van = vanishing_polynomial(F, xs)
        assert all(van(x) == 0 for x in xs)
        assert van.degree == 4

    def test_barycentric_weights(self):
        xs = [0, 1, 2]
        ws = barycentric_weights(F, xs)
        # w_0 = 1/((0-1)(0-2)) = 1/2
        assert F.mul(ws[0], 2) == 1
