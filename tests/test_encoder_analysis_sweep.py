"""Tests for the encoder audit tools and the simulator sweeps."""

import pytest

from repro.encoder import (
    SpielmanEncoder,
    audit,
    expansion_profile,
    rate_summary,
    sample_min_weight,
)
from repro.errors import EncodingError, SimulationError
from repro.field import DEFAULT_FIELD
from repro.gpu import (
    batch_amortization_curve,
    device_scaling_curve,
    get_gpu,
    monotone_nondecreasing,
    monotone_nonincreasing,
    size_speedup_curve,
    thread_scaling_curve,
)
from repro.pipeline import merkle_graph, sumcheck_graph

F = DEFAULT_FIELD
GH200 = get_gpu("GH200")


@pytest.fixture(scope="module")
def encoder():
    return SpielmanEncoder(F, 512, seed=2)


class TestEncoderAnalysis:
    def test_profile_covers_all_stages(self, encoder):
        profile = expansion_profile(encoder)
        assert len(profile) == 2 * encoder.num_stages
        assert {s.kind for s in profile} == {"A", "B"}

    def test_nnz_consistent(self, encoder):
        profile = expansion_profile(encoder)
        base_nnz = encoder.base_matrix.nnz
        assert sum(s.nnz for s in profile) + base_nnz == encoder.total_nnz()

    def test_degrees_sane(self, encoder):
        for s in expansion_profile(encoder):
            assert 0 <= s.min_col_degree <= s.mean_col_degree <= s.max_col_degree
            assert s.isolated_columns >= 0

    def test_min_weight_healthy(self, encoder):
        """A healthy expander spreads a 1-sparse message widely."""
        weight = sample_min_weight(encoder, trials=20, sparsity=1)
        assert weight >= 9  # 1 systematic symbol + >= row_weight parity

    def test_min_weight_at_least_sparsity(self, encoder):
        assert sample_min_weight(encoder, trials=10, sparsity=3) >= 3

    def test_zero_trials_rejected(self, encoder):
        with pytest.raises(EncodingError):
            sample_min_weight(encoder, trials=0)

    def test_rate_summary(self, encoder):
        rs = rate_summary(encoder)
        assert rs.rate == pytest.approx(0.5)
        assert 8 < rs.macs_per_symbol < 25

    def test_audit_report(self, encoder):
        report = audit(encoder, trials=5)
        assert report["min_weight_1sparse"] >= 2
        assert report["isolated_columns_total"] >= 0
        assert report["rate"].stages == encoder.num_stages


class TestSweeps:
    def test_batch_amortization_decreases(self):
        graph = merkle_graph(1 << 14)
        xs, series = batch_amortization_curve(GH200, graph)
        assert monotone_nonincreasing(series["amortized_seconds"])
        # Amortized time converges toward the steady beat.
        assert series["amortized_seconds"][-1] == pytest.approx(
            series["steady_beat_seconds"][-1], rel=0.35
        )

    def test_thread_scaling_increases(self):
        graph = sumcheck_graph(16)
        xs, series = thread_scaling_curve(GH200, graph)
        assert monotone_nondecreasing(series["throughput_per_second"])
        # Doubling threads from half to full helps substantially.
        assert series["throughput_per_second"][-1] > 1.5 * series[
            "throughput_per_second"
        ][0]

    def test_size_speedup_widens_for_small_inputs(self):
        xs, series = size_speedup_curve(
            GH200, lambda lg: merkle_graph(1 << lg), log_sizes=(14, 18, 22)
        )
        assert monotone_nonincreasing(series["speedup"])  # vs growing size
        assert series["speedup"][0] > series["speedup"][-1]

    def test_device_scaling(self):
        xs, series = device_scaling_curve(lambda dev: merkle_graph(1 << 18))
        # Faster devices (larger cores*clock*scale) give more throughput.
        paired = sorted(zip(xs, series["throughput_per_second"]))
        assert monotone_nondecreasing([t for _, t in paired])

    def test_monotone_helpers(self):
        assert monotone_nondecreasing([1, 1, 2])
        assert not monotone_nondecreasing([2, 1])
        assert monotone_nonincreasing([3, 2, 2])
        with pytest.raises(SimulationError):
            monotone_nondecreasing([])
