"""SHA-256 against FIPS vectors, hashlib cross-check, and hasher registry."""

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import HashError
from repro.hashing import (
    DIGEST_SIZE,
    Sha256,
    available_hashers,
    compress_block,
    get_hasher,
    sha256,
)


class TestFipsVectors:
    """Known-answer tests from FIPS 180-4 / NIST examples."""

    def test_empty(self):
        assert (
            sha256(b"").hex()
            == "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        )

    def test_abc(self):
        assert (
            sha256(b"abc").hex()
            == "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        )

    def test_two_block_message(self):
        msg = b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
        assert (
            sha256(msg).hex()
            == "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        )

    def test_million_a(self):
        assert (
            sha256(b"a" * 1_000_000).hex()
            == "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        )


class TestAgainstHashlib:
    @given(data=st.binary(max_size=300))
    @settings(max_examples=60)
    def test_matches_hashlib(self, data):
        assert sha256(data) == hashlib.sha256(data).digest()

    @pytest.mark.parametrize("size", [0, 1, 55, 56, 63, 64, 65, 127, 128, 1000])
    def test_padding_boundaries(self, size):
        data = bytes(range(256)) * (size // 256 + 1)
        data = data[:size]
        assert sha256(data) == hashlib.sha256(data).digest()


class TestStreaming:
    def test_chunked_update_equals_oneshot(self):
        h = Sha256()
        for chunk in (b"hello ", b"wor", b"ld", b"!"):
            h.update(chunk)
        assert h.digest() == sha256(b"hello world!")

    def test_digest_is_idempotent(self):
        h = Sha256(b"data")
        assert h.digest() == h.digest()

    def test_update_after_digest(self):
        h = Sha256(b"ab")
        _ = h.digest()
        h.update(b"c")
        assert h.digest() == sha256(b"abc")

    def test_copy_independent(self):
        h = Sha256(b"ab")
        clone = h.copy()
        h.update(b"c")
        assert clone.digest() == sha256(b"ab")
        assert h.digest() == sha256(b"abc")

    def test_rejects_str(self):
        with pytest.raises(HashError):
            Sha256().update("not bytes")  # type: ignore[arg-type]

    def test_hexdigest(self):
        assert Sha256(b"abc").hexdigest() == sha256(b"abc").hex()


class TestCompressBlock:
    def test_requires_exactly_64_bytes(self):
        with pytest.raises(HashError):
            compress_block(b"\x00" * 63)
        with pytest.raises(HashError):
            compress_block(b"\x00" * 65)

    def test_returns_32_bytes(self):
        assert len(compress_block(b"\x00" * 64)) == 32

    def test_deterministic_and_sensitive(self):
        a = compress_block(b"\x01" * 64)
        assert a == compress_block(b"\x01" * 64)
        assert a != compress_block(b"\x01" * 63 + b"\x02")

    def test_differs_from_padded_hash(self):
        """Raw compression must not equal the padded SHA-256 of the block
        (domain separation between leaves and interior nodes)."""
        block = b"\x07" * 64
        assert compress_block(block) != sha256(block)


class TestHasherRegistry:
    def test_available(self):
        assert set(available_hashers()) >= {"sha256", "sha256-hw", "quick"}

    def test_unknown_raises(self):
        with pytest.raises(HashError):
            get_hasher("md5")

    def test_scratch_and_hw_agree(self):
        scratch = get_hasher("sha256")
        hw = get_hasher("sha256-hw")
        data = b"cross-check"
        assert scratch.hash_bytes(data) == hw.hash_bytes(data)
        left, right = b"\x01" * 32, b"\x02" * 32
        assert scratch.compress(left, right) == hw.compress(left, right)

    def test_compress_validates_digest_size(self):
        h = get_hasher("sha256")
        with pytest.raises(HashError):
            h.compress(b"\x00" * 31, b"\x00" * 32)

    def test_quick_hasher_properties(self):
        q = get_hasher("quick")
        assert len(q.hash_bytes(b"x")) == DIGEST_SIZE
        assert q.hash_bytes(b"x") == q.hash_bytes(b"x")
        assert q.hash_bytes(b"x") != q.hash_bytes(b"y")

    @given(data=st.binary(max_size=128))
    @settings(max_examples=30)
    def test_quick_no_trivial_collisions_with_suffix(self, data):
        q = get_hasher("quick")
        assert q.hash_bytes(data) != q.hash_bytes(data + b"\x00")
