"""Experiment-runner tests (S29): registry, guards, result schema,
artifact dirs, the cross-run ledger, and the `repro experiment` CLI."""

import json
import math

import pytest

from repro.errors import ExperimentError
from repro.experiments import (
    RESULT_SCHEMA_VERSION,
    ExperimentResult,
    ExperimentSpec,
    Guard,
    Ledger,
    RunSession,
    available_experiments,
    execute_spec,
    get_experiment,
    register_experiment,
    select_experiments,
    validate_result,
)
from repro.experiments.cli import main as experiment_cli
from repro.experiments.registry import (
    KNOWN_SUITES,
    _REGISTRY,
    _reset_registry_for_tests,
)
from repro.experiments.report import (
    PAPER_EXPERIMENTS,
    md_table,
    render_experiments_md,
    render_run_report,
)


@pytest.fixture
def clean_registry():
    """An empty registry; the catalog is restored afterwards."""
    snapshot = _reset_registry_for_tests()
    try:
        yield
    finally:
        _REGISTRY.clear()
        _REGISTRY.update(snapshot)


def _toy_spec(name="toy", value=2.0, threshold=1.5, **kw):
    return ExperimentSpec(
        name=name,
        description="toy experiment",
        runner=lambda params: {"value": value, "extra": params.get("extra", 0)},
        tags=kw.pop("tags", ("extension",)),
        guards=kw.pop(
            "guards",
            (Guard(name="floor", metric="value", op=">=",
                   threshold=threshold),),
        ),
        **kw,
    )


# -- registry -----------------------------------------------------------------


def test_registry_round_trip(clean_registry):
    spec = _toy_spec()
    register_experiment(spec)
    assert available_experiments() == ["toy"]
    assert get_experiment("toy") is spec
    assert get_experiment("  TOY ") is spec  # normalized lookup


def test_duplicate_registration_rejected(clean_registry):
    register_experiment(_toy_spec())
    with pytest.raises(ExperimentError, match="already registered"):
        register_experiment(_toy_spec())
    register_experiment(_toy_spec(), replace=True)  # explicit replace ok


def test_unknown_experiment_lists_names_and_suggests(clean_registry):
    register_experiment(_toy_spec("bench_hotpath"))
    register_experiment(_toy_spec("bench_pipeline"))
    with pytest.raises(ExperimentError) as err:
        get_experiment("bench_hotpat")
    message = str(err.value)
    assert "bench_hotpath" in message and "bench_pipeline" in message
    assert "did you mean 'bench_hotpath'?" in message


def test_select_experiments_by_suite_and_tags(clean_registry):
    register_experiment(_toy_spec("a", tags=("extension", "ci")))
    register_experiment(_toy_spec("b", tags=("paper", "paper-table", "ci")))
    register_experiment(_toy_spec("c", tags=("extension", "chaos")))
    assert [s.name for s in select_experiments(suite="all")] == ["a", "b", "c"]
    assert [s.name for s in select_experiments(suite="ci")] == ["a", "b"]
    assert [s.name for s in select_experiments(suite="chaos")] == ["c"]
    assert [s.name for s in select_experiments(tags=["extension"])] == [
        "a", "c"
    ]
    # explicit names + suite compose as a dedup'd union
    assert [s.name for s in select_experiments(names=["c"], suite="ci")] == [
        "c", "a", "b"
    ]
    with pytest.raises(ExperimentError, match="matches no experiments"):
        select_experiments(suite="nope")


def test_builtin_catalog_registers_everything():
    names = set(available_experiments())
    assert set(PAPER_EXPERIMENTS) <= names
    for bench in (
        "bench_hotpath", "bench_pipeline", "bench_cluster",
        "bench_resilience", "bench_service", "bench_backends",
        "bench_parallel_runtime", "bench_fleet",
    ):
        assert bench in names
    assert {s.name for s in select_experiments(suite="chaos")} == {
        "bench_resilience", "bench_fleet"
    }
    for suite in KNOWN_SUITES:
        assert select_experiments(suite=suite)


# -- guards & execution -------------------------------------------------------


def test_guard_evaluation_directions():
    higher = Guard(name="hi", metric="m", op=">=", threshold=2.0)
    assert higher.evaluate({"m": 2.5}).passed
    assert not higher.evaluate({"m": 1.5}).passed
    assert higher.direction == "higher"
    lower = Guard(name="lo", metric="m", op="<=", threshold=2.0)
    assert lower.evaluate({"m": 1.5}).passed
    assert not lower.evaluate({"m": 2.5}).passed
    assert lower.direction == "lower"
    with pytest.raises(ExperimentError, match="op must be"):
        Guard(name="bad", metric="m", op="==", threshold=1.0)


def test_guard_missing_metric_fails_closed():
    guard = Guard(name="g", metric="missing", op=">=", threshold=1.0)
    verdict = guard.evaluate({})
    assert verdict.enforced and not verdict.passed
    assert "missing" in verdict.detail


def test_guard_precondition_gates_enforcement():
    guard = Guard(
        name="scaling", metric="ratio", op=">=", threshold=1.6,
        precondition=("host_cores", ">=", 2),
    )
    single = guard.evaluate({"ratio": 0.5, "host_cores": 1})
    assert single.passed and not single.enforced
    multi = guard.evaluate({"ratio": 0.5, "host_cores": 4})
    assert not multi.passed and multi.enforced


def test_execute_spec_statuses_and_overrides(clean_registry):
    spec = _toy_spec(value=2.0, threshold=1.5)
    ok = execute_spec(spec, git_rev="aaa111")
    assert ok.status == "ok" and ok.ok
    assert ok.metrics["value"] == 2.0
    assert ok.git_rev == "aaa111"

    failed = execute_spec(spec, guard_overrides={"floor": 3.0})
    assert failed.status == "guard_failed"
    assert failed.guard_failures[0].threshold == 3.0

    with pytest.raises(ExperimentError, match="no guard named"):
        execute_spec(spec, guard_overrides={"flor": 3.0})

    def boom(params):
        raise RuntimeError("kaput")

    err = execute_spec(
        ExperimentSpec(name="boom", description="x", runner=boom)
    )
    assert err.status == "error" and "kaput" in err.error


def test_quick_params_overlay_and_param_overrides():
    spec = ExperimentSpec(
        name="p",
        description="params",
        runner=lambda params: dict(params),
        full_params={"gates": 100, "reps": 3},
        quick_params={"gates": 10},
    )
    assert spec.params_for(quick=False) == {"gates": 100, "reps": 3}
    assert spec.params_for(quick=True) == {"gates": 10, "reps": 3}
    assert spec.params_for(quick=True, overrides={"reps": 1}) == {
        "gates": 10, "reps": 1,
    }


def test_metric_extraction_filters_non_numeric():
    spec = ExperimentSpec(
        name="m",
        description="metrics",
        runner=lambda params: {},
    )
    payload = {
        "speedup": 2.0, "count": 3, "flag": True, "label": "x",
        "inf": float("inf"), "rows": [1, 2], "none": None,
    }
    assert spec.extract_metrics(payload) == {"speedup": 2.0, "count": 3.0}


# -- result schema ------------------------------------------------------------


def test_result_schema_round_trip(clean_registry):
    result = execute_spec(_toy_spec(), git_rev="cafe12")
    data = result.to_dict()
    validate_result(data)  # no raise
    back = ExperimentResult.from_dict(json.loads(json.dumps(data)))
    assert back.name == result.name
    assert back.metrics == result.metrics
    assert back.guards[0].passed == result.guards[0].passed


def test_validate_result_rejects_malformed():
    good = {
        "schema_version": RESULT_SCHEMA_VERSION,
        "name": "x", "status": "ok", "params": {}, "metrics": {},
        "data": {}, "guards": [], "git_rev": "r", "host": {},
        "started_at": 0.0, "duration_seconds": 0.0,
    }
    validate_result(good)
    for mutation, match in (
        ({"schema_version": 99}, "schema_version"),
        ({"status": "meh"}, "status"),
        ({"metrics": {"m": "fast"}}, "must be numeric"),
        ({"guards": [{"nope": 1}]}, "guard verdict"),
    ):
        bad = dict(good, **mutation)
        with pytest.raises(ExperimentError, match=match):
            validate_result(bad)
    with pytest.raises(ExperimentError, match="missing required key"):
        validate_result({k: v for k, v in good.items() if k != "metrics"})


# -- run session / artifact dir ----------------------------------------------


def test_run_session_writes_artifacts(clean_registry, tmp_path):
    register_experiment(_toy_spec())
    session = RunSession(
        quick=True,
        artifact_root=tmp_path / "artifacts",
        ledger_path=tmp_path / "ledger.sqlite",
        git_rev="abc123",
    )
    session.run_all(select_experiments(names=["toy"]))
    directory = session.finalize()

    manifest = json.loads((directory / "manifest.json").read_text())
    assert manifest["git_rev"] == "abc123"
    assert manifest["quick"] is True
    assert manifest["experiments"][0]["name"] == "toy"
    assert manifest["experiments"][0]["result_file"] == "toy.json"

    stored = json.loads((directory / "toy.json").read_text())
    validate_result(stored)

    report = (directory / "report.md").read_text()
    assert "toy" in report and "floor" in report

    with Ledger(tmp_path / "ledger.sqlite") as ledger:
        assert ledger.run_ids() == [session.run_id]
        points = ledger.metrics_for_run(session.run_id)
        assert {p.metric for p in points} == {"value", "extra"}
        (value_point,) = [p for p in points if p.metric == "value"]
        assert value_point.direction == "higher"  # from the >= guard
    assert session.exit_code() == 0


def test_run_session_exit_codes(clean_registry, tmp_path):
    register_experiment(_toy_spec("fails", value=1.0, threshold=5.0))
    session = RunSession(
        artifact_root=tmp_path, use_ledger=False, git_rev="abc"
    )
    session.run_all(select_experiments(names=["fails"]))
    session.finalize()
    assert session.guard_failed and session.exit_code() == 2

    def boom(params):
        raise RuntimeError("dead")

    register_experiment(
        ExperimentSpec(name="dies", description="x", runner=boom)
    )
    session2 = RunSession(
        artifact_root=tmp_path, use_ledger=False, git_rev="abc"
    )
    session2.run_all(select_experiments(names=["dies"]))
    assert session2.errored and session2.exit_code() == 1


# -- ledger -------------------------------------------------------------------


def _fake_result(name, metrics, rev, directions_guarded=True, t=0.0):
    guards = []
    if directions_guarded:
        guards = [
            Guard(name=f"g_{m}", metric=m, op=">=", threshold=0.0).evaluate(
                metrics
            )
            for m in metrics
        ]
    return ExperimentResult(
        name=name, status="ok", params={}, metrics=dict(metrics), data={},
        guards=guards, git_rev=rev, host={}, started_at=t,
        duration_seconds=0.1,
    )


def _seed_ledger(path):
    """Three synthetic runs across fake revs; speedup dips in the third."""
    ledger = Ledger(path)
    runs = [
        ("run-1", "rev-aaa", {"speedup": 2.0, "throughput": 100.0}, 100.0),
        ("run-2", "rev-bbb", {"speedup": 2.2, "throughput": 110.0}, 200.0),
        ("run-3", "rev-ccc", {"speedup": 1.5, "throughput": 112.0}, 300.0),
    ]
    for run_id, rev, metrics, t in runs:
        ledger.record_run(run_id, git_rev=rev, quick=False, started_at=t)
        ledger.record_result(
            run_id, _fake_result("bench_x", metrics, rev, t=t)
        )
    return ledger


def test_ledger_history_and_compare(tmp_path):
    with _seed_ledger(tmp_path / "ledger.sqlite") as ledger:
        history = ledger.history("bench_x", "speedup")
        assert [p.value for p in history] == [2.0, 2.2, 1.5]
        assert [p.git_rev for p in history] == ["rev-aaa", "rev-bbb",
                                                "rev-ccc"]
        assert ledger.history("bench_x", "speedup", limit=2)[0].value == 2.2
        assert ledger.latest_run_id() == "run-3"
        assert ledger.run_for_rev("rev-b") == "run-2"  # prefix match

        deltas = ledger.compare()  # run-2 → run-3
        by_metric = {d.metric: d for d in deltas}
        assert math.isclose(
            by_metric["speedup"].change_fraction, (1.5 - 2.2) / 2.2
        )
        assert by_metric["speedup"].is_regression(0.05)
        assert not by_metric["throughput"].is_regression(0.05)


def test_ledger_regressions_since_rev(tmp_path):
    with _seed_ledger(tmp_path / "ledger.sqlite") as ledger:
        regressed = ledger.regressions(since_rev="rev-aaa")
        assert [d.metric for d in regressed] == ["speedup"]
        assert regressed[0].baseline_value == 2.0
        assert regressed[0].latest_value == 1.5
        # generous tolerance absorbs the dip
        assert ledger.regressions(since_rev="rev-aaa", tolerance=0.5) == []
        with pytest.raises(ExperimentError, match="no recorded run"):
            ledger.regressions(since_rev="rev-zzz")


def test_ledger_direction_awareness(tmp_path):
    with Ledger(tmp_path / "ledger.sqlite") as ledger:
        for run_id, rev, latency, t in (
            ("r1", "a", 10.0, 1.0), ("r2", "b", 20.0, 2.0)
        ):
            ledger.record_run(run_id, git_rev=rev, started_at=t)
            result = _fake_result(
                "svc", {"latency": latency}, rev, directions_guarded=False,
                t=t,
            )
            ledger.record_result(
                run_id, result, directions={"latency": "lower"}
            )
        (delta,) = ledger.compare()
        assert delta.direction == "lower"
        assert delta.is_regression(0.05)  # latency doubled = worse


def test_ledger_requires_recorded_run(tmp_path):
    with Ledger(tmp_path / "ledger.sqlite") as ledger:
        with pytest.raises(ExperimentError, match="record_run first"):
            ledger.record_result(
                "ghost", _fake_result("x", {"m": 1.0}, "rev")
            )


# -- report rendering ---------------------------------------------------------


def test_md_table_shape():
    table = md_table(["a", "b"], [[1, 2], ["x", "y"]])
    lines = table.splitlines()
    assert lines[0] == "| a | b |"
    assert lines[1] == "|---|---|"
    assert lines[3] == "| x | y |"


def test_render_run_report_flags_failures(clean_registry):
    register_experiment(_toy_spec("fails", value=1.0, threshold=5.0))
    result = execute_spec(get_experiment("fails"), git_rev="r1")
    report = render_run_report("run-x", [result], git_rev="r1")
    assert "**guard_failed**" in report
    assert "## Failures" in report
    assert "violates >= 5" in report


def test_render_experiments_md_requires_all_paper_results():
    with pytest.raises(ExperimentError, match="missing results"):
        render_experiments_md({})


def test_render_experiments_md_from_live_tables():
    results = {
        name: execute_spec(get_experiment(name), git_rev="test")
        for name in PAPER_EXPERIMENTS
    }
    body = render_experiments_md(results)
    assert body.startswith("# EXPERIMENTS — paper vs. measured")
    for heading in ("Table 3", "Table 7", "Table 11", "Figure 9"):
        assert heading in body
    assert "python -m repro experiment reproduce-all" in body


# -- CLI ----------------------------------------------------------------------


def test_cli_list_smoke(capsys):
    assert experiment_cli(["list"]) == 0
    out = capsys.readouterr().out
    assert "bench_hotpath" in out and "table3" in out


def test_cli_run_quick_paper_table(tmp_path, capsys):
    code = experiment_cli([
        "run", "table3", "--quick",
        "--out-dir", str(tmp_path / "artifacts"),
        "--ledger", str(tmp_path / "ledger.sqlite"),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "table3" in out and "artifacts:" in out
    run_dirs = [p for p in (tmp_path / "artifacts").iterdir() if p.is_dir()]
    assert len(run_dirs) == 1
    stored = json.loads((run_dirs[0] / "table3.json").read_text())
    validate_result(stored)
    assert stored["data"]["rows"]  # paper table rows present


def test_cli_guard_failure_exit_code(tmp_path):
    # An impossible threshold must exit 2 (guard regression).
    code = experiment_cli([
        "run", "bench_hotpath", "--quick",
        "--out-dir", str(tmp_path),
        "--no-ledger",
        "--guard", "min_speedup=1e9",
        "--param", "gates=256",
    ])
    assert code == 2


def test_cli_unknown_name_did_you_mean(tmp_path, capsys):
    code = experiment_cli([
        "run", "bench_hotpat", "--quick", "--out-dir", str(tmp_path),
        "--no-ledger",
    ])
    assert code == 1
    err = capsys.readouterr().err
    assert "did you mean 'bench_hotpath'?" in err


def test_cli_compare_detects_injected_regression(tmp_path, capsys):
    _seed_ledger(tmp_path / "ledger.sqlite").close()
    code = experiment_cli(
        ["compare", "--ledger", str(tmp_path / "ledger.sqlite")]
    )
    assert code == 2
    out = capsys.readouterr().out
    assert "REGRESSION" in out and "speedup" in out

    code = experiment_cli([
        "compare", "--ledger", str(tmp_path / "ledger.sqlite"),
        "--baseline", "run-1", "--latest", "run-2",
    ])
    assert code == 0


def test_cli_history(tmp_path, capsys):
    _seed_ledger(tmp_path / "ledger.sqlite").close()
    code = experiment_cli([
        "history", "bench_x", "speedup",
        "--ledger", str(tmp_path / "ledger.sqlite"),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "rev-aaa" in out and "rev-ccc" in out

    assert experiment_cli(
        ["history", "bench_x", "nope",
         "--ledger", str(tmp_path / "ledger.sqlite")]
    ) == 1


def test_cli_missing_ledger_is_helpful(tmp_path, capsys):
    code = experiment_cli(
        ["compare", "--ledger", str(tmp_path / "missing.sqlite")]
    )
    assert code == 1
    assert "no ledger" in capsys.readouterr().err
