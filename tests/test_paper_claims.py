"""The paper's headline claims, certified by plain pytest.

These duplicate the shape assertions of the benchmark suite so that
``pytest tests/`` alone is enough to check the reproduction's conclusions
(the benches additionally print the full tables).
"""

import pytest

from repro.baselines import ZKML_BASELINES, bellperson_times, orion_arkworks_times
from repro.bench import compute_breakdown
from repro.pipeline import BatchZkpSystem
from repro.zkml import simulate_vgg16_service, vgg16_cifar10


class TestAbstractClaims:
    """Claims from the paper's abstract and introduction."""

    def test_259x_over_gpu_systems(self):
        """'our system achieves more than 259.5x higher throughput compared
        to state-of-the-art GPU-accelerated systems' (abstract; the 259.5x
        is the V100 row of Table 8)."""
        ours = BatchZkpSystem("V100", scale=1 << 20).simulate(batch_size=512)
        bell = bellperson_times(1 << 20, "V100")
        speedup = ours.sim.steady_throughput_per_second * bell.total_seconds
        assert speedup > 250

    def test_subsecond_vgg16_proofs(self):
        """'our system generates 9.52 proofs per second … successfully
        achieving sub-second proof generation for the first time'."""
        res = simulate_vgg16_service(vgg16_cifar10(), device="GH200")
        amortized = 1.0 / res.sim.steady_throughput_per_second
        assert amortized < 1.0
        assert res.sim.steady_throughput_per_second == pytest.approx(9.52, rel=0.35)

    def test_vgg16_speedups_over_cpu_systems(self):
        """'458x faster than ZENO and 5601x faster than ZKML' — order of
        magnitude must hold."""
        res = simulate_vgg16_service(vgg16_cifar10(), device="GH200")
        thpt = res.sim.steady_throughput_per_second
        assert thpt / ZKML_BASELINES["ZENO"].throughput_per_second > 150
        assert thpt / ZKML_BASELINES["ZKML"].throughput_per_second > 2000


class TestSection63Claims:
    def test_speedup_over_same_module_cpu(self):
        """'more than 332.0x (up to 707.5x) over the CPU-based
        implementation that has the same computational modules'."""
        for lg in (18, 20, 21):
            ours = BatchZkpSystem("GH200", scale=1 << lg).simulate(batch_size=512)
            cpu = orion_arkworks_times(1 << lg)
            speedup = cpu.total_seconds / ours.sim.beat.overall_seconds
            assert speedup > 250, lg

    def test_breakdown_protocol_and_pipeline(self):
        """S = 2^20: protocol ~24x, pipeline ~15x (§6.3's decomposition)."""
        bd = compute_breakdown()
        assert bd["protocol_speedup"] == pytest.approx(24.34, rel=0.25)
        assert bd["pipeline_speedup"] == pytest.approx(14.70, rel=0.35)

    def test_lower_latency_than_bellperson_despite_pipelining(self):
        """'our work even achieves lower latency than Bellperson which
        utilizes old ZKP protocols' (Table 8 note)."""
        for dev in ("V100", "A100", "3090Ti", "H100"):
            ours = BatchZkpSystem(dev, scale=1 << 20).simulate(batch_size=512)
            bell = bellperson_times(1 << 20, dev)
            assert ours.latency_seconds < bell.total_seconds, dev


class TestResourceClaims:
    def test_device_memory_reduction(self):
        """Table 10: ours needs far less device memory than Bellperson."""
        from repro.baselines import bellperson_memory_gb

        for lg in (18, 20, 22):
            res = BatchZkpSystem("GH200", scale=1 << lg).simulate(batch_size=64)
            assert res.memory_high_water_gb < bellperson_memory_gb(1 << lg) / 3

    def test_communication_fully_hidden_when_compute_bound(self):
        """Table 9: 'no time is lost waiting for data transfer' on devices
        where computation exceeds communication."""
        for dev in ("V100", "A100", "H100"):
            res = BatchZkpSystem(dev, scale=1 << 20).simulate(batch_size=64)
            beat = res.sim.beat
            if beat.comp_seconds > beat.comm_seconds:
                overhead = beat.overall_seconds / beat.comp_seconds
                assert overhead < 1.05, dev

    def test_thread_allocation_tracks_module_cost(self):
        """§4: threads are split proportionally to module execution time."""
        system = BatchZkpSystem("V100", scale=1 << 20, total_threads=10240)
        alloc = system.thread_allocation()
        work = {
            name: graph.total_work_cycles()
            for name, graph in system.module_graphs.items()
        }
        total_work = sum(work.values())
        for name in alloc:
            share = alloc[name] / 10240
            ideal = work[name] / total_work
            assert share == pytest.approx(ideal, abs=0.06), name
