"""Merkle multiproof tests: correctness, dedup savings, tampering."""

import dataclasses
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MerkleError
from repro.hashing import get_hasher
from repro.merkle import (
    MerkleMultiProof,
    MerkleTree,
    individual_paths_size,
    open_multi,
)

HASHER = get_hasher("sha256-hw")


def make_tree(n=32, salt=0):
    return MerkleTree.from_blocks(
        [bytes([i % 256, salt]) * 32 for i in range(n)], HASHER
    )


class TestCorrectness:
    @pytest.mark.parametrize(
        "indices",
        [[0], [31], [0, 31], [3, 4, 5], [0, 1, 2, 3], list(range(32)), [7, 7, 7]],
    )
    def test_verifies(self, indices):
        tree = make_tree()
        proof = open_multi(tree, indices)
        assert proof.verify(tree.root, HASHER)

    def test_single_leaf_tree(self):
        tree = MerkleTree.from_blocks([b"\x01" * 64], HASHER)
        proof = open_multi(tree, [0])
        assert proof.verify(tree.root, HASHER)
        assert proof.nodes == ()

    def test_all_leaves_needs_no_nodes(self):
        tree = make_tree(8)
        proof = open_multi(tree, range(8))
        assert proof.nodes == ()
        assert proof.verify(tree.root, HASHER)

    def test_opens_correct_leaves(self):
        tree = make_tree()
        proof = open_multi(tree, [5, 9])
        assert proof.leaves == (tree.layers[0][5], tree.layers[0][9])

    @given(
        indices=st.lists(
            st.integers(min_value=0, max_value=31), min_size=1, max_size=12
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_property_arbitrary_sets(self, indices):
        tree = make_tree()
        proof = open_multi(tree, indices)
        assert proof.verify(tree.root, HASHER)

    def test_adjacent_leaves_share_everything_above_level0(self):
        tree = make_tree(16)
        proof = open_multi(tree, [6, 7])
        # Siblings of each other: only the 3 upper nodes are needed.
        assert len(proof.nodes) == 3


class TestSavings:
    def test_smaller_than_individual_paths(self):
        tree = make_tree(64)
        rng = random.Random(1)
        indices = rng.sample(range(64), 16)
        proof = open_multi(tree, indices)
        assert proof.size_bytes() < individual_paths_size(tree, indices)

    def test_savings_grow_with_batch(self):
        tree = make_tree(64)
        small = open_multi(tree, [0, 1])
        large = open_multi(tree, list(range(16)))
        ratio_small = small.size_bytes() / individual_paths_size(tree, [0, 1])
        ratio_large = large.size_bytes() / individual_paths_size(
            tree, list(range(16))
        )
        assert ratio_large < ratio_small


class TestRejection:
    def test_wrong_root(self):
        tree = make_tree()
        proof = open_multi(tree, [1, 2])
        assert not proof.verify(b"\x00" * 32, HASHER)

    def test_tampered_leaf(self):
        tree = make_tree()
        proof = open_multi(tree, [1, 2])
        bad = dataclasses.replace(
            proof, leaves=(b"\x13" * 32,) + proof.leaves[1:]
        )
        assert not bad.verify(tree.root, HASHER)

    def test_tampered_node(self):
        tree = make_tree()
        proof = open_multi(tree, [1, 2])
        assert proof.nodes
        bad = dataclasses.replace(
            proof, nodes=(b"\x13" * 32,) + proof.nodes[1:]
        )
        assert not bad.verify(tree.root, HASHER)

    def test_missing_node(self):
        tree = make_tree()
        proof = open_multi(tree, [1, 2])
        bad = dataclasses.replace(proof, nodes=proof.nodes[:-1])
        assert not bad.verify(tree.root, HASHER)

    def test_extra_node(self):
        tree = make_tree()
        proof = open_multi(tree, [1, 2])
        bad = dataclasses.replace(proof, nodes=proof.nodes + (b"\x00" * 32,))
        assert not bad.verify(tree.root, HASHER)

    def test_swapped_indices(self):
        """Moving an opened leaf to a different index must fail."""
        tree = make_tree()
        proof = open_multi(tree, [1, 2])
        bad = dataclasses.replace(proof, indices=(1, 3))
        assert not bad.verify(tree.root, HASHER)

    def test_cross_tree(self):
        a, b = make_tree(salt=0), make_tree(salt=1)
        proof = open_multi(a, [4, 8])
        assert not proof.verify(b.root, HASHER)

    def test_empty_rejected(self):
        tree = make_tree()
        with pytest.raises(MerkleError):
            open_multi(tree, [])

    def test_out_of_range_rejected(self):
        tree = make_tree(8)
        with pytest.raises(MerkleError):
            open_multi(tree, [8])
