"""API-doc generator tests: completeness and __all__ hygiene."""

import importlib

import pytest

from repro.bench.apidoc import SUBPACKAGES, document_module, generate_api_markdown


class TestAllHygiene:
    """Every name in every __all__ must resolve — the generator doubles as
    an export linter."""

    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_all_names_resolve(self, module_name):
        module = importlib.import_module(module_name)
        exported = getattr(module, "__all__", [])
        assert exported, f"{module_name} has no __all__"
        for name in exported:
            assert hasattr(module, name), f"{module_name}.{name} missing"

    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_no_duplicate_exports(self, module_name):
        module = importlib.import_module(module_name)
        exported = getattr(module, "__all__", [])
        assert len(exported) == len(set(exported))

    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_public_classes_have_docstrings(self, module_name):
        import inspect

        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            obj = getattr(module, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                assert inspect.getdoc(obj), f"{module_name}.{name} lacks a docstring"


class TestGenerator:
    def test_every_subpackage_sectioned(self):
        text = generate_api_markdown()
        for name in SUBPACKAGES:
            assert f"## `{name}`" in text

    def test_document_module_table_shape(self):
        text = document_module("repro.merkle")
        assert "| symbol | kind | summary |" in text
        assert "`MerkleTree`" in text

    def test_markdown_has_no_unescaped_pipes_in_summaries(self):
        text = generate_api_markdown()
        for line in text.splitlines():
            if line.startswith("|") and not line.startswith("|---"):
                # A table row must have exactly 3 cells.
                assert line.count("|") - line.count("\\|") == 4, line
