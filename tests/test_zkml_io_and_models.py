"""LeNet model, weight persistence, and proof-bundle tests."""

import numpy as np
import pytest

from repro.core import (
    BatchProver,
    ProofTask,
    SnarkProver,
    SnarkVerifier,
    deserialize_proof_bundle,
    make_pcs,
    random_circuit,
    serialize_proof_bundle,
    verify_all,
)
from repro.errors import ProofError, ZkmlError
from repro.field import DEFAULT_FIELD
from repro.zkml import (
    lenet_cifar10,
    load_weights,
    random_input,
    save_weights,
    tiny_cnn,
    vgg16_cifar10,
)

F = DEFAULT_FIELD


class TestLenet:
    def test_structure(self):
        m = lenet_cifar10()
        assert m.input_shape == (3, 32, 32)
        assert m._shapes[-1] == (10,)

    def test_forward_runs(self):
        m = lenet_cifar10()
        m.init_params(0)
        out = m.forward(random_input(m.input_shape, seed=1))
        assert out.shape == (10,)

    def test_gate_count_between_tiny_and_vgg(self):
        tiny = tiny_cnn().gate_count()
        lenet = lenet_cifar10().gate_count()
        vgg = vgg16_cifar10().gate_count()
        assert tiny < lenet < vgg

    def test_gate_accounting_dominated_by_rescale(self):
        """The RESCALE_BITS range proofs dominate, as in VGG-16."""
        m = lenet_cifar10()
        per_layer = dict(m.per_layer_gates())
        assert per_layer["conv1"] > per_layer["fc3"]


class TestWeightPersistence:
    def test_roundtrip(self, tmp_path):
        m = tiny_cnn()
        m.init_params(3)
        x = random_input(m.input_shape, seed=4)
        before = m.forward(x).values.copy()
        path = str(tmp_path / "weights.npz")
        save_weights(m, path)

        fresh = tiny_cnn()
        fresh.init_params(99)  # different weights
        assert not np.array_equal(fresh.forward(x).values, before)
        load_weights(fresh, path)
        assert np.array_equal(fresh.forward(x).values, before)

    def test_commitment_root_restored(self, tmp_path):
        from repro.zkml import MlaasService

        m = tiny_cnn()
        m.init_params(5)
        root = MlaasService(m).model_root
        path = str(tmp_path / "w.npz")
        save_weights(m, path)
        clone = tiny_cnn()
        clone.init_params(6)
        load_weights(clone, path)
        assert MlaasService(clone).model_root == root

    def test_frac_bits_preserved(self, tmp_path):
        from repro.zkml import QuantizedTensor

        m = tiny_cnn()
        m.init_params(0)
        m.layers[0].weights = QuantizedTensor.from_float(
            m.layers[0].weights.to_float(), frac_bits=12
        )
        path = str(tmp_path / "w.npz")
        save_weights(m, path)
        clone = tiny_cnn()
        clone.init_params(1)
        load_weights(clone, path)
        assert clone.layers[0].weights.frac_bits == 12

    def test_unparameterized_model_rejected(self, tmp_path):
        from repro.zkml import Flatten, SequentialModel

        m = SequentialModel([Flatten()], input_shape=(1, 2, 2))
        with pytest.raises(ZkmlError):
            save_weights(m, str(tmp_path / "x.npz"))


class TestProofBundle:
    @pytest.fixture(scope="class")
    def setting(self):
        cc = random_circuit(F, 24, seed=81)
        pcs = make_pcs(F, cc.r1cs, num_col_checks=4)
        prover = SnarkProver(cc.r1cs, pcs, public_indices=cc.public_indices)
        verifier = SnarkVerifier(cc.r1cs, pcs, public_indices=cc.public_indices)
        tasks = [ProofTask(i, cc.witness, cc.public_values) for i in range(3)]
        proofs, _ = BatchProver(prover).prove_all(tasks)
        return cc, pcs, verifier, tasks, proofs

    def test_roundtrip(self, setting):
        cc, pcs, verifier, tasks, proofs = setting
        blob = serialize_proof_bundle(proofs, F)
        again = deserialize_proof_bundle(blob, F, pcs.params)
        assert len(again) == 3
        assert verify_all(verifier, again, tasks)

    def test_empty_bundle(self, setting):
        _, pcs, _, _, _ = setting
        blob = serialize_proof_bundle([], F)
        assert deserialize_proof_bundle(blob, F, pcs.params) == []

    def test_truncated_bundle(self, setting):
        _, pcs, _, _, proofs = setting
        blob = serialize_proof_bundle(proofs, F)
        with pytest.raises(ProofError):
            deserialize_proof_bundle(blob[:-10], F, pcs.params)

    def test_bad_magic(self, setting):
        _, pcs, _, _, proofs = setting
        blob = b"NOPE" + serialize_proof_bundle(proofs, F)[4:]
        with pytest.raises(ProofError):
            deserialize_proof_bundle(blob, F, pcs.params)

    def test_bundle_smaller_than_sum_plus_overhead(self, setting):
        from repro.core import serialize_proof

        _, _, _, _, proofs = setting
        bundle = serialize_proof_bundle(proofs, F)
        individual = sum(len(serialize_proof(p, F)) for p in proofs)
        assert individual < len(bundle) <= individual + 12 + 4 * len(proofs)
