"""Baseline tests: NTT, curve/MSM, Groth-like pipeline, vendor models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    BELLPERSON_DEVICE_FACTOR,
    EllipticCurve,
    GOLDILOCKS_FIELD,
    GrothLikeProver,
    GrothWorkload,
    NTT,
    OURS_ACCURACY_PERCENT,
    SECP256K1,
    ZKML_BASELINES,
    bellperson_memory_gb,
    bellperson_times,
    groth_memory_bytes,
    libsnark_times,
    msm_naive,
    msm_pippenger,
    msm_work_units,
    ntt_work_units,
    orion_arkworks_times,
    polymul_ntt,
    root_of_unity,
    two_adicity,
)
from repro.errors import FieldError, SimulationError

P = GOLDILOCKS_FIELD.modulus


class TestNTT:
    def test_two_adicity_goldilocks(self):
        assert two_adicity(P) == 32

    def test_root_of_unity_has_exact_order(self):
        for k in (1, 2, 8, 16):
            w = root_of_unity(GOLDILOCKS_FIELD, 1 << k, 7)
            assert pow(w, 1 << k, P) == 1
            assert pow(w, 1 << (k - 1), P) != 1

    def test_root_of_unity_invalid_order(self):
        with pytest.raises(FieldError):
            root_of_unity(GOLDILOCKS_FIELD, 3, 7)

    @pytest.mark.parametrize("size", [2, 4, 16, 64, 256])
    def test_forward_inverse_roundtrip(self, size, rng):
        ntt = NTT(size)
        data = [rng.randrange(P) for _ in range(size)]
        assert ntt.inverse(ntt.forward(data)) == data

    def test_forward_is_evaluation(self):
        """NTT of coefficients = evaluations at powers of omega."""
        ntt = NTT(8)
        coeffs = [3, 1, 4, 1, 5, 9, 2, 6]
        evals = ntt.forward(coeffs)
        for k in range(8):
            x = pow(ntt.omega, k, P)
            want = sum(c * pow(x, i, P) for i, c in enumerate(coeffs)) % P
            assert evals[k] == want

    def test_linearity(self, rng):
        ntt = NTT(16)
        a = [rng.randrange(P) for _ in range(16)]
        b = [rng.randrange(P) for _ in range(16)]
        s = [(x + y) % P for x, y in zip(a, b)]
        want = [(x + y) % P for x, y in zip(ntt.forward(a), ntt.forward(b))]
        assert ntt.forward(s) == want

    @given(
        a=st.lists(st.integers(0, P - 1), min_size=1, max_size=12),
        b=st.lists(st.integers(0, P - 1), min_size=1, max_size=12),
    )
    @settings(max_examples=20, deadline=None)
    def test_polymul_matches_schoolbook(self, a, b):
        ref = [0] * (len(a) + len(b) - 1)
        for i, x in enumerate(a):
            for j, y in enumerate(b):
                ref[i + j] = (ref[i + j] + x * y) % P
        assert polymul_ntt(a, b) == ref

    def test_invalid_size(self):
        with pytest.raises(FieldError):
            NTT(3)

    def test_work_units(self):
        assert ntt_work_units(8) == 4 * 3


class TestCurve:
    @pytest.fixture(scope="class")
    def curve(self):
        return EllipticCurve(SECP256K1)

    def test_generator_on_curve(self, curve):
        assert curve.is_on_curve(curve.generator)

    def test_identity_laws(self, curve):
        g = curve.generator
        assert curve.add(g, None) == g
        assert curve.add(None, g) == g
        assert curve.add(g, curve.neg(g)) is None

    def test_add_commutes(self, curve):
        g = curve.generator
        g2 = curve.double(g)
        assert curve.add(g, g2) == curve.add(g2, g)

    def test_add_associates(self, curve):
        g = curve.generator
        g2, g3 = curve.double(g), curve.scalar_mul(3, g)
        assert curve.add(curve.add(g, g2), g3) == curve.add(g, curve.add(g2, g3))

    def test_scalar_mul_matches_repeated_add(self, curve):
        g = curve.generator
        acc = None
        for k in range(1, 8):
            acc = curve.add(acc, g)
            assert curve.scalar_mul(k, g) == acc

    def test_order_annihilates(self, curve):
        assert curve.scalar_mul(curve.params.order, curve.generator) is None

    def test_results_stay_on_curve(self, curve, rng):
        pt = curve.scalar_mul(rng.randrange(1, 1 << 64), curve.generator)
        assert curve.is_on_curve(pt)

    def test_random_points_on_curve(self, curve):
        for pt in curve.random_points(5, seed=3):
            assert curve.is_on_curve(pt)

    def test_random_points_deterministic(self, curve):
        assert curve.random_points(3, seed=1) == curve.random_points(3, seed=1)


class TestMSM:
    @pytest.fixture(scope="class")
    def curve(self):
        return EllipticCurve(SECP256K1)

    def test_pippenger_matches_naive(self, curve, rng):
        pts = curve.random_points(15, seed=2)
        scalars = [rng.randrange(1, curve.params.order) for _ in range(15)]
        assert msm_pippenger(curve, scalars, pts) == msm_naive(curve, scalars, pts)

    def test_small_window(self, curve, rng):
        pts = curve.random_points(6, seed=4)
        scalars = [rng.randrange(1, curve.params.order) for _ in range(6)]
        assert msm_pippenger(curve, scalars, pts, window_bits=4) == msm_naive(
            curve, scalars, pts
        )

    def test_zero_scalars(self, curve):
        pts = curve.random_points(3, seed=5)
        assert msm_pippenger(curve, [0, 0, 0], pts) is None

    def test_empty(self, curve):
        assert msm_pippenger(curve, [], []) is None

    def test_length_mismatch(self, curve):
        with pytest.raises(FieldError):
            msm_pippenger(curve, [1], [])

    def test_work_units_monotone(self):
        assert msm_work_units(1 << 20) > msm_work_units(1 << 18)


class TestGrothLike:
    def test_pipeline_runs_and_reports(self):
        prover = GrothLikeProver()
        art = prover.prove(list(range(1, 33)))
        assert art.pi_a is not None and art.pi_b is not None
        assert art.total_seconds >= art.msm_seconds
        assert art.workload.scale == 32

    def test_workload_counts(self):
        w = GrothWorkload(scale=1 << 10)
        assert w.domain == 1 << 11
        assert w.ntt_butterflies == 7 * ntt_work_units(1 << 11)
        assert w.msm_group_adds > 0

    def test_memory_model_far_above_ours(self):
        """Table 10 driver: Groth keeps GBs resident at table scales."""
        assert groth_memory_bytes(1 << 20) > (1 << 30) / 4

    def test_tiny_witness_rejected(self):
        with pytest.raises(Exception):
            GrothLikeProver().prove([1])


class TestVendorModels:
    def test_libsnark_fits_table7(self):
        # Endpoints were used for the fit; the middle row is a prediction.
        assert libsnark_times(1 << 18).total_seconds == pytest.approx(23.19, rel=0.02)
        assert libsnark_times(1 << 22).total_seconds == pytest.approx(364.1, rel=0.02)
        assert libsnark_times(1 << 20).total_seconds == pytest.approx(89.67, rel=0.05)

    def test_bellperson_fits_table7(self):
        assert bellperson_times(1 << 18).total_seconds == pytest.approx(1.299, rel=0.02)
        assert bellperson_times(1 << 22).total_seconds == pytest.approx(7.591, rel=0.02)
        assert bellperson_times(1 << 20).total_seconds == pytest.approx(2.204, rel=0.20)

    def test_bellperson_device_factors(self):
        t_gh = bellperson_times(1 << 20, "GH200").total_seconds
        t_v100 = bellperson_times(1 << 20, "V100").total_seconds
        assert t_v100 == pytest.approx(t_gh * BELLPERSON_DEVICE_FACTOR["V100"])

    def test_bellperson_unknown_device(self):
        with pytest.raises(SimulationError):
            bellperson_times(1 << 20, "TPU")

    def test_msm_dominates_ntt(self):
        """Table 7's structure: MSM >> NTT in both Groth systems."""
        for times in (libsnark_times(1 << 20), bellperson_times(1 << 20)):
            assert times.msm_seconds > times.ntt_seconds

    def test_bellperson_memory_table10(self):
        assert bellperson_memory_gb(1 << 18) == pytest.approx(0.90)
        assert bellperson_memory_gb(1 << 22) == pytest.approx(3.87)
        # Interpolation / extrapolation stay monotone.
        assert bellperson_memory_gb(1 << 23) > bellperson_memory_gb(1 << 22)

    def test_orion_arkworks_table7_row(self):
        t = orion_arkworks_times(1 << 20)
        assert t.merkle_seconds == pytest.approx(0.2498, rel=0.05)
        assert t.sumcheck_seconds == pytest.approx(2.8108, rel=0.05)
        assert t.encoder_seconds == pytest.approx(0.6233, rel=0.05)
        assert t.total_seconds == pytest.approx(3.684, rel=0.05)

    def test_zkml_baselines_table11(self):
        assert set(ZKML_BASELINES) == {"zkCNN", "ZKML", "ZENO"}
        assert ZKML_BASELINES["ZENO"].throughput_per_second == 0.0208
        assert OURS_ACCURACY_PERCENT == 93.93
        # Ours must beat every baseline's accuracy (paper's claim).
        assert all(
            OURS_ACCURACY_PERCENT > b.accuracy_percent
            for b in ZKML_BASELINES.values()
        )
