"""Error-hierarchy and repr/diagnostics coverage."""

import pytest

from repro import errors
from repro.field import DEFAULT_FIELD, MultilinearPolynomial, Polynomial, PrimeField
from repro.encoder import SpielmanEncoder, SparseMatrix
from repro.gkr import matmul_circuit
from repro.gpu import GPU_CATALOG, KernelStage, ModuleGraph
from repro.merkle import MerkleTree
from repro.zkml import tiny_cnn

F = DEFAULT_FIELD


class TestErrorHierarchy:
    ALL_ERRORS = [
        errors.FieldError,
        errors.FieldMismatchError,
        errors.NonInvertibleError,
        errors.HashError,
        errors.MerkleError,
        errors.SumcheckError,
        errors.EncodingError,
        errors.CommitmentError,
        errors.CircuitError,
        errors.ProofError,
        errors.VerificationError,
        errors.SimulationError,
        errors.PipelineError,
        errors.ZkmlError,
    ]

    @pytest.mark.parametrize("exc", ALL_ERRORS)
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_catch_all_with_base(self):
        with pytest.raises(errors.ReproError):
            raise errors.SumcheckError("boom")

    def test_subsystem_discrimination(self):
        """Field errors are not hash errors — a caller can discriminate."""
        assert not issubclass(errors.FieldError, errors.HashError)
        assert issubclass(errors.NonInvertibleError, errors.FieldError)
        assert issubclass(errors.FieldMismatchError, errors.FieldError)

    def test_mismatch_message_names_both_fields(self):
        exc = errors.FieldMismatchError(PrimeField(97), PrimeField(101))
        assert "97" in str(exc) and "101" in str(exc)


class TestReprs:
    """reprs are part of the debugging surface; keep them informative."""

    def test_field_and_element(self):
        assert "97" in repr(PrimeField(97))
        assert repr(F(5)).startswith("5:")

    def test_polynomial(self):
        text = repr(Polynomial(F, [1, 0, 3]))
        assert "x^2" in text

    def test_multilinear(self, rng):
        ml = MultilinearPolynomial.random(F, 4, rng)
        assert "n=4" in repr(ml)

    def test_sparse_matrix(self, rng):
        m = SparseMatrix.random_expander(F, 4, 8, 2, rng)
        assert "4x8" in repr(m)
        assert "nnz=8" in repr(m)

    def test_encoder(self):
        enc = SpielmanEncoder(F, 100, seed=0)
        text = repr(enc)
        assert "n=100" in text and "stages=" in text

    def test_merkle_tree(self):
        tree = MerkleTree.from_blocks([b"\x00" * 64] * 4)
        text = repr(tree)
        assert "leaves=4" in text and "depth=2" in text

    def test_layered_circuit(self):
        circuit = matmul_circuit(F, 2)
        assert "depth=" in repr(circuit)

    def test_sequential_model(self):
        model = tiny_cnn()
        text = repr(model)
        assert "tiny-cnn" in text and "gates=" in text

    def test_kernel_graph(self):
        g = ModuleGraph("m", [KernelStage("s", 4, 1.0)])
        assert len(g) == 1

    def test_gpu_catalog_names_match_keys(self):
        for name, spec in GPU_CATALOG.items():
            assert spec.name == name
