"""Cluster-layer tests (S28): wire protocol, ring routing, node/remote
parity, coordinator failover, chaos drills, and the autoscaler."""

import json
import pickle
import socket

import pytest

from repro.cluster import (
    Autoscaler,
    ClusterBackend,
    HashRing,
    LoadModel,
    NodePool,
    NodeServer,
    RemoteBackend,
)
from repro.cluster import protocol
from repro.core import ProofTask, SnarkProver, make_pcs, random_circuit
from repro.core.serialize import serialize_proof
from repro.errors import (
    BackendUnavailableError,
    ClusterError,
    ExecutionError,
    NodeConnectionError,
    ProtocolMismatchError,
)
from repro.execution import SerialBackend, resolve_backend
from repro.field import DEFAULT_FIELD
from repro.gpu.costs import proof_cost_seconds, target_node_count
from repro.runtime import JsonlTraceSink, ProverSpec

F = DEFAULT_FIELD


@pytest.fixture(scope="module")
def setup():
    cc = random_circuit(F, 48, seed=3)
    pcs = make_pcs(F, cc.r1cs, num_col_checks=4)
    prover = SnarkProver(cc.r1cs, pcs, public_indices=cc.public_indices)
    spec = ProverSpec.from_prover(prover)
    tasks = [ProofTask(i, cc.witness, cc.public_values) for i in range(16)]
    return spec, tasks


@pytest.fixture(scope="module")
def serial_wire(setup):
    spec, tasks = setup
    proofs, _ = SerialBackend().prove_tasks(spec, tasks)
    return [serialize_proof(p, F) for p in proofs]


def _wire(proofs):
    return [serialize_proof(p, F) for p in proofs]


# -- consistent-hash ring ------------------------------------------------------


def _keys(count):
    return [f"circuit-{i}".encode() for i in range(count)]


@pytest.mark.parametrize("n_nodes", [2, 4, 8, 16])
def test_ring_distribution_is_roughly_uniform(n_nodes):
    ring = HashRing([f"node{i}" for i in range(n_nodes)])
    keys = _keys(4000)
    counts = {}
    for key in keys:
        owner = ring.node_for(key)
        counts[owner] = counts.get(owner, 0) + 1
    assert len(counts) == n_nodes  # every node owns some arc
    expected = len(keys) / n_nodes
    for node, count in counts.items():
        # 64 virtual points per node keep arcs within a small factor of
        # fair share; the bound is loose but catches a broken placement
        # (all keys on one node, or a node with no arc at all).
        assert 0.4 * expected <= count <= 2.0 * expected, (node, count)


def test_ring_is_deterministic_and_distinct():
    a = HashRing(["x", "y", "z"])
    b = HashRing(["x", "y", "z"])
    for key in _keys(64):
        assert a.node_for(key) == b.node_for(key)
        succession = a.nodes_for(key, 3)
        assert len(set(succession)) == 3
        assert succession[0] == a.node_for(key)


@pytest.mark.parametrize("n_nodes", [2, 4, 8])
def test_ring_join_moves_at_most_one_share(n_nodes):
    keys = _keys(3000)
    ring = HashRing([f"node{i}" for i in range(n_nodes)])
    before = {key: ring.node_for(key) for key in keys}
    ring.add("joiner")
    moved = [key for key in keys if ring.node_for(key) != before[key]]
    # Only keys in the joiner's new arcs may move, and they move to it.
    assert all(ring.node_for(key) == "joiner" for key in moved)
    assert len(moved) <= 1.5 * len(keys) / (n_nodes + 1)


def test_ring_leave_moves_only_the_leavers_keys():
    keys = _keys(3000)
    ring = HashRing(["a", "b", "c", "d"])
    before = {key: ring.node_for(key) for key in keys}
    ring.remove("c")
    for key in keys:
        after = ring.node_for(key)
        if before[key] == "c":
            assert after != "c"
        else:
            assert after == before[key]  # untouched arcs never reshuffle


def test_ring_membership_errors():
    ring = HashRing(["a"])
    with pytest.raises(ClusterError):
        ring.add("a")
    with pytest.raises(ClusterError):
        ring.remove("ghost")
    ring.remove("a")
    with pytest.raises(ClusterError):
        ring.node_for(b"key")
    with pytest.raises(ClusterError):
        HashRing(replicas=0)


# -- wire protocol -------------------------------------------------------------


def test_frame_roundtrip():
    left, right = socket.socketpair()
    try:
        protocol.send_frame(left, protocol.STATS_OK, {"proofs_total": 7})
        kind, payload = protocol.recv_frame(right)
        assert kind == protocol.STATS_OK
        assert payload == {"proofs_total": 7}
    finally:
        left.close()
        right.close()


def test_frame_rejects_foreign_magic_before_unpickling():
    left, right = socket.socketpair()
    try:
        left.sendall(protocol.HEADER.pack(b"HTTP", 1, protocol.HELLO, 4))
        left.sendall(b"\x00" * 4)
        with pytest.raises(ProtocolMismatchError, match="magic"):
            protocol.recv_frame(right)
    finally:
        left.close()
        right.close()


def test_frame_rejects_future_protocol_revision():
    left, right = socket.socketpair()
    try:
        body = pickle.dumps({})
        left.sendall(protocol.HEADER.pack(
            protocol.MAGIC, protocol.PROTOCOL_VERSION + 1,
            protocol.HELLO, len(body),
        ) + body)
        with pytest.raises(ProtocolMismatchError) as excinfo:
            protocol.recv_frame(right)
        assert excinfo.value.ours == str(protocol.PROTOCOL_VERSION)
        assert excinfo.value.theirs == str(protocol.PROTOCOL_VERSION + 1)
    finally:
        left.close()
        right.close()


def test_frame_rejects_unknown_kind_and_nondict_payload():
    left, right = socket.socketpair()
    try:
        body = pickle.dumps({})
        left.sendall(protocol.HEADER.pack(
            protocol.MAGIC, protocol.PROTOCOL_VERSION, 99, len(body)) + body)
        with pytest.raises(ProtocolMismatchError, match="kind"):
            protocol.recv_frame(right)
    finally:
        left.close()
        right.close()
    left, right = socket.socketpair()  # a failed frame poisons the stream
    try:
        body = pickle.dumps([1, 2])
        left.sendall(protocol.HEADER.pack(
            protocol.MAGIC, protocol.PROTOCOL_VERSION,
            protocol.PING, len(body)) + body)
        with pytest.raises(ClusterError, match="dict"):
            protocol.recv_frame(right)
    finally:
        left.close()
        right.close()


def test_truncated_frame_is_a_connection_error():
    left, right = socket.socketpair()
    try:
        left.sendall(protocol.HEADER.pack(
            protocol.MAGIC, protocol.PROTOCOL_VERSION, protocol.PING, 100))
        left.sendall(b"short")
        left.close()
        with pytest.raises(NodeConnectionError, match="closed"):
            protocol.recv_frame(right)
    finally:
        right.close()


def test_library_version_gate():
    protocol.check_version({"version": protocol.LIBRARY_VERSION}, "HELLO")
    with pytest.raises(ProtocolMismatchError) as excinfo:
        protocol.check_version({"version": "0.0.0"}, "HELLO")
    assert excinfo.value.ours == protocol.LIBRARY_VERSION
    assert excinfo.value.theirs == "0.0.0"


# -- selector registry ---------------------------------------------------------


def test_remote_selector_parses_lazily():
    backend = resolve_backend("remote:127.0.0.1:19999")
    assert isinstance(backend, RemoteBackend)
    assert backend.name == "remote:127.0.0.1:19999"
    with pytest.raises(ExecutionError):
        resolve_backend("remote:no-port")
    with pytest.raises(ExecutionError):
        resolve_backend("remote:")


def test_cluster_selector_validation():
    with pytest.raises(ExecutionError, match="comma-separated"):
        resolve_backend("cluster:")
    with pytest.raises(ExecutionError, match="empty node"):
        resolve_backend("cluster:remote:h:1,,remote:h:2")
    with pytest.raises(ExecutionError, match="nested"):
        resolve_backend("cluster:cluster:remote:h:1")


def test_unreachable_remote_is_unavailable(setup):
    spec, tasks = setup
    backend = resolve_backend("remote:127.0.0.1:1")  # reserved port
    with pytest.raises(BackendUnavailableError):
        backend.prove_tasks(spec, tasks[:1])


# -- node server + remote backend ----------------------------------------------


@pytest.fixture()
def node():
    server = NodeServer(backend="serial").start()
    yield server
    server.close()


def test_remote_matches_serial_bytes(node, setup, serial_wire):
    spec, tasks = setup
    backend = RemoteBackend(node.host, node.port)
    try:
        proofs, stats = backend.prove_tasks(spec, tasks)
        assert _wire(proofs) == serial_wire
        assert stats.proofs_generated == len(tasks)
        assert stats.workers == 1
        assert backend.ping() >= 0.0
    finally:
        backend.close()


def test_node_stats_gauges(node, setup):
    spec, tasks = setup
    backend = RemoteBackend(node.host, node.port)
    try:
        backend.prove_tasks(spec, tasks)
        backend.prove_tasks(spec, tasks)
        stats = backend.fetch_stats()
    finally:
        backend.close()
    assert stats["proofs_total"] == 2 * len(tasks)
    assert stats["batches_total"] == 2
    assert stats["circuits_resident"] == 1
    affinity = stats["spec_affinity"]
    # First batch: one miss, 15 hits; second: all 16 hit.
    assert affinity["misses"] == 1
    assert affinity["hits"] == 2 * len(tasks) - 1
    assert affinity["hit_rate"] > 0.9
    for gauge in ("spec_cache", "encoder_cache"):
        assert {"hits", "misses"} <= set(stats[gauge])


def test_node_streams_chunked_results(node, setup, serial_wire):
    spec, tasks = setup
    backend = RemoteBackend(node.host, node.port, chunk=3)
    try:
        proofs, _ = backend.prove_tasks(spec, tasks)
        assert _wire(proofs) == serial_wire
    finally:
        backend.close()


def test_node_rejects_skewed_library_version(node):
    sock = socket.create_connection((node.host, node.port), timeout=5)
    try:
        protocol.send_frame(
            sock, protocol.HELLO,
            {"version": "0.0.0", "role": "coordinator"},
        )
        kind, payload = protocol.recv_frame(sock)
        assert kind == protocol.ERROR
        assert payload["mismatch"]
        assert "0.0.0" in payload["message"]
    finally:
        sock.close()


def test_node_rejects_digest_spec_drift(node, setup):
    spec, tasks = setup
    sock = socket.create_connection((node.host, node.port), timeout=5)
    try:
        protocol.send_frame(
            sock, protocol.HELLO, protocol.hello_payload("coordinator"))
        kind, _ = protocol.recv_frame(sock)
        assert kind == protocol.HELLO
        protocol.send_frame(sock, protocol.PROVE, {
            "version": protocol.LIBRARY_VERSION,
            "request": 1,
            "digest": "00" * 32,  # not this spec's digest
            "spec": spec,
            "tasks": tasks[:1],
            "chunk": None,
        })
        kind, payload = protocol.recv_frame(sock)
        assert kind == protocol.ERROR
        assert payload["mismatch"]
        assert "digest" in payload["message"]
    finally:
        sock.close()


# -- cluster coordinator -------------------------------------------------------


def test_cluster_matches_serial_bytes_across_three_nodes(setup, serial_wire):
    spec, tasks = setup
    nodes = [NodeServer(backend="serial").start() for _ in range(3)]
    selector = "cluster:" + ",".join(
        f"remote:{n.host}:{n.port}" for n in nodes
    )
    backend = resolve_backend(selector)
    try:
        proofs, stats = backend.prove_tasks(spec, tasks)
        assert _wire(proofs) == serial_wire
        assert stats.proofs_generated == len(tasks)
        assert stats.workers == 3  # one serial worker per node
    finally:
        backend.close()
        for server in nodes:
            server.close()


def test_cluster_cache_affinity_above_ninety_percent(setup):
    """Ring routing keeps ≥90% of tasks on nodes already holding their
    circuit, even with one batch spread across three nodes."""
    spec, tasks = setup
    nodes = [NodeServer(backend="serial").start() for _ in range(3)]
    backend = ClusterBackend([
        RemoteBackend(n.host, n.port) for n in nodes
    ])
    try:
        for _ in range(3):
            backend.prove_tasks(spec, tasks)
        stats = backend.cluster_stats()
        affinity = stats["cache_affinity"]
        looked_up = affinity["hits"] + affinity["misses"]
        assert looked_up == 3 * len(tasks)
        assert affinity["misses"] <= 3  # at most one cold miss per node
        assert affinity["hit_rate"] >= 0.9
        assert stats["ring_nodes"] == 3
    finally:
        backend.close()
        for server in nodes:
            server.close()


def test_cluster_routes_same_circuit_to_same_nodes(setup):
    spec, _ = setup
    backend = ClusterBackend(
        [SerialBackend() for _ in range(4)], fanout=2
    )
    digest = spec.r1cs.digest()
    order = backend._affinity_order(digest)
    assert order == backend._affinity_order(digest)
    assert len(order) == 2


class _DeadChild:
    """A child that is down: every dispatch is a blameless outage."""

    name = "dead"
    parallelism = 1

    def __init__(self):
        self.calls = 0

    def prove_tasks(self, spec, tasks, *, trace=None, parent=None):
        self.calls += 1
        raise BackendUnavailableError("injected outage")


def test_cluster_fails_over_and_emits_rebalance(tmp_path, setup, serial_wire):
    spec, tasks = setup
    dead = _DeadChild()
    backend = ClusterBackend(
        [SerialBackend(), dead, SerialBackend()],
        cooldown_seconds=30.0,  # stays open for the whole test
    )
    trace_path = tmp_path / "cluster.jsonl"
    sink = JsonlTraceSink(str(trace_path))
    proofs, _ = backend.prove_tasks(spec, tasks, trace=sink)
    sink.close()
    assert _wire(proofs) == serial_wire  # bytes survive the failover
    events = [json.loads(line) for line in trace_path.read_text().splitlines()]
    names = [e["event"] for e in events]
    assert "node_failure" in names
    assert "ring_rebalance" in names
    leave = next(e for e in names if e == "node_leave")
    assert leave  # breaker opened -> fleet membership event
    assert all("node" in e for e in events if e["event"] == "node_leave")
    # Second batch: the open breaker skips the dead child entirely.
    calls_before = dead.calls
    proofs, _ = backend.prove_tasks(spec, tasks)
    assert _wire(proofs) == serial_wire
    assert dead.calls == calls_before


def test_cluster_with_all_nodes_down_fails_typed(setup):
    spec, tasks = setup
    backend = ClusterBackend(
        [_DeadChild(), _DeadChild()],
        cooldown_seconds=60.0,
        max_unavailable_seconds=0.2,
    )
    with pytest.raises(BackendUnavailableError, match="no admissible node"):
        backend.prove_tasks(spec, tasks)


def test_cluster_membership_changes(setup, serial_wire):
    spec, tasks = setup
    backend = ClusterBackend([SerialBackend()])
    member = backend.add_node(SerialBackend())
    assert len(backend.ring) == 2
    proofs, _ = backend.prove_tasks(spec, tasks)
    assert _wire(proofs) == serial_wire
    backend.remove_node(member)
    assert len(backend.ring) == 1
    with pytest.raises(ClusterError):
        backend.remove_node(member)
    proofs, _ = backend.prove_tasks(spec, tasks)
    assert _wire(proofs) == serial_wire


def test_resilient_cluster_chaos_drill_subprocess(setup, serial_wire):
    """The ISSUE's chaos drill: a real node process killed mid-batch;
    `resilient:cluster:` recovers byte-identical proofs."""
    spec, tasks = setup
    pool = NodePool(backend="serial")
    try:
        pool.spawn(extra_args=("--die-after", "3"))
        pool.spawn()
        backend = resolve_backend("resilient:" + pool.cluster_selector())
        proofs, _ = backend.prove_tasks(spec, tasks)
        assert _wire(proofs) == serial_wire
        assert pool.reap()  # the chaos node actually died
    finally:
        pool.close()


# -- load model + autoscaler ---------------------------------------------------


def test_proof_cost_seconds_accounting():
    stages = {
        "commit": 0.5, "encode": 0.1, "merkle": 0.2,
        "sumcheck1": 0.3, "sumcheck2": 0.1, "open": 0.05,
    }
    # merkle + encode + sumchecks + commit residue (0.2) + open
    assert proof_cost_seconds(stages) == pytest.approx(0.95)
    assert proof_cost_seconds({}) == 0.0


def test_target_node_count_math_and_bounds():
    assert target_node_count(0.0, 1.0, 1) == 1  # floor
    assert target_node_count(8.0, 0.5, 2, headroom=0.8) == 3
    assert target_node_count(100.0, 1.0, 1, max_nodes=4) == 4  # ceiling
    with pytest.raises(ValueError):
        target_node_count(1.0, 1.0, 0)
    with pytest.raises(ValueError):
        target_node_count(1.0, 1.0, 1, headroom=0.0)


def test_load_model_from_stage_profile():
    model = LoadModel.from_stage_profile(
        {"merkle": 0.1, "sumcheck1": 0.1}, node_parallelism=2
    )
    assert model.per_proof_seconds == pytest.approx(0.2)
    assert model.target_nodes(16.0) == 2
    assert model.utilization(10.0, 1) == pytest.approx(1.0)
    with pytest.raises(ClusterError):
        LoadModel.from_stage_profile({})


def test_autoscaler_grows_fast_and_shrinks_patiently():
    clock = lambda: clock.now  # noqa: E731 - injected test clock
    clock.now = 0.0
    model = LoadModel(per_proof_seconds=0.25, node_parallelism=1)
    scaler = Autoscaler(
        model, None, min_nodes=1, max_nodes=4,
        cooldown_seconds=10.0, shrink_patience=2, clock=clock,
    )
    assert scaler.observe(1.0)["action"] == "hold"
    decision = scaler.observe(10.0)  # demand spike: grow immediately
    assert decision["action"] == "grow"
    assert scaler.current_nodes == decision["target"] > 1
    clock.now += 11.0
    assert scaler.observe(1.0)["reason"].startswith("patience")
    assert scaler.current_nodes > 1  # one low reading is not enough
    decision = scaler.observe(1.0)
    assert decision["action"] == "shrink"
    assert scaler.current_nodes == 1


def test_autoscaler_respects_cooldown():
    clock = lambda: clock.now  # noqa: E731
    clock.now = 0.0
    model = LoadModel(per_proof_seconds=0.25, node_parallelism=1)
    scaler = Autoscaler(
        model, None, min_nodes=1, max_nodes=8,
        cooldown_seconds=10.0, shrink_patience=1, clock=clock,
    )
    assert scaler.observe(10.0)["action"] == "grow"
    assert scaler.observe(20.0)["reason"] == "cooldown"  # too soon
    clock.now += 11.0
    assert scaler.observe(20.0)["action"] == "grow"


def test_autoscaler_emits_scale_decisions(tmp_path):
    trace_path = tmp_path / "scale.jsonl"
    sink = JsonlTraceSink(str(trace_path))
    model = LoadModel(per_proof_seconds=0.25, node_parallelism=1)
    scaler = Autoscaler(
        model, None, min_nodes=1, max_nodes=4,
        cooldown_seconds=0.0, shrink_patience=1, trace=sink,
    )
    scaler.observe(10.0)
    scaler.observe(1.0)
    sink.close()
    events = [json.loads(line) for line in trace_path.read_text().splitlines()]
    decisions = [e for e in events if e["event"] == "scale_decision"]
    assert len(decisions) == 2
    assert decisions[0]["action"] == "grow"
    assert all("node" in e for e in decisions)


def test_node_pool_empty_selector_errors():
    pool = NodePool()
    with pytest.raises(ClusterError):
        pool.cluster_selector()
    assert pool.retire() is None
    assert pool.size == 0
