"""zkBridge application tests: real transaction proofs + economics."""

import pytest

from repro.apps import (
    BridgeProver,
    TX_CIRCUIT_SCALE,
    Transaction,
    random_transactions,
    revenue_report,
)
from repro.errors import ProofError
from repro.field import DEFAULT_FIELD

F = DEFAULT_FIELD


@pytest.fixture(scope="module")
def prover():
    return BridgeProver(rounds=4)


@pytest.fixture(scope="module")
def proven(prover):
    tx = random_transactions(1, seed=3)[0]
    compiled, proof = prover.prove(tx)
    return tx, compiled, proof


class TestTransactions:
    def test_commitment_deterministic(self, prover):
        tx = Transaction(sender=1, receiver=2, amount=3, nonce=4)
        assert tx.commitment(F, prover.perm) == tx.commitment(F, prover.perm)

    def test_commitment_binds_every_field(self, prover):
        base = Transaction(sender=1, receiver=2, amount=3, nonce=4)
        c0 = base.commitment(F, prover.perm)
        variants = [
            Transaction(sender=9, receiver=2, amount=3, nonce=4),
            Transaction(sender=1, receiver=9, amount=3, nonce=4),
            Transaction(sender=1, receiver=2, amount=9, nonce=4),
            Transaction(sender=1, receiver=2, amount=3, nonce=9),
        ]
        assert all(v.commitment(F, prover.perm) != c0 for v in variants)

    def test_random_transactions_unique_nonces(self):
        txs = random_transactions(10, seed=1)
        assert [t.nonce for t in txs] == list(range(10))


class TestBridgeProofs:
    def test_proof_verifies(self, prover, proven):
        tx, compiled, proof = proven
        commitment = tx.commitment(F, prover.perm)
        assert prover.verify(compiled, proof, commitment, tx.amount)

    def test_wrong_commitment_rejected(self, prover, proven):
        tx, compiled, proof = proven
        commitment = tx.commitment(F, prover.perm)
        assert not prover.verify(
            compiled, proof, (commitment + 1) % F.modulus, tx.amount
        )

    def test_wrong_amount_rejected(self, prover, proven):
        """A bridge that mints the wrong amount must be caught."""
        tx, compiled, proof = proven
        commitment = tx.commitment(F, prover.perm)
        assert not prover.verify(compiled, proof, commitment, tx.amount + 1)

    def test_zero_amount_refused(self, prover):
        with pytest.raises(ProofError):
            prover.prove(Transaction(sender=1, receiver=2, amount=0, nonce=0))

    def test_circuit_commitment_matches_native(self, prover, proven):
        tx, compiled, _ = proven
        assert compiled.public_values[0] == tx.commitment(F, prover.perm)
        assert compiled.public_values[1] == tx.amount


class TestRevenueEconomics:
    @pytest.fixture(scope="class")
    def report(self):
        return revenue_report(
            fee_per_proof=0.25,
            scale=TX_CIRCUIT_SCALE,
            devices=("GH200", "V100"),
            farm=("V100", "A100"),
        )

    def test_pipelining_earns_more(self, report):
        """The paper's motivation: throughput is income."""
        for dev in ("GH200", "V100"):
            pipe = report.rows[f"{dev}/pipelined"]["revenue_per_hour"]
            naive = report.rows[f"{dev}/kernel-per-task"]["revenue_per_hour"]
            assert pipe > naive

    def test_revenue_proportional_to_throughput(self, report):
        for row in report.rows.values():
            assert row["revenue_per_hour"] == pytest.approx(
                row["proofs_per_second"] * 3600 * 0.25
            )

    def test_farm_beats_its_single_devices(self, report):
        farm = report.rows["farm/V100+A100"]["proofs_per_second"]
        v100 = report.rows["V100/pipelined"]["proofs_per_second"]
        assert farm > v100

    def test_best_configuration(self, report):
        assert report.best_configuration() == "GH200/pipelined"


class TestBatchProving:
    """prove_batch shards transaction proofs across the S22 runtime."""

    @pytest.fixture(scope="class")
    def fast_prover(self):
        return BridgeProver(rounds=2)

    def test_batch_proofs_verify(self, fast_prover):
        txs = random_transactions(3, seed=7)
        pairs = fast_prover.prove_batch(txs, workers=2)
        assert len(pairs) == len(txs)
        for (compiled, proof), tx in zip(pairs, txs):
            commitment = tx.commitment(F, fast_prover.perm)
            amount = tx.amount % F.modulus
            assert fast_prover.verify(compiled, proof, commitment, amount)
        assert fast_prover.last_runtime_stats.proofs_generated == len(txs)

    def test_batch_matches_individual_proofs(self, fast_prover):
        from repro.core.serialize import serialize_proof

        txs = random_transactions(2, seed=8)
        pairs = fast_prover.prove_batch(txs, workers=1)
        for (_, batched), tx in zip(pairs, txs):
            _, single = fast_prover.prove(tx)
            assert serialize_proof(batched, F) == serialize_proof(single, F)

    def test_empty_batch(self, fast_prover):
        assert fast_prover.prove_batch([]) == []

    def test_zero_amount_rejected_up_front(self, fast_prover):
        bad = Transaction(sender=1, receiver=2, amount=F.modulus, nonce=0)
        with pytest.raises(ProofError):
            fast_prover.prove_batch([bad], workers=2)
