"""MiMC algebraic hash tests, including the in-circuit gadget."""

import pytest

from repro.core import CircuitBuilder, SnarkProver, SnarkVerifier, compile_builder, make_pcs
from repro.errors import HashError
from repro.field import DEFAULT_FIELD, PrimeField
from repro.field.primes import BN254_SCALAR, GOLDILOCKS, MERSENNE31
from repro.hashing import (
    MimcPermutation,
    MimcSponge,
    default_rounds,
    derive_round_constants,
    mimc_circuit_encrypt,
    mimc_gate_count,
    mimc_merkle_root,
    power_is_permutation,
    select_alpha,
)

F = DEFAULT_FIELD


class TestAlphaSelection:
    def test_bn254_gets_poseidon_alpha(self):
        assert select_alpha(BN254_SCALAR) == 5

    def test_m31_gets_five(self):
        assert select_alpha(MERSENNE31) == 5

    def test_m61_is_hostile(self):
        """p−1 = 2·(2^60−1) is divisible by 2^d−1 for every d | 60, so
        3, 5, 7, 11, 13 all fail; 17 is the smallest usable exponent."""
        for bad in (3, 5, 7, 11, 13):
            assert not power_is_permutation(F.modulus, bad)
        assert select_alpha(F.modulus) == 17

    def test_goldilocks(self):
        """3 and 5 divide p−1 for Goldilocks; 7 works."""
        assert not power_is_permutation(GOLDILOCKS, 3)
        assert not power_is_permutation(GOLDILOCKS, 5)
        assert select_alpha(GOLDILOCKS) == 7

    def test_explicit_bad_alpha_rejected(self):
        with pytest.raises(HashError):
            MimcPermutation(F, alpha=3)

    def test_default_rounds_scale(self):
        assert default_rounds(BN254_SCALAR, 5) > default_rounds(F.modulus, 17)


class TestPermutation:
    @pytest.fixture(scope="class")
    def perm(self):
        return MimcPermutation(F)

    def test_deterministic(self, perm):
        assert perm.encrypt(5, 7) == perm.encrypt(5, 7)

    def test_key_sensitivity(self, perm):
        assert perm.encrypt(5, 7) != perm.encrypt(6, 7)

    def test_message_sensitivity(self, perm):
        assert perm.encrypt(5, 7) != perm.encrypt(5, 8)

    def test_is_bijection_on_small_field(self):
        small = PrimeField(103)  # 102 = 2·3·17: alpha must dodge 3 and 17
        perm = MimcPermutation(small, rounds=5)
        images = {perm.encrypt(3, x) for x in range(103)}
        assert len(images) == 103

    def test_round_constants_first_zero(self):
        consts = derive_round_constants(F, 8)
        assert consts[0] == 0
        assert len(set(consts)) == len(consts)

    def test_constants_depend_on_seed(self):
        a = derive_round_constants(F, 8, seed=b"a")
        b = derive_round_constants(F, 8, seed=b"b")
        assert a[1:] != b[1:]

    def test_compress_not_symmetric(self, perm):
        assert perm.compress(1, 2) != perm.compress(2, 1)

    def test_works_on_bn254(self):
        perm = MimcPermutation(PrimeField(BN254_SCALAR, check=False), rounds=10)
        assert perm.alpha == 5
        assert 0 <= perm.encrypt(1, 2) < BN254_SCALAR


class TestSponge:
    @pytest.fixture(scope="class")
    def sponge(self):
        return MimcSponge(F)

    def test_deterministic(self, sponge):
        assert sponge.hash([1, 2, 3]) == sponge.hash([1, 2, 3])

    def test_order_matters(self, sponge):
        assert sponge.hash([1, 2]) != sponge.hash([2, 1])

    def test_length_padding_unambiguous(self, sponge):
        assert sponge.hash([1]) != sponge.hash([1, 0])
        assert sponge.hash([]) != sponge.hash([0])

    def test_outputs_in_field(self, sponge, rng):
        for _ in range(20):
            vals = F.rand_vector(rng.randrange(1, 6), rng)
            assert 0 <= sponge.hash(vals) < F.modulus

    def test_avalanche(self, sponge, rng):
        """Changing any one input element changes the digest."""
        vals = F.rand_vector(8, rng)
        base = sponge.hash(vals)
        for i in range(8):
            mutated = list(vals)
            mutated[i] = (mutated[i] + 1) % F.modulus
            assert sponge.hash(mutated) != base


class TestMimcMerkle:
    def test_root_deterministic_and_binding(self, rng):
        leaves = F.rand_vector(8, rng)
        root = mimc_merkle_root(F, leaves)
        assert root == mimc_merkle_root(F, leaves)
        mutated = list(leaves)
        mutated[3] = (mutated[3] + 1) % F.modulus
        assert root != mimc_merkle_root(F, mutated)

    def test_pads_to_power_of_two(self, rng):
        leaves = F.rand_vector(5, rng)
        assert mimc_merkle_root(F, leaves) == mimc_merkle_root(
            F, leaves + [0, 0, 0]
        )

    def test_empty_raises(self):
        with pytest.raises(HashError):
            mimc_merkle_root(F, [])


class TestInCircuitMimc:
    def test_circuit_matches_native(self):
        perm = MimcPermutation(F, rounds=6)
        cb = CircuitBuilder(F)
        key = cb.private_input(123)
        msg = cb.private_input(456)
        out = mimc_circuit_encrypt(cb, key, msg, perm)
        assert cb.wire_value(out) == perm.encrypt(123, 456)
        assert cb.num_multiplications == mimc_gate_count(perm)

    def test_gate_count_formula(self):
        """alpha = 17 = 10001b: 4 squarings + 1 multiply per round."""
        perm = MimcPermutation(F, rounds=10)
        assert perm.alpha == 17
        assert mimc_gate_count(perm) == 10 * 5

    def test_prove_preimage_knowledge(self):
        """The canonical ZK statement: 'I know (k, m) hashing to this
        digest' — proved with the real SNARK over the MiMC circuit."""
        perm = MimcPermutation(F, rounds=6)
        cb = CircuitBuilder(F)
        key = cb.private_input(0xDEADBEEF)
        msg = cb.private_input(0xCAFEF00D)
        digest = mimc_circuit_encrypt(cb, key, msg, perm)
        cb.expose_public(digest)
        cc = compile_builder(cb)
        expected = perm.encrypt(0xDEADBEEF, 0xCAFEF00D)
        assert cc.public_values == [expected]

        pcs = make_pcs(F, cc.r1cs, num_col_checks=6)
        prover = SnarkProver(cc.r1cs, pcs, public_indices=cc.public_indices)
        verifier = SnarkVerifier(cc.r1cs, pcs, public_indices=cc.public_indices)
        proof = prover.prove(cc.witness, cc.public_values)
        assert verifier.verify(proof, [expected])
        assert not verifier.verify(proof, [(expected + 1) % F.modulus])

    def test_field_mismatch_raises(self):
        perm = MimcPermutation(F, rounds=4)
        cb = CircuitBuilder(PrimeField(BN254_SCALAR, check=False))
        k = cb.private_input(1)
        with pytest.raises(HashError):
            mimc_circuit_encrypt(cb, k, k, perm)
