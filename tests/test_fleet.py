"""Fleet-serving tests (S30): degradation ladder, retry-after hints,
bounded drain, the DRAIN protocol frame, hedged dispatch, the
pool+ring actuator, the supervisor loop, and the shed-or-scale chaos
drill from the ISSUE's acceptance criteria."""

import hashlib
import json
import subprocess
import sys
import threading
import time

import pytest

from repro.cluster import (
    Autoscaler,
    ClusterBackend,
    LatencyTracker,
    LoadModel,
    NodePool,
    NodeServer,
    RemoteBackend,
    TokenBucket,
    drain_address,
)
from repro.core import ProofTask, SnarkProver, make_pcs, random_circuit
from repro.core.serialize import serialize_proof
from repro.errors import AdmissionError, BackendUnavailableError, ServiceError
from repro.execution import SerialBackend
from repro.field import DEFAULT_FIELD
from repro.runtime import JsonlTraceSink, ProverSpec
from repro.service import (
    DEGRADATION_LADDER,
    BatchPolicy,
    FleetActuator,
    FleetSupervisor,
    Priority,
    ProofService,
    RuntimeProofBackend,
    ServiceStats,
    find_cluster_backend,
    launch_fleet,
    spec_key,
)

F = DEFAULT_FIELD


@pytest.fixture(scope="module")
def setup():
    cc = random_circuit(F, 48, seed=6)
    pcs = make_pcs(F, cc.r1cs, num_col_checks=4)
    prover = SnarkProver(cc.r1cs, pcs, public_indices=cc.public_indices)
    spec = ProverSpec.from_prover(prover)
    tasks = [ProofTask(i, cc.witness, cc.public_values) for i in range(16)]
    return cc, spec, tasks


@pytest.fixture(scope="module")
def serial_wire(setup):
    _, spec, tasks = setup
    proofs, _ = SerialBackend().prove_tasks(spec, tasks)
    return [serialize_proof(p, F) for p in proofs]


def _wire(proofs):
    return [serialize_proof(p, F) for p in proofs]


def _wkey(i):
    return hashlib.sha256(f"fleet-req-{i}".encode()).digest()


class GatedBackend:
    """Holds the first prove_batch until released (drain-race tests)."""

    def __init__(self, inner):
        self.inner = inner
        self.release = threading.Event()
        self.entered = threading.Event()
        self._first = True

    def prove_batch(self, circuit_key, requests):
        if self._first:
            self._first = False
            self.entered.set()
            self.release.wait(timeout=30)
        return self.inner.prove_batch(circuit_key, requests)


# -- hedging primitives --------------------------------------------------------


class TestHedgingPrimitives:
    def test_token_bucket_burst_then_refill(self):
        now = [0.0]
        bucket = TokenBucket(2.0, 3.0, clock=lambda: now[0])
        assert [bucket.try_acquire() for _ in range(3)] == [True] * 3
        assert not bucket.try_acquire()  # burst exhausted, no time passed
        now[0] += 1.0  # refills 2 tokens
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert not bucket.try_acquire()
        assert bucket.granted == 5 and bucket.denied == 2

    def test_token_bucket_caps_at_burst(self):
        now = [0.0]
        bucket = TokenBucket(100.0, 2.0, clock=lambda: now[0])
        now[0] += 60.0
        assert bucket.available == pytest.approx(2.0)

    def test_zero_budget_always_denies(self):
        bucket = TokenBucket(0.0, 0.0)
        assert not bucket.try_acquire()

    def test_latency_tracker_holds_off_until_min_samples(self):
        tracker = LatencyTracker(window=8, min_samples=4)
        for s in (0.01, 0.02, 0.03):
            tracker.record(s)
        assert tracker.percentile(95) is None
        tracker.record(0.04)
        assert tracker.percentile(95) is not None
        assert len(tracker) == 4

    def test_latency_tracker_window_slides(self):
        tracker = LatencyTracker(window=4, min_samples=2)
        for s in (10.0, 10.0, 0.01, 0.01, 0.01, 0.01):
            tracker.record(s)
        # The slow outliers fell out of the 4-sample window.
        assert tracker.percentile(95) == pytest.approx(0.01)


# -- degradation ladder & retry-after hints ------------------------------------


class TestDegradationLadder:
    def test_ladder_order_and_unknown_state(self):
        assert DEGRADATION_LADDER == (
            "healthy", "scaling", "brownout", "shedding"
        )
        stats = ServiceStats()
        assert stats.degradation_state == "healthy"
        assert stats.record_degradation("brownout") == "healthy"
        assert stats.record_degradation("brownout") is None  # no transition
        with pytest.raises(ValueError):
            stats.record_degradation("on_fire")
        assert stats.degradation_transitions == [("healthy", "brownout")]

    def test_note_scaling_moves_healthy_to_scaling(self, setup):
        _, spec, _ = setup
        backend = RuntimeProofBackend({spec_key(spec): spec})
        svc = ProofService(backend, max_queue=8, start=False)
        assert svc.degradation_state == "healthy"
        svc.note_scaling(True)
        assert svc.degradation_state == "scaling"
        svc.note_scaling(False)
        assert svc.degradation_state == "healthy"
        svc.close()

    def test_retry_after_scales_with_rung(self, setup):
        _, spec, _ = setup
        backend = RuntimeProofBackend({spec_key(spec): spec})
        policy = BatchPolicy(max_wait_seconds=0.05)
        svc = ProofService(backend, policy=policy, max_queue=8, start=False)
        hints = [svc.retry_after_hint(state) for state in DEGRADATION_LADDER]
        assert hints == sorted(hints)  # deeper rung => longer backoff
        assert hints[0] == pytest.approx(0.05)
        assert hints[-1] == pytest.approx(0.40)
        svc.close()

    def test_queue_full_rejection_carries_retry_after(self, setup):
        cc, spec, _ = setup
        key = spec_key(spec)
        gated = GatedBackend(RuntimeProofBackend({key: spec}))
        policy = BatchPolicy(max_batch_size=1, max_wait_seconds=0.0)
        svc = ProofService(gated, policy=policy, max_queue=2)
        try:
            task = ProofTask(0, cc.witness, cc.public_values)
            svc.submit(
                task, circuit_key=key, witness_key=_wkey(0),
                priority=Priority.INTERACTIVE,
            )
            assert gated.entered.wait(timeout=10)  # first batch in flight
            for i in range(1, 3):
                svc.submit(
                    task, circuit_key=key, witness_key=_wkey(i),
                    priority=Priority.INTERACTIVE,
                )
            with pytest.raises(AdmissionError) as excinfo:
                svc.submit(
                    task, circuit_key=key, witness_key=_wkey(99),
                    priority=Priority.INTERACTIVE,
                )
            err = excinfo.value
            assert err.reason == "queue_full"
            assert err.retry_after_seconds is not None
            assert err.retry_after_seconds > 0
            assert "retry after" in str(err)
            assert svc.degradation_state == "shedding"
            assert svc.stats.retry_hints["queue_full"] == pytest.approx(
                err.retry_after_seconds
            )
            # The dashboard surfaces the hint alongside the rejection.
            report = svc.stats.report()
            assert "queue_full" in report and "retry after" in report
            assert "degradation" in report
        finally:
            gated.release.set()
            svc.close()

    def test_brownout_rung_while_bulk_shedding(self, setup):
        cc, spec, _ = setup
        key = spec_key(spec)
        gated = GatedBackend(RuntimeProofBackend({key: spec}))
        policy = BatchPolicy(max_batch_size=1, max_wait_seconds=0.0)
        svc = ProofService(
            gated, policy=policy, max_queue=8,
            high_watermark=2, low_watermark=1,
        )
        try:
            task = ProofTask(0, cc.witness, cc.public_values)
            svc.submit(
                task, circuit_key=key, witness_key=_wkey(0),
                priority=Priority.INTERACTIVE,
            )
            assert gated.entered.wait(timeout=10)
            for i in range(1, 4):
                svc.submit(
                    task, circuit_key=key, witness_key=_wkey(i),
                    priority=Priority.INTERACTIVE,
                )
            with pytest.raises(AdmissionError) as excinfo:
                svc.submit(
                    task, circuit_key=key, witness_key=_wkey(50),
                    priority=Priority.BULK,
                )
            assert excinfo.value.reason == "bulk_shed"
            assert excinfo.value.retry_after_seconds is not None
            assert svc.degradation_state == "brownout"
        finally:
            gated.release.set()
            svc.close()

    def test_admission_error_attr_default_none(self):
        err = AdmissionError("queue_full")
        assert err.retry_after_seconds is None
        hinted = AdmissionError("bulk_shed", retry_after_seconds=0.25)
        assert "0.25s" in str(hinted)


# -- bounded drain on close ----------------------------------------------------


class TestBoundedDrain:
    def test_drain_timeout_fails_only_undispatched(self, setup, tmp_path):
        """An in-flight batch resolves normally; only still-queued
        requests fail, and the drain_timeout event names exactly them."""
        cc, spec, _ = setup
        key = spec_key(spec)
        path = str(tmp_path / "drain.jsonl")
        gated = GatedBackend(RuntimeProofBackend({key: spec}))
        policy = BatchPolicy(max_batch_size=1, max_wait_seconds=0.0)
        task = ProofTask(0, cc.witness, cc.public_values)
        with JsonlTraceSink(path) as sink:
            svc = ProofService(gated, policy=policy, max_queue=8, trace=sink)
            in_flight = svc.submit(task, circuit_key=key, witness_key=_wkey(0))
            assert gated.entered.wait(timeout=10)
            queued = svc.submit(task, circuit_key=key, witness_key=_wkey(1))

            released = threading.Timer(0.5, gated.release.set)
            released.start()
            try:
                svc.close(drain=True, timeout=0.1)
            finally:
                released.cancel()
                gated.release.set()

            assert in_flight.result(timeout=30) is not None
            assert in_flight.source == "proved"
            with pytest.raises(ServiceError, match="drain timed out"):
                queued.result(timeout=10)
        events = [json.loads(line) for line in open(path)]
        drains = [e for e in events if e["event"] == "drain_timeout"]
        assert len(drains) == 1
        assert drains[0]["request_ids"] == [queued.request_id]
        assert drains[0]["failed"] == 1

    def test_unbounded_drain_close_flushes_everything(self, setup):
        cc, spec, _ = setup
        key = spec_key(spec)
        backend = RuntimeProofBackend({key: spec})
        svc = ProofService(backend, max_queue=16)
        task = ProofTask(0, cc.witness, cc.public_values)
        tickets = [
            svc.submit(task, circuit_key=key, witness_key=_wkey(i))
            for i in range(4)
        ]
        svc.close(drain=True)
        assert all(t.result(timeout=30) is not None for t in tickets)


# -- DRAIN protocol frame ------------------------------------------------------


class _SlowBackend:
    """Serial backend that sleeps first — keeps a PROVE in flight."""

    def __init__(self, delay=0.3):
        self.inner = SerialBackend()
        self.delay = delay
        self.name = "slow:serial"
        self.parallelism = 1

    def prove_tasks(self, spec, tasks, *, trace=None, parent=None):
        time.sleep(self.delay)
        return self.inner.prove_tasks(spec, tasks, trace=trace, parent=parent)


class TestDrainProtocol:
    def test_drain_idle_node_then_prove_refused(self, setup):
        _, spec, tasks = setup
        server = NodeServer(backend="serial").start()
        client = RemoteBackend(server.host, server.port)
        try:
            reply = client.drain(timeout=5.0)
            assert reply["drained"] is True
            assert reply["in_flight"] == 0
            assert server.stats()["draining"] is True
            with pytest.raises(BackendUnavailableError, match="draining"):
                RemoteBackend(server.host, server.port).prove_tasks(
                    spec, tasks[:2]
                )
        finally:
            client.close()
            server.close()

    def test_drain_waits_for_in_flight_batch(self, setup, serial_wire):
        _, spec, tasks = setup
        server = NodeServer(backend=_SlowBackend(delay=0.4)).start()
        prover_client = RemoteBackend(server.host, server.port)
        box = {}

        def prove():
            box["proofs"] = prover_client.prove_tasks(spec, tasks)[0]

        worker = threading.Thread(target=prove, daemon=True)
        try:
            worker.start()
            time.sleep(0.1)  # let the PROVE land on the node
            reply = drain_address(
                f"{server.host}:{server.port}", timeout=10.0
            )
            assert reply["drained"] is True
            worker.join(timeout=30)
            # Drain waited: the in-flight batch finished, byte-identical.
            assert _wire(box["proofs"]) == serial_wire
        finally:
            prover_client.close()
            server.close()

    def test_drain_timeout_reports_not_drained(self, setup):
        _, spec, tasks = setup
        server = NodeServer(backend=_SlowBackend(delay=1.0)).start()
        prover_client = RemoteBackend(server.host, server.port)
        try:
            worker = threading.Thread(
                target=lambda: prover_client.prove_tasks(spec, tasks),
                daemon=True,
            )
            worker.start()
            time.sleep(0.1)
            reply = drain_address(
                f"{server.host}:{server.port}", timeout=0.05
            )
            assert reply["drained"] is False
            assert reply["in_flight"] >= 1
            worker.join(timeout=30)
        finally:
            prover_client.close()
            server.close()


# -- NodePool termination escalation -------------------------------------------


def test_node_pool_close_escalates_past_sigterm_ignorer():
    """A child ignoring SIGTERM must not wedge close(): the shared
    deadline expires and the pool escalates to SIGKILL."""
    pool = NodePool(terminate_timeout=0.5)
    stubborn = subprocess.Popen([
        sys.executable, "-c",
        "import signal, time; "
        "signal.signal(signal.SIGTERM, signal.SIG_IGN); "
        "time.sleep(60)",
    ])
    pool._procs.append(stubborn)
    pool._addresses.append("127.0.0.1:0")
    start = time.monotonic()
    pool.close()
    elapsed = time.monotonic() - start
    assert stubborn.poll() is not None  # killed, not still sleeping
    assert elapsed < 5.0  # bounded by terminate_timeout, not the sleep
    assert pool.size == 0


# -- hedged dispatch -----------------------------------------------------------


class _StallingBackend:
    """In-process member that always stalls — slow, never dead."""

    def __init__(self, delay=0.8):
        self.inner = SerialBackend()
        self.delay = delay
        self.calls = 0
        self.name = "stall:serial"
        self.parallelism = 1

    def prove_tasks(self, spec, tasks, *, trace=None, parent=None):
        self.calls += 1
        time.sleep(self.delay)
        return self.inner.prove_tasks(spec, tasks, trace=trace, parent=parent)

    def close(self):
        pass


def _seed_latency(cluster, seconds=0.01, count=8):
    for _ in range(count):
        cluster._latency.record(seconds)


class TestHedgedDispatch:
    def test_hedge_rescues_stalled_shard_byte_identical(
        self, setup, serial_wire
    ):
        _, spec, tasks = setup
        cluster = ClusterBackend(
            [SerialBackend(), _StallingBackend(delay=0.8)],
            min_hedge_delay_seconds=0.02,
            hedge_budget_per_second=32.0,
            hedge_budget_burst=8.0,
        )
        _seed_latency(cluster)
        assert cluster.hedge_delay() is not None
        start = time.monotonic()
        proofs, _ = cluster.prove_tasks(spec, tasks)
        elapsed = time.monotonic() - start
        assert _wire(proofs) == serial_wire
        assert cluster.hedges_issued >= 1
        assert cluster.hedges_won >= 1
        # The batch returned on the hedge, not the 0.8s stall.
        assert elapsed < 0.8
        stats = cluster.cluster_stats()["hedging"]
        assert stats["enabled"] is True
        assert stats["won"] == cluster.hedges_won

    def test_exhausted_budget_denies_hedge_but_completes(
        self, setup, serial_wire
    ):
        _, spec, tasks = setup
        stall = _StallingBackend(delay=0.4)
        cluster = ClusterBackend(
            [SerialBackend(), stall],
            min_hedge_delay_seconds=0.02,
            hedge_budget_per_second=0.0,
            hedge_budget_burst=0.0,
        )
        _seed_latency(cluster)
        proofs, _ = cluster.prove_tasks(spec, tasks)
        assert _wire(proofs) == serial_wire
        assert cluster.hedges_issued == 0
        assert cluster.hedges_denied >= 1

    def test_hedge_disabled_never_issues(self, setup, serial_wire):
        _, spec, tasks = setup
        cluster = ClusterBackend(
            [SerialBackend(), SerialBackend()], hedge=False
        )
        _seed_latency(cluster)
        assert cluster.hedge_delay() is None
        proofs, _ = cluster.prove_tasks(spec, tasks)
        assert _wire(proofs) == serial_wire
        assert cluster.hedges_issued == 0

    def test_single_member_never_hedges(self, setup, serial_wire):
        _, spec, tasks = setup
        cluster = ClusterBackend(
            [SerialBackend()], min_hedge_delay_seconds=0.0
        )
        _seed_latency(cluster)
        proofs, _ = cluster.prove_tasks(spec, tasks)
        assert _wire(proofs) == serial_wire
        assert cluster.hedges_issued == 0


# -- the actuator: pool + ring as one unit -------------------------------------


class ServerPool:
    """In-process NodePool stand-in: real NodeServers, no subprocesses."""

    def __init__(self):
        self._servers = []

    def spawn(self, extra_args=()):
        server = NodeServer(backend="serial").start()
        self._servers.append(server)
        return f"{server.host}:{server.port}"

    @property
    def size(self):
        return len(self._servers)

    @property
    def addresses(self):
        return [f"{s.host}:{s.port}" for s in self._servers]

    def retire(self, *, drain_timeout=None):
        if not self._servers:
            return None
        server = self._servers.pop()
        address = f"{server.host}:{server.port}"
        if drain_timeout is not None:
            drain_address(address, timeout=drain_timeout)
        server.close()
        return address

    def reap(self):
        return []

    def backends(self):
        return [RemoteBackend(s.host, s.port) for s in self._servers]

    def close(self):
        while self._servers:
            self._servers.pop().close()


class TestFleetActuator:
    def test_grow_and_shrink_keep_pool_and_ring_in_lockstep(
        self, setup, serial_wire
    ):
        _, spec, tasks = setup
        pool = ServerPool()
        pool.spawn()
        cluster = ClusterBackend(pool.backends())
        actuator = FleetActuator(pool, cluster, drain_timeout_seconds=5.0)
        try:
            assert actuator.size == 1
            assert len(actuator._members) == 1  # adopt() mapped the seed node

            actuator.grow_to(3)
            assert pool.size == 3
            assert len(cluster.members) == 3
            proofs, _ = cluster.prove_tasks(spec, tasks)
            assert _wire(proofs) == serial_wire

            actuator.shrink_to(1)  # unroute -> DRAIN -> close, LIFO
            assert pool.size == 1
            assert len(cluster.members) == 1
            proofs, _ = cluster.prove_tasks(spec, tasks)
            assert _wire(proofs) == serial_wire
        finally:
            actuator.close()
        assert pool.size == 0

    def test_autoscaler_delegates_to_actuator_seam(self, setup):
        _, spec, _ = setup
        pool = ServerPool()
        pool.spawn()
        cluster = ClusterBackend(pool.backends())
        actuator = FleetActuator(pool, cluster)
        scaler = Autoscaler(
            LoadModel(per_proof_seconds=1.0, node_parallelism=1),
            actuator,
            min_nodes=1,
            max_nodes=3,
            cooldown_seconds=0.0,
            shrink_patience=1,
        )
        try:
            decision = scaler.observe(2.0)  # needs ceil(2/0.8) = 3 nodes
            assert decision["action"] == "grow"
            assert pool.size == 3 and len(cluster.members) == 3
            decision = scaler.observe(0.0)
            assert decision["action"] == "shrink"
            assert pool.size == 1 and len(cluster.members) == 1
        finally:
            actuator.close()


# -- the supervisor loop -------------------------------------------------------


class TestFleetSupervisor:
    def test_bad_interval_rejected(self, setup):
        _, spec, _ = setup
        backend = RuntimeProofBackend({spec_key(spec): spec})
        svc = ProofService(backend, max_queue=8, start=False)
        scaler = Autoscaler(LoadModel(per_proof_seconds=0.1))
        with pytest.raises(ServiceError, match="interval_seconds"):
            FleetSupervisor(svc, scaler, interval_seconds=0.0)
        svc.close()

    def test_tick_feeds_rate_and_reflects_scaling(self, setup):
        """A grow decision flips the service to the scaling rung; the
        next at-target tick flips it back to healthy."""
        cc, spec, _ = setup
        key = spec_key(spec)
        backend = RuntimeProofBackend({key: spec})
        svc = ProofService(backend, max_queue=64)
        scaler = Autoscaler(
            LoadModel(per_proof_seconds=0.5, node_parallelism=1),
            min_nodes=1,
            max_nodes=3,
            cooldown_seconds=0.0,
        )
        supervisor = FleetSupervisor(svc, scaler, interval_seconds=0.05)
        try:
            task = ProofTask(0, cc.witness, cc.public_values)
            for i in range(3):  # microseconds apart => huge arrival rate
                svc.submit(task, circuit_key=key, witness_key=_wkey(i))
            decision = supervisor.tick()
            assert decision["action"] == "grow"
            assert svc.degradation_state == "scaling"
            decision = supervisor.tick()  # dry-run fleet now at target
            assert decision["action"] == "hold"
            assert svc.degradation_state == "healthy"
            assert supervisor.ticks == 2
        finally:
            supervisor.stop()
            svc.close()

    def test_loop_survives_tick_errors(self, setup):
        _, spec, _ = setup
        backend = RuntimeProofBackend({spec_key(spec): spec})
        svc = ProofService(backend, max_queue=8)

        class ExplodingScaler:
            current_nodes = 1

            def observe(self, rate):
                raise RuntimeError("actuator on fire")

        supervisor = FleetSupervisor(
            svc, ExplodingScaler(), interval_seconds=0.02
        )
        try:
            supervisor.start()
            deadline = time.monotonic() + 5.0
            while supervisor.errors < 2 and time.monotonic() < deadline:
                time.sleep(0.02)
            assert supervisor.errors >= 2  # kept ticking through failures
            assert supervisor.is_alive()
        finally:
            supervisor.stop()
            svc.close()


# -- launch_fleet & backend discovery ------------------------------------------


def test_launch_fleet_end_to_end(setup, serial_wire):
    _, spec, tasks = setup
    with launch_fleet("serial", initial_nodes=1) as fleet:
        assert fleet.pool.size == 1
        assert find_cluster_backend(fleet.backend) is fleet.cluster
        backend = RuntimeProofBackend({spec_key(spec): spec},
                                      backend=fleet.backend)
        assert find_cluster_backend(backend) is fleet.cluster
        proofs, _ = fleet.backend.prove_tasks(spec, tasks)
        assert _wire(proofs) == serial_wire
    assert fleet.pool.size == 0  # close() tore the node down


def test_find_cluster_backend_negative():
    assert find_cluster_backend(SerialBackend()) is None
    assert find_cluster_backend(None) is None


def test_prediction_backend_resolves_selector_once():
    from repro.zkml.service import _PredictionBackend

    bridged = _PredictionBackend(None, 1, "serial")
    assert isinstance(bridged.backend, SerialBackend)
    assert _PredictionBackend(None, 1, None).backend is None


# -- the chaos drill (ISSUE acceptance) ----------------------------------------


def test_shed_or_scale_chaos_drill(setup, serial_wire):
    """Poisson-ish load over `resilient:cluster:` of real node
    subprocesses; one node hard-exits mid-stream while the supervisor
    scales back up.  Every admitted ticket must resolve byte-identical
    to serial and the fleet must recover to its floor."""
    from repro.resilience import ResilientBackend

    cc, spec, tasks = setup
    key = spec_key(spec)
    pool = NodePool(backend="serial")
    supervisor = None
    service = None
    try:
        pool.spawn(extra_args=("--die-after", "4"))
        pool.spawn()
        cluster = ClusterBackend(pool.backends(), cooldown_seconds=0.05)
        actuator = FleetActuator(pool, cluster, drain_timeout_seconds=5.0)
        assert len(actuator._members) == 2
        backend = RuntimeProofBackend(
            {key: spec}, backend=ResilientBackend(cluster)
        )
        service = ProofService(
            backend,
            policy=BatchPolicy(max_batch_size=4, max_wait_seconds=0.01),
            max_queue=256,
        )
        scaler = Autoscaler(
            LoadModel(per_proof_seconds=0.05, node_parallelism=1),
            actuator,
            min_nodes=2,  # the floor forces a dead node's replacement
            max_nodes=3,
            cooldown_seconds=0.0,
            shrink_patience=1000,  # never shrink during the drill
        )
        supervisor = FleetSupervisor(
            service, scaler, actuator, interval_seconds=0.1
        )
        supervisor.start()

        tickets = []
        for i, task in enumerate(tasks):
            tickets.append(service.submit(
                task, circuit_key=key, witness_key=_wkey(i),
                priority=Priority.INTERACTIVE,
            ))
            time.sleep(0.02)  # stream, so the chaos node dies mid-flight

        # 100% of admitted tickets complete, byte-identical to serial.
        proofs = [t.result(timeout=120) for t in tickets]
        assert _wire(proofs) == serial_wire

        # The supervisor reaped the dead node and grew back to at least
        # the floor (demand may carry it to max_nodes — that is the
        # "scale" half of shed-or-scale, not a leak).
        deadline = time.monotonic() + 30.0
        while pool.size < 2 and time.monotonic() < deadline:
            time.sleep(0.1)
        assert 2 <= pool.size <= 3
        assert len(cluster.members) == pool.size
        assert service.stats.failed == 0
    finally:
        if supervisor is not None:
            supervisor.stop()
        if service is not None:
            service.close()
        pool.close()
