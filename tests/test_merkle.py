"""Merkle tree tests: construction, openings, tampering, streaming."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MerkleError
from repro.field import DEFAULT_FIELD
from repro.hashing import get_hasher
from repro.merkle import (
    BLOCK_SIZE,
    MerklePath,
    MerkleTree,
    iter_layer_sizes,
    merkle_root_streaming,
    roots_over_roots,
    total_hashes,
)

HASHER = get_hasher("sha256-hw")


def blocks(n, salt=0):
    return [bytes([i % 256, salt % 256]) * 32 for i in range(n)]


class TestConstruction:
    def test_single_leaf(self):
        tree = MerkleTree.from_blocks(blocks(1), HASHER)
        assert tree.depth == 0
        assert tree.root == tree.layers[0][0]

    @pytest.mark.parametrize("n", [2, 3, 4, 7, 8, 13, 16, 33])
    def test_layer_structure(self, n):
        tree = MerkleTree.from_blocks(blocks(n), HASHER)
        padded = tree.padded_leaves
        assert padded & (padded - 1) == 0
        assert len(tree.layers[-1]) == 1
        for lower, upper in zip(tree.layers, tree.layers[1:]):
            assert len(upper) == len(lower) // 2

    def test_zero_leaves_raise(self):
        with pytest.raises(MerkleError):
            MerkleTree([], HASHER)

    def test_bad_leaf_size_raises(self):
        with pytest.raises(MerkleError):
            MerkleTree([b"short"], HASHER)

    def test_root_deterministic(self):
        assert (
            MerkleTree.from_blocks(blocks(9), HASHER).root
            == MerkleTree.from_blocks(blocks(9), HASHER).root
        )

    def test_root_changes_with_any_block(self):
        base = MerkleTree.from_blocks(blocks(8), HASHER).root
        for i in range(8):
            data = blocks(8)
            data[i] = b"\xff" * 64
            assert MerkleTree.from_blocks(data, HASHER).root != base

    def test_hash_count_matches_closed_form(self):
        tree = MerkleTree.from_blocks(blocks(16), HASHER)
        # total_hashes counts leaves too; tree.hash_count() only interior.
        assert tree.hash_count() == total_hashes(16) - 16

    def test_from_field_vectors(self):
        F = DEFAULT_FIELD
        cols = [[1, 2, 3], [4, 5, 6], [7, 8, 9], [1, 1, 1]]
        tree = MerkleTree.from_field_vectors(F, cols, HASHER)
        want_leaf = HASHER.hash_bytes(F.vector_to_bytes([4, 5, 6]))
        assert tree.leaf(1) == want_leaf


class TestOpenings:
    @pytest.mark.parametrize("n", [2, 5, 8, 16])
    def test_all_paths_verify(self, n):
        tree = MerkleTree.from_blocks(blocks(n), HASHER)
        for i in range(n):
            assert tree.open(i).verify(tree.root, HASHER)

    def test_path_depth(self):
        tree = MerkleTree.from_blocks(blocks(16), HASHER)
        assert tree.open(3).depth == 4

    def test_out_of_range_raises(self):
        tree = MerkleTree.from_blocks(blocks(8), HASHER)
        with pytest.raises(MerkleError):
            tree.open(8)
        with pytest.raises(MerkleError):
            tree.open(-1)

    def test_open_many(self):
        tree = MerkleTree.from_blocks(blocks(8), HASHER)
        paths = tree.open_many([0, 3, 7])
        assert [p.index for p in paths] == [0, 3, 7]

    def test_wrong_root_rejected(self):
        tree = MerkleTree.from_blocks(blocks(8), HASHER)
        assert not tree.open(0).verify(b"\x00" * 32, HASHER)

    def test_tampered_leaf_rejected(self):
        tree = MerkleTree.from_blocks(blocks(8), HASHER)
        path = tree.open(2)
        bad = MerklePath(index=path.index, leaf=b"\x13" * 32, siblings=path.siblings)
        assert not bad.verify(tree.root, HASHER)

    def test_tampered_sibling_rejected(self):
        tree = MerkleTree.from_blocks(blocks(8), HASHER)
        path = tree.open(2)
        sib = list(path.siblings)
        sib[1] = b"\x13" * 32
        bad = MerklePath(index=path.index, leaf=path.leaf, siblings=sib)
        assert not bad.verify(tree.root, HASHER)

    def test_wrong_index_rejected(self):
        tree = MerkleTree.from_blocks(blocks(8), HASHER)
        path = tree.open(2)
        moved = MerklePath(index=3, leaf=path.leaf, siblings=path.siblings)
        assert not moved.verify(tree.root, HASHER)

    @given(idx=st.integers(min_value=0, max_value=15))
    @settings(max_examples=16, deadline=None)
    def test_property_open_verify(self, idx):
        tree = MerkleTree.from_blocks(blocks(16), HASHER)
        assert tree.open(idx).verify(tree.root, HASHER)


class TestPathSerialization:
    def test_roundtrip(self):
        tree = MerkleTree.from_blocks(blocks(8), HASHER)
        path = tree.open(5)
        again = MerklePath.from_bytes(path.to_bytes())
        assert again == path
        assert again.verify(tree.root, HASHER)

    def test_malformed_bytes(self):
        with pytest.raises(MerkleError):
            MerklePath.from_bytes(b"\x00" * 10)

    def test_size_bytes(self):
        tree = MerkleTree.from_blocks(blocks(8), HASHER)
        path = tree.open(0)
        assert path.size_bytes() == 32 * (1 + 3) + 8

    def test_index_too_deep_rejected(self):
        with pytest.raises(MerkleError):
            MerklePath(index=4, leaf=b"\x00" * 32, siblings=[b"\x00" * 32] * 2)


class TestStreamingAndHelpers:
    @pytest.mark.parametrize("n", [1, 2, 5, 8, 16, 31])
    def test_streaming_matches_tree(self, n):
        data = blocks(n)
        assert merkle_root_streaming(data, HASHER) == MerkleTree.from_blocks(
            data, HASHER
        ).root

    def test_streaming_empty_raises(self):
        with pytest.raises(MerkleError):
            merkle_root_streaming([], HASHER)

    def test_iter_layer_sizes(self):
        assert list(iter_layer_sizes(8)) == [8, 4, 2, 1]
        assert list(iter_layer_sizes(5)) == [8, 4, 2, 1]

    def test_total_hashes_closed_form(self):
        assert total_hashes(8) == 15  # 2N - 1
        assert total_hashes(1) == 1

    def test_layer_sizes_validation(self):
        with pytest.raises(MerkleError):
            list(iter_layer_sizes(0))

    def test_roots_over_roots(self):
        """§4: per-segment roots feed a second-level tree."""
        segment_roots = [
            MerkleTree.from_blocks(blocks(4, salt=s), HASHER).root for s in range(4)
        ]
        final = roots_over_roots(segment_roots, HASHER)
        assert final == MerkleTree(segment_roots, HASHER).root

    def test_block_size_constant(self):
        assert BLOCK_SIZE == 64  # 512-bit blocks, as in the paper
