"""Sum-check protocol tests: Algorithm 1, product sum-check, verifiers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SumcheckError
from repro.field import DEFAULT_FIELD, MultilinearPolynomial
from repro.sumcheck import (
    MultilinearSumcheckProver,
    ProductSumcheckProver,
    RoundCheckFailure,
    evaluation_point,
    hypercube_sum,
    prove_multilinear,
    verify_multilinear,
    verify_multilinear_rounds,
    verify_product,
    verify_product_rounds,
)

F = DEFAULT_FIELD


def random_instance(rng, n=5):
    ml = MultilinearPolynomial.random(F, n, rng)
    rs = F.rand_vector(n, rng)
    return ml, rs


class TestAlgorithm1:
    def test_proof_shape(self, rng):
        ml, rs = random_instance(rng, 6)
        proof = prove_multilinear(F, ml.evals, rs)
        assert len(proof) == 6
        assert all(len(pair) == 2 for pair in proof)

    def test_first_round_sums_to_h(self, rng):
        ml, rs = random_instance(rng)
        proof = prove_multilinear(F, ml.evals, rs)
        pi11, pi12 = proof[0]
        assert (pi11 + pi12) % F.modulus == ml.hypercube_sum()

    def test_completeness(self, rng):
        for n in (1, 2, 4, 7):
            ml, rs = random_instance(rng, n)
            proof = prove_multilinear(F, ml.evals, rs)
            oracle = ml.evaluate(evaluation_point(rs))
            assert verify_multilinear(F, ml.hypercube_sum(), proof, rs, oracle)

    def test_wrong_claim_rejected(self, rng):
        ml, rs = random_instance(rng)
        proof = prove_multilinear(F, ml.evals, rs)
        oracle = ml.evaluate(evaluation_point(rs))
        bad = (ml.hypercube_sum() + 1) % F.modulus
        assert not verify_multilinear(F, bad, proof, rs, oracle)

    def test_tampered_round_rejected(self, rng):
        ml, rs = random_instance(rng)
        proof = prove_multilinear(F, ml.evals, rs)
        oracle = ml.evaluate(evaluation_point(rs))
        for i in range(len(proof)):
            bad = list(proof)
            bad[i] = ((bad[i][0] + 1) % F.modulus, bad[i][1])
            assert not verify_multilinear(F, ml.hypercube_sum(), bad, rs, oracle)

    def test_wrong_oracle_rejected(self, rng):
        ml, rs = random_instance(rng)
        proof = prove_multilinear(F, ml.evals, rs)
        oracle = (ml.evaluate(evaluation_point(rs)) + 1) % F.modulus
        assert not verify_multilinear(F, ml.hypercube_sum(), proof, rs, oracle)

    def test_bad_table_length(self):
        with pytest.raises(SumcheckError):
            prove_multilinear(F, [1, 2, 3], [0, 0])

    def test_wrong_random_count(self):
        with pytest.raises(SumcheckError):
            prove_multilinear(F, [1, 2, 3, 4], [1])

    @given(n=st.integers(min_value=1, max_value=6), seed=st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_property_completeness(self, n, seed):
        import random as _random

        rng = _random.Random(seed)
        ml = MultilinearPolynomial.random(F, n, rng)
        rs = F.rand_vector(n, rng)
        proof = prove_multilinear(F, ml.evals, rs)
        oracle = ml.evaluate(evaluation_point(rs))
        assert verify_multilinear(F, ml.hypercube_sum(), proof, rs, oracle)


class TestRoundAtATimeProver:
    def test_matches_oneshot(self, rng):
        ml, rs = random_instance(rng, 5)
        prover = MultilinearSumcheckProver(F, ml.evals)
        rounds = [prover.round(r) for r in rs]
        assert rounds == prove_multilinear(F, ml.evals, rs)

    def test_final_value_is_evaluation(self, rng):
        ml, rs = random_instance(rng, 5)
        prover = MultilinearSumcheckProver(F, ml.evals)
        for r in rs:
            prover.round(r)
        assert prover.final_value() == ml.evaluate(evaluation_point(rs))

    def test_round_message_does_not_advance(self, rng):
        ml, _ = random_instance(rng, 4)
        prover = MultilinearSumcheckProver(F, ml.evals)
        assert prover.round_message() == prover.round_message()
        assert prover.rounds_remaining == 4

    def test_too_many_rounds(self, rng):
        ml, rs = random_instance(rng, 3)
        prover = MultilinearSumcheckProver(F, ml.evals)
        for r in rs:
            prover.round(r)
        with pytest.raises(SumcheckError):
            prover.round(0)

    def test_early_finalize_raises(self, rng):
        ml, _ = random_instance(rng, 3)
        prover = MultilinearSumcheckProver(F, ml.evals)
        with pytest.raises(SumcheckError):
            prover.final_value()


class TestProductSumcheck:
    @pytest.mark.parametrize("k", [1, 2, 3, 4])
    def test_completeness_degree_k(self, rng, k):
        n = 4
        factors = [MultilinearPolynomial.random(F, n, rng) for _ in range(k)]
        prover = ProductSumcheckProver(F, [f.evals for f in factors])
        claimed = prover.claimed_sum
        rounds, chals = [], []
        for _ in range(n):
            rounds.append(prover.round_polynomial())
            r = F.rand(rng)
            chals.append(r)
            prover.fold(r)
        final = verify_product_rounds(F, claimed, rounds, chals, k)
        pt = evaluation_point(chals)
        want = 1
        for f in factors:
            want = (want * f.evaluate(pt)) % F.modulus
        assert final == want == prover.final_value()

    def test_single_factor_equals_algorithm1(self, rng):
        ml, rs = random_instance(rng, 4)
        pp = ProductSumcheckProver(F, [ml.evals])
        pairs = prove_multilinear(F, ml.evals, rs)
        for (pi1, pi2), r in zip(pairs, rs):
            evals = pp.round_polynomial()
            assert evals == [pi1, pi2]
            pp.fold(r)

    def test_claimed_sum_is_product_sum(self, rng):
        a = MultilinearPolynomial.random(F, 3, rng)
        b = MultilinearPolynomial.random(F, 3, rng)
        pp = ProductSumcheckProver(F, [a.evals, b.evals])
        want = sum(x * y for x, y in zip(a.evals, b.evals)) % F.modulus
        assert pp.claimed_sum == want

    def test_final_factor_values(self, rng):
        a = MultilinearPolynomial.random(F, 3, rng)
        b = MultilinearPolynomial.random(F, 3, rng)
        pp = ProductSumcheckProver(F, [a.evals, b.evals])
        chals = []
        for _ in range(3):
            r = F.rand(rng)
            pp.round(r)
            chals.append(r)
        pt = evaluation_point(chals)
        assert pp.final_factor_values() == [a.evaluate(pt), b.evaluate(pt)]

    def test_mismatched_lengths(self):
        with pytest.raises(SumcheckError):
            ProductSumcheckProver(F, [[1, 2, 3, 4], [1, 2]])

    def test_empty_factors(self):
        with pytest.raises(SumcheckError):
            ProductSumcheckProver(F, [])

    def test_verify_product_full(self, rng):
        a = MultilinearPolynomial.random(F, 4, rng)
        b = MultilinearPolynomial.random(F, 4, rng)
        pp = ProductSumcheckProver(F, [a.evals, b.evals])
        claimed = pp.claimed_sum
        rounds, chals = [], []
        for _ in range(4):
            rounds.append(pp.round_polynomial())
            r = F.rand(rng)
            chals.append(r)
            pp.fold(r)
        oracle = pp.final_value()
        assert verify_product(F, claimed, rounds, chals, 2, oracle)
        assert not verify_product(F, claimed, rounds, chals, 2, oracle + 1)


class TestVerifierEdgeCases:
    def test_round_check_failure_details(self, rng):
        ml, rs = random_instance(rng, 3)
        proof = prove_multilinear(F, ml.evals, rs)
        bad = [((p[0] + 1) % F.modulus, p[1]) for p in proof[:1]] + list(proof[1:])
        with pytest.raises(RoundCheckFailure) as exc:
            verify_multilinear_rounds(F, ml.hypercube_sum(), bad, rs)
        assert exc.value.round_index == 0

    def test_mismatched_round_count(self):
        with pytest.raises(SumcheckError):
            verify_multilinear_rounds(F, 0, [(0, 0)], [1, 2])

    def test_wrong_eval_count_in_product(self):
        with pytest.raises(SumcheckError):
            verify_product_rounds(F, 0, [[0, 0, 0]], [1], degree=3)

    def test_hypercube_sum_helper(self):
        assert hypercube_sum(F, [1, 2, 3]) == 6
