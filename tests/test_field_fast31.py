"""Tests for the vectorised Mersenne-31 fast field."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FieldError, NonInvertibleError
from repro.field import (
    F31Vector,
    MERSENNE31,
    as_f31,
    f31_add,
    f31_dot,
    f31_inv,
    f31_mul,
    f31_neg,
    f31_random,
    f31_scale,
    f31_sub,
    f31_sum,
)

P = MERSENNE31
residues = st.lists(
    st.integers(min_value=0, max_value=P - 1), min_size=1, max_size=40
)


def _np(vals):
    return np.asarray(vals, dtype=np.uint64)


class TestKernels:
    @given(vals=residues)
    @settings(max_examples=50)
    def test_mul_matches_python(self, vals):
        a = _np(vals)
        got = f31_mul(a, a)
        want = [(v * v) % P for v in vals]
        assert [int(x) for x in got] == want

    @given(vals=residues)
    @settings(max_examples=50)
    def test_add_sub_inverse(self, vals):
        a = _np(vals)
        b = _np(list(reversed(vals)))
        assert np.array_equal(f31_sub(f31_add(a, b), b), a)

    def test_extreme_values(self):
        a = _np([P - 1, P - 1])
        assert [int(x) for x in f31_mul(a, a)] == [pow(P - 1, 2, P)] * 2
        assert [int(x) for x in f31_add(a, a)] == [(2 * (P - 1)) % P] * 2

    def test_neg(self):
        a = _np([0, 1, P - 1])
        assert [int(x) for x in f31_neg(a)] == [0, P - 1, 1]

    def test_scale(self):
        a = _np([1, 2, 3])
        assert [int(x) for x in f31_scale(P - 1, a)] == [
            ((P - 1) * v) % P for v in (1, 2, 3)
        ]

    def test_sum_large_vector_exact(self):
        a = np.full(1 << 21, P - 1, dtype=np.uint64)
        assert f31_sum(a) == ((P - 1) * (1 << 21)) % P

    def test_dot_matches_python(self):
        rng = np.random.default_rng(1)
        a = rng.integers(0, P, 1000, dtype=np.uint64)
        b = rng.integers(0, P, 1000, dtype=np.uint64)
        want = sum(int(x) * int(y) for x, y in zip(a, b)) % P
        assert f31_dot(a, b) == want

    def test_dot_shape_mismatch(self):
        with pytest.raises(FieldError):
            f31_dot(_np([1]), _np([1, 2]))

    def test_inv(self):
        for v in (1, 2, P - 1, 12345):
            assert (f31_inv(v) * v) % P == 1

    def test_inv_zero_raises(self):
        with pytest.raises(NonInvertibleError):
            f31_inv(0)

    def test_as_f31_reduces(self):
        assert [int(x) for x in as_f31([P, P + 1, 2 * P + 5])] == [0, 1, 5]

    def test_random_in_range(self):
        vals = f31_random(1000, np.random.default_rng(0))
        assert vals.max() < P


class TestF31Vector:
    def test_construction_and_len(self):
        v = F31Vector([1, 2, 3])
        assert len(v) == 3

    def test_indexing(self):
        v = F31Vector([10, 20, 30])
        assert v[1] == 20
        assert isinstance(v[1], int)
        assert v[0:2].tolist() == [10, 20]

    def test_arithmetic(self):
        v = F31Vector([1, 2, 3])
        w = F31Vector([4, 5, 6])
        assert (v + w).tolist() == [5, 7, 9]
        assert (w - v).tolist() == [3, 3, 3]
        assert (v * w).tolist() == [4, 10, 18]
        assert (3 * v).tolist() == [3, 6, 9]
        assert (-v).tolist() == [P - 1, P - 2, P - 3]

    def test_dot_and_sum(self):
        v = F31Vector([1, 2, 3])
        assert v.dot(v) == 14
        assert v.sum() == 6

    def test_equality(self):
        assert F31Vector([1, 2]) == F31Vector([1, 2])
        assert F31Vector([1, 2]) != F31Vector([2, 1])

    def test_copy_semantics(self):
        v = F31Vector([1, 2])
        w = F31Vector(v)
        w.data[0] = 99
        assert v[0] == 1
