"""Shared fixtures for the test suite."""

import random

import pytest

from repro.field import DEFAULT_FIELD, PrimeField
from repro.field.primes import BN254_SCALAR, GOLDILOCKS, MERSENNE31


@pytest.fixture
def field():
    """The library's default field (Mersenne-61)."""
    return DEFAULT_FIELD


@pytest.fixture
def small_field():
    """A tiny field where exhaustive checks are feasible."""
    return PrimeField(97)


@pytest.fixture(params=["m61", "m31", "goldilocks", "bn254"])
def any_field(request):
    """Sweep representative field sizes (31-bit to 254-bit)."""
    moduli = {
        "m61": DEFAULT_FIELD.modulus,
        "m31": MERSENNE31,
        "goldilocks": GOLDILOCKS,
        "bn254": BN254_SCALAR,
    }
    return PrimeField(moduli[request.param], name=request.param, check=False)


@pytest.fixture
def rng():
    return random.Random(0xBA7C4)
