"""Whole-protocol property tests: randomized circuits, fields, and seeds.

These hypothesis sweeps exercise the full prove/verify stack end to end
under randomized shapes — the highest-level completeness property the
repository claims.
"""

import random as _random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SnarkProver, SnarkVerifier, make_pcs, random_circuit
from repro.field import DEFAULT_FIELD, PrimeField
from repro.field.primes import BN254_SCALAR, GOLDILOCKS, MERSENNE31
from repro.gkr import GkrProver, GkrVerifier, random_layered_circuit

FIELDS = {
    "m61": DEFAULT_FIELD,
    "m31": PrimeField(MERSENNE31, name="m31", check=False),
    "goldilocks": PrimeField(GOLDILOCKS, name="goldilocks", check=False),
    "bn254": PrimeField(BN254_SCALAR, name="bn254", check=False),
}


class TestSnarkProperties:
    @given(
        gates=st.integers(min_value=2, max_value=60),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=12, deadline=None)
    def test_random_circuits_complete(self, gates, seed):
        cc = random_circuit(DEFAULT_FIELD, gates, seed=seed)
        pcs = make_pcs(DEFAULT_FIELD, cc.r1cs, num_col_checks=4)
        prover = SnarkProver(cc.r1cs, pcs, public_indices=cc.public_indices)
        verifier = SnarkVerifier(cc.r1cs, pcs, public_indices=cc.public_indices)
        proof = prover.prove(cc.witness, cc.public_values)
        assert verifier.verify(proof, cc.public_values)

    @given(
        field_name=st.sampled_from(sorted(FIELDS)),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=8, deadline=None)
    def test_field_agnostic(self, field_name, seed):
        field = FIELDS[field_name]
        cc = random_circuit(field, 16, seed=seed)
        pcs = make_pcs(field, cc.r1cs, num_col_checks=4)
        prover = SnarkProver(cc.r1cs, pcs, public_indices=cc.public_indices)
        verifier = SnarkVerifier(cc.r1cs, pcs, public_indices=cc.public_indices)
        proof = prover.prove(cc.witness, cc.public_values)
        assert verifier.verify(proof, cc.public_values)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_forged_public_value_always_rejected(self, seed):
        rng = _random.Random(seed)
        cc = random_circuit(DEFAULT_FIELD, 16, seed=seed)
        pcs = make_pcs(DEFAULT_FIELD, cc.r1cs, num_col_checks=4)
        prover = SnarkProver(cc.r1cs, pcs, public_indices=cc.public_indices)
        verifier = SnarkVerifier(cc.r1cs, pcs, public_indices=cc.public_indices)
        proof = prover.prove(cc.witness, cc.public_values)
        delta = rng.randrange(1, DEFAULT_FIELD.modulus)
        forged = [(cc.public_values[0] + delta) % DEFAULT_FIELD.modulus]
        assert not verifier.verify(proof, forged)


class TestGkrProperties:
    @given(
        depth=st.integers(min_value=1, max_value=4),
        width=st.sampled_from((4, 8, 16)),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=10, deadline=None)
    def test_random_layered_complete(self, depth, width, seed):
        rng = _random.Random(seed)
        circuit = random_layered_circuit(
            DEFAULT_FIELD, depth=depth, width=width, input_size=8, seed=seed
        )
        inputs = DEFAULT_FIELD.rand_vector(8, rng)
        proof = GkrProver(circuit).prove(inputs)
        assert GkrVerifier(circuit).verify(inputs, proof)

    @given(seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=8, deadline=None)
    def test_gkr_outputs_match_direct_evaluation(self, seed):
        rng = _random.Random(seed)
        circuit = random_layered_circuit(
            DEFAULT_FIELD, depth=3, width=8, input_size=8, seed=seed
        )
        inputs = DEFAULT_FIELD.rand_vector(8, rng)
        proof = GkrProver(circuit).prove(inputs)
        assert proof.outputs == circuit.outputs(inputs)
