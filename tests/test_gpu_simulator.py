"""GPU simulator tests: devices, kernels, memory, streams, schedulers."""

import pytest

from repro.errors import SimulationError
from repro.gpu import (
    CPU_C5A_8XLARGE,
    GPU_CATALOG,
    GpuCostModel,
    KernelStage,
    MemoryTracker,
    ModuleGraph,
    TransferEngine,
    allocate_threads_proportional,
    allocate_threads_uniform,
    dynamic_footprint_blocks,
    get_gpu,
    preload_footprint_blocks,
    run_cpu,
    run_naive,
    run_pipelined,
)


def toy_graph(layers=4, base_work=64):
    """A halving module graph (Merkle-shaped)."""
    stages = [
        KernelStage(
            name=f"s{k}",
            work_units=base_work >> k,
            cycles_per_unit=100.0,
            bytes_in=1000 if k == 0 else 0,
            bytes_out=100,
            memory_bytes=(base_work >> k) * 10,
            unit="hash",
        )
        for k in range(layers)
    ]
    return ModuleGraph(name="toy", stages=stages)


class TestDeviceCatalog:
    def test_paper_devices_present(self):
        assert {"V100", "A100", "3090Ti", "H100", "GH200"} <= set(GPU_CATALOG)

    def test_unknown_raises(self):
        with pytest.raises(SimulationError):
            get_gpu("TPUv4")

    def test_v100_matches_paper_setup(self):
        v100 = get_gpu("V100")
        assert v100.cuda_cores == 5120  # "GPU V100 card with 5,120 CUDA cores"

    def test_cycles_roundtrip(self):
        gpu = get_gpu("V100")
        assert gpu.seconds_to_cycles(gpu.cycles_to_seconds(1e6)) == pytest.approx(1e6)

    def test_transfer_seconds_matches_table9(self):
        """320 MB per beat: V100 22.95 ms, H100 4.90 ms (Table 9)."""
        mb320 = 320 * 1e6
        assert get_gpu("V100").transfer_seconds(mb320) == pytest.approx(
            22.95e-3, rel=0.05
        )
        assert get_gpu("H100").transfer_seconds(mb320) == pytest.approx(
            4.90e-3, rel=0.05
        )

    def test_cpu_spec(self):
        assert CPU_C5A_8XLARGE.cores == 32  # §6.1 c5a.8xlarge
        assert CPU_C5A_8XLARGE.effective_parallelism > 1


class TestKernelStage:
    def test_duration_ceil(self):
        s = KernelStage("x", work_units=10, cycles_per_unit=5.0)
        assert s.duration_cycles(3) == 4 * 5.0  # ceil(10/3) waves
        assert s.duration_cycles(10) == 5.0
        assert s.duration_cycles(100) == 5.0

    def test_zero_work(self):
        s = KernelStage("x", work_units=0, cycles_per_unit=5.0)
        assert s.duration_cycles(1) == 0.0

    def test_invalid_params(self):
        with pytest.raises(SimulationError):
            KernelStage("x", work_units=-1, cycles_per_unit=1.0)
        with pytest.raises(SimulationError):
            KernelStage("x", work_units=1, cycles_per_unit=0.0)

    def test_no_threads_raises(self):
        s = KernelStage("x", work_units=10, cycles_per_unit=5.0)
        with pytest.raises(SimulationError):
            s.duration_cycles(0)

    def test_graph_aggregates(self):
        g = toy_graph()
        assert g.total_work_cycles() == sum(s.total_cycles for s in g.stages)
        assert g.total_bytes_in() == 1000
        assert g.total_bytes_out() == 400
        assert len(g) == 4


class TestAllocator:
    def test_exact_total(self):
        g = toy_graph()
        alloc = allocate_threads_proportional(g.stages, 100)
        assert sum(alloc) == 100
        assert all(a >= 1 for a in alloc)

    def test_minimax_near_ideal(self):
        g = toy_graph(layers=6, base_work=1 << 14)
        alloc = allocate_threads_proportional(g.stages, 1024)
        beat = max(s.duration_cycles(a) for s, a in zip(g.stages, alloc))
        ideal = g.total_work_cycles() / 1024
        assert beat <= ideal * 1.25

    def test_monotone_stage_sizes_get_monotone_threads(self):
        g = toy_graph(layers=4, base_work=1 << 10)
        alloc = allocate_threads_proportional(g.stages, 512)
        assert alloc == sorted(alloc, reverse=True)

    def test_too_few_threads(self):
        g = toy_graph(layers=4)
        with pytest.raises(SimulationError):
            allocate_threads_proportional(g.stages, 3)

    def test_uniform_split(self):
        g = toy_graph(layers=4)
        alloc = allocate_threads_uniform(g.stages, 10)
        assert sum(alloc) == 10
        assert max(alloc) - min(alloc) <= 3

    def test_proportional_beats_uniform(self):
        g = toy_graph(layers=6, base_work=1 << 14)
        prop = allocate_threads_proportional(g.stages, 256)
        unif = allocate_threads_uniform(g.stages, 256)
        beat_p = max(s.duration_cycles(a) for s, a in zip(g.stages, prop))
        beat_u = max(s.duration_cycles(a) for s, a in zip(g.stages, unif))
        assert beat_p < beat_u


class TestMemoryTracker:
    def test_high_water(self):
        m = MemoryTracker(1000)
        m.allocate("a", 400)
        m.allocate("b", 500)
        m.free("a")
        m.allocate("c", 100)
        assert m.high_water_bytes == 900
        assert m.current_bytes == 600

    def test_oom(self):
        m = MemoryTracker(100)
        with pytest.raises(SimulationError):
            m.allocate("big", 101)

    def test_double_alloc(self):
        m = MemoryTracker(100)
        m.allocate("a", 10)
        with pytest.raises(SimulationError):
            m.allocate("a", 10)

    def test_free_unknown(self):
        m = MemoryTracker(100)
        with pytest.raises(SimulationError):
            m.free("ghost")

    def test_footprints_match_paper_closed_forms(self):
        """§3.1: dynamic ≈ 2N blocks vs preload mN."""
        assert dynamic_footprint_blocks(8) == 15  # 2N - 1
        assert preload_footprint_blocks(8, 10) == 80
        n = 1 << 14
        assert dynamic_footprint_blocks(n) == 2 * n - 1
        # Dynamic beats preloading once m >= 2.
        assert dynamic_footprint_blocks(n) < preload_footprint_blocks(n, 3)


class TestTransferEngine:
    def test_multi_stream_overlaps(self):
        gpu = get_gpu("V100")
        eng = TransferEngine(gpu, multi_stream=True, sync_overhead_fraction=0.0)
        beat = eng.beat(320 * 10**6, 24.73e-3)
        # Table 9 V100 row: comm 22.95, comp 24.73, overall 25.35.
        assert beat.comm_seconds == pytest.approx(22.95e-3, rel=0.05)
        assert beat.overall_seconds == pytest.approx(24.73e-3, rel=0.01)
        assert beat.overlap_saving_seconds > 0.02

    def test_single_stream_serializes(self):
        gpu = get_gpu("V100")
        eng = TransferEngine(gpu, multi_stream=False)
        beat = eng.beat(320 * 10**6, 24.73e-3)
        assert beat.overall_seconds == pytest.approx(
            beat.comm_seconds + beat.comp_seconds
        )
        assert beat.hidden_fraction == pytest.approx(0.0)

    def test_accumulates_totals(self):
        eng = TransferEngine(get_gpu("A100"))
        eng.beat(100, 0.001)
        eng.beat(200, 0.001)
        assert eng.total_bytes == 300

    def test_negative_inputs(self):
        eng = TransferEngine(get_gpu("A100"))
        with pytest.raises(SimulationError):
            eng.beat(-1, 0.0)


class TestSchedulers:
    def test_pipelined_work_conservation(self):
        """Total busy cycles equal the batch's total work."""
        gpu = get_gpu("V100")
        g = toy_graph(layers=5, base_work=1 << 12)
        res = run_pipelined(gpu, g, batch_size=50, include_transfers=False)
        assert res.batch_size == 50
        # steady interval >= ideal work/threads bound
        ideal = gpu.cycles_to_seconds(g.total_work_cycles() / gpu.cuda_cores)
        assert res.steady_interval_seconds >= ideal

    def test_pipelined_beats_naive_throughput(self):
        gpu = get_gpu("V100")
        g = toy_graph(layers=8, base_work=1 << 16)
        pipe = run_pipelined(gpu, g, batch_size=64, include_transfers=False)
        naive = run_naive(gpu, g, batch_size=64, compute_penalty=1.3)
        assert pipe.steady_throughput_per_second > naive.steady_throughput_per_second

    def test_naive_has_lower_latency(self):
        """Table 6's trade-off: pipelined wins throughput, loses latency
        (at realistic module sizes where compute dominates launches)."""
        from repro.pipeline import merkle_graph

        gpu = get_gpu("GH200")
        g = merkle_graph(1 << 18)
        pipe = run_pipelined(gpu, g, batch_size=64, include_transfers=False)
        naive = run_naive(gpu, g, batch_size=64, compute_penalty=1.3)
        assert naive.latency_seconds < pipe.latency_seconds
        assert pipe.steady_throughput_per_second > naive.steady_throughput_per_second

    def test_utilization_in_unit_interval(self):
        gpu = get_gpu("V100")
        g = toy_graph(layers=6, base_work=1 << 14)
        for res in (
            run_pipelined(gpu, g, batch_size=32, include_transfers=False),
            run_naive(gpu, g, batch_size=32),
        ):
            assert res.utilization_trace
            assert all(0.0 <= u <= 1.0 for _, u in res.utilization_trace)

    def test_pipelined_steady_utilization_higher(self):
        """Figure 9's claim: pipelined mean utilization beats naive."""
        gpu = get_gpu("3090Ti")
        g = toy_graph(layers=10, base_work=1 << 15)
        pipe = run_pipelined(gpu, g, batch_size=128, include_transfers=False)
        naive = run_naive(gpu, g, batch_size=128)
        assert pipe.mean_utilization > naive.mean_utilization

    def test_pipelined_memory_is_single_task(self):
        gpu = get_gpu("V100")
        g = toy_graph(layers=4, base_work=64)
        res = run_pipelined(gpu, g, batch_size=100, include_transfers=False)
        assert res.memory_high_water_bytes == g.peak_memory_bytes()

    def test_naive_memory_scales_with_concurrency(self):
        gpu = get_gpu("V100")
        g = toy_graph(layers=4, base_work=64)  # small: many concurrent tasks
        res = run_naive(gpu, g, batch_size=100)
        assert res.memory_high_water_bytes > g.peak_memory_bytes()

    def test_total_time_includes_fill_and_drain(self):
        gpu = get_gpu("V100")
        g = toy_graph(layers=5, base_work=1 << 10)
        res = run_pipelined(gpu, g, batch_size=10, include_transfers=False)
        assert res.total_seconds == pytest.approx(
            (10 + 5 - 1) * res.steady_interval_seconds, rel=1e-6
        )
        assert res.latency_seconds == pytest.approx(
            5 * res.steady_interval_seconds, rel=1e-6
        )

    def test_transfers_can_bound_beat(self):
        gpu = get_gpu("V100")
        stages = [
            KernelStage("s", work_units=10, cycles_per_unit=1.0, bytes_in=10**9)
        ]
        g = ModuleGraph("io-bound", stages)
        res = run_pipelined(gpu, g, batch_size=4, include_transfers=True)
        assert res.beat.comm_seconds > res.beat.comp_seconds
        assert res.steady_interval_seconds >= res.beat.comm_seconds

    def test_empty_module_raises(self):
        gpu = get_gpu("V100")
        g = ModuleGraph("empty", [KernelStage("z", 0, 1.0)])
        with pytest.raises(SimulationError):
            run_pipelined(gpu, g, batch_size=1)
        with pytest.raises(SimulationError):
            run_naive(gpu, g, batch_size=1)

    def test_bad_batch_size(self):
        gpu = get_gpu("V100")
        g = toy_graph()
        with pytest.raises(SimulationError):
            run_pipelined(gpu, g, batch_size=0)

    def test_thread_budget_respected(self):
        gpu = get_gpu("V100")
        g = toy_graph(layers=4, base_work=1 << 10)
        res = run_pipelined(
            gpu, g, batch_size=8, total_threads=256, include_transfers=False
        )
        assert sum(res.thread_allocation) == 256

    def test_too_many_threads_raises(self):
        gpu = get_gpu("V100")
        g = toy_graph()
        with pytest.raises(SimulationError):
            run_pipelined(gpu, g, batch_size=1, total_threads=10**7)


class TestCpuRunner:
    def test_scales_linearly_with_batch(self):
        g = toy_graph()
        r1 = run_cpu(CPU_C5A_8XLARGE, g, batch_size=1)
        r10 = run_cpu(CPU_C5A_8XLARGE, g, batch_size=10)
        assert r10.total_seconds == pytest.approx(10 * r1.total_seconds)

    def test_unknown_unit_raises(self):
        g = ModuleGraph("x", [KernelStage("s", 1, 1.0, unit="quantum")])
        with pytest.raises(SimulationError):
            run_cpu(CPU_C5A_8XLARGE, g, batch_size=1)
