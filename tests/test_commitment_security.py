"""Security-estimate tests."""

import math

import pytest

from repro.commitment import (
    BrakedownPCS,
    checks_for_security,
    column_check_error,
    estimate,
    recommended_parameters,
    sumcheck_error_bits,
)
from repro.errors import CommitmentError
from repro.field import DEFAULT_FIELD, PrimeField
from repro.field.primes import BN254_SCALAR

F = DEFAULT_FIELD


class TestColumnChecks:
    def test_error_decays_exponentially(self):
        e10 = column_check_error(10, 0.2)
        e20 = column_check_error(20, 0.2)
        assert e20 == pytest.approx(e10**2)

    def test_more_distance_fewer_checks(self):
        assert checks_for_security(40, 0.4) < checks_for_security(40, 0.1)

    def test_roundtrip(self):
        for bits in (20, 40, 80):
            t = checks_for_security(bits, 0.2)
            assert -math.log2(column_check_error(t, 0.2)) >= bits
            if t > 1:
                assert -math.log2(column_check_error(t - 1, 0.2)) < bits

    def test_invalid_inputs(self):
        with pytest.raises(CommitmentError):
            column_check_error(0, 0.2)
        with pytest.raises(CommitmentError):
            column_check_error(5, 1.5)
        with pytest.raises(CommitmentError):
            checks_for_security(-1, 0.2)


class TestAlgebraicTerms:
    def test_sumcheck_bits_near_field_size(self):
        bits = sumcheck_error_bits(F, num_rounds=20, degree=3)
        assert 50 < bits < math.log2(F.modulus)

    def test_larger_field_more_bits(self):
        big = PrimeField(BN254_SCALAR, check=False)
        assert sumcheck_error_bits(big, 20, 3) > sumcheck_error_bits(F, 20, 3)

    def test_more_rounds_fewer_bits(self):
        assert sumcheck_error_bits(F, 100, 3) < sumcheck_error_bits(F, 2, 3)


class TestEstimate:
    def test_structure_and_binding_minimum(self):
        pcs = BrakedownPCS(F, num_vars=10, seed=0, num_col_checks=30)
        est = estimate(F, pcs.params, num_sumcheck_rounds=15)
        assert est.total_bits == min(
            est.column_check_bits,
            est.sumcheck_bits,
            est.proximity_combination_bits,
        )
        assert est.total_bits > 0

    def test_column_checks_dominate_when_few(self):
        pcs = BrakedownPCS(F, num_vars=10, seed=0, num_col_checks=4)
        est = estimate(F, pcs.params, num_sumcheck_rounds=10)
        assert est.total_bits == est.column_check_bits
        assert est.column_check_bits < 1

    def test_recommended_parameters(self):
        rec = recommended_parameters(F, target_bits=40)
        assert rec["num_col_checks"] == checks_for_security(40, 0.2)
        assert rec["field_sufficient"]  # 61-bit field covers 40-bit target
        rec_hi = recommended_parameters(F, target_bits=100)
        assert not rec_hi["field_sufficient"]
        big = PrimeField(BN254_SCALAR, check=False)
        assert recommended_parameters(big, target_bits=100)["field_sufficient"]
