"""Verifiable-ML tests: tensors, layers, models, circuits, service."""

import numpy as np
import pytest

from repro.errors import ZkmlError
from repro.field import DEFAULT_FIELD
from repro.zkml import (
    Conv2d,
    Flatten,
    Linear,
    MaxPool2d,
    MlaasService,
    QuantizedTensor,
    RESCALE_BITS,
    ReLU,
    SequentialModel,
    Square,
    circuitize,
    forward_exact,
    quantization_error,
    random_input,
    simulate_vgg16_service,
    tiny_cnn,
    vgg16_cifar10,
)

F = DEFAULT_FIELD


class TestQuantizedTensor:
    def test_roundtrip_error_bounded(self):
        rng = np.random.default_rng(0)
        x = rng.normal(0, 1, (4, 4))
        assert quantization_error(x, frac_bits=8) <= 1 / 512 + 1e-12

    def test_to_field_handles_negatives(self):
        q = QuantizedTensor(np.array([-1, 2, -3]), frac_bits=0)
        vals = q.to_field(F)
        assert vals == [F.modulus - 1, 2, F.modulus - 3]

    def test_rescale_truncates_toward_zero(self):
        q = QuantizedTensor(np.array([255, -255, 256, -256]), frac_bits=8)
        assert list(q.rescale().values) == [0, 0, 1, -1]

    def test_from_float_scale(self):
        q = QuantizedTensor.from_float(np.array([1.5]), frac_bits=4)
        assert q.values[0] == 24

    def test_zeros(self):
        q = QuantizedTensor.zeros((2, 3))
        assert q.shape == (2, 3) and q.size == 6

    def test_negative_frac_bits(self):
        with pytest.raises(ZkmlError):
            QuantizedTensor(np.array([1]), frac_bits=-1)


class TestLayers:
    def test_conv_shape_and_determinism(self):
        conv = Conv2d(2, 3, 3)
        conv.init_params(np.random.default_rng(0))
        x = random_input((2, 5, 5), seed=1)
        y1 = conv.forward(x)
        y2 = conv.forward(x)
        assert y1.shape == (3, 5, 5)
        assert np.array_equal(y1.values, y2.values)

    def test_conv_channel_mismatch(self):
        conv = Conv2d(2, 3)
        with pytest.raises(ZkmlError):
            conv.output_shape((5, 4, 4))

    def test_conv_identity_kernel(self):
        """A centered delta kernel reproduces the input channel."""
        conv = Conv2d(1, 1, 3)
        w = np.zeros((1, 1, 3, 3))
        w[0, 0, 1, 1] = 1.0
        conv.weights = QuantizedTensor.from_float(w)
        conv.bias = QuantizedTensor.from_float(np.zeros(1))
        x = random_input((1, 4, 4), seed=2)
        y = conv.forward(x)
        assert np.array_equal(y.values, x.values.reshape(1, 4, 4))

    def test_linear_matches_numpy(self):
        fc = Linear(4, 2)
        fc.init_params(np.random.default_rng(1))
        x = QuantizedTensor(np.array([1, 2, 3, 4]) << 8, frac_bits=8)
        y = fc.forward(x)
        want = fc.weights.values @ x.values
        want = np.where(want >= 0, want >> 8, -((-want) >> 8))
        assert np.array_equal(y.values, want)

    def test_relu(self):
        r = ReLU()
        x = QuantizedTensor(np.array([-5, 0, 7]))
        assert list(r.forward(x).values) == [0, 0, 7]

    def test_square_rescales(self):
        s = Square()
        x = QuantizedTensor(np.array([1 << 8]), frac_bits=8)  # value 1.0
        y = s.forward(x)
        assert y.values[0] == 1 << 8  # 1.0^2 == 1.0

    def test_maxpool(self):
        mp = MaxPool2d()
        x = QuantizedTensor(np.arange(16).reshape(1, 4, 4))
        y = mp.forward(x)
        assert y.shape == (1, 2, 2)
        assert list(y.values.reshape(-1)) == [5, 7, 13, 15]

    def test_flatten(self):
        f = Flatten()
        x = QuantizedTensor(np.arange(12).reshape(3, 2, 2))
        assert f.forward(x).shape == (12,)
        assert f.gate_count((3, 2, 2)) == 0

    def test_gate_counts_positive_and_structured(self):
        conv = Conv2d(3, 64)
        g = conv.gate_count((3, 32, 32))
        # rescale term dominates: out volume * RESCALE_BITS
        assert g > 64 * 32 * 32 * RESCALE_BITS
        assert ReLU().gate_count((64, 32, 32)) == 64 * 32 * 32 * RESCALE_BITS


class TestModels:
    def test_vgg16_structure(self):
        m = vgg16_cifar10()
        # 13 convs + 13 relus + 5 pools + flatten + 2 fc + 1 relu = 35
        assert len(m.layers) == 35
        assert m.input_shape == (3, 32, 32)
        assert m._shapes[-1] == (10,)

    def test_vgg16_parameter_count(self):
        """≈15M parameters, the standard VGG-16/CIFAR figure."""
        m = vgg16_cifar10()
        assert 14_500_000 < m.parameter_count() < 15_500_000

    def test_vgg16_gate_count_scale(self):
        """Gate count must land in the ~20M range that reproduces the
        paper's 9.52 proofs/s on GH200."""
        gates = vgg16_cifar10().gate_count()
        assert 15_000_000 < gates < 30_000_000

    def test_per_layer_gates_sum(self):
        m = vgg16_cifar10()
        assert sum(g for _, g in m.per_layer_gates()) == m.gate_count()

    def test_tiny_forward_runs(self):
        m = tiny_cnn()
        m.init_params(0)
        y = m.forward(random_input(m.input_shape, seed=1))
        assert y.shape == (4,)

    def test_forward_with_trace(self):
        m = tiny_cnn()
        m.init_params(0)
        out, trace = m.forward_with_trace(random_input(m.input_shape, seed=1))
        assert len(trace) == len(m.layers) + 1
        assert np.array_equal(trace[-1].values, out.values)

    def test_wrong_input_shape(self):
        m = tiny_cnn()
        m.init_params(0)
        with pytest.raises(ZkmlError):
            m.forward(random_input((2, 8, 8)))

    def test_parameter_blocks_64_bytes(self):
        m = tiny_cnn()
        m.init_params(0)
        blocks = m.parameter_blocks()
        assert all(len(b) == 64 for b in blocks)

    def test_parameter_blocks_change_with_params(self):
        a = tiny_cnn()
        a.init_params(0)
        b = tiny_cnn()
        b.init_params(1)
        assert a.parameter_blocks() != b.parameter_blocks()


class TestCircuitize:
    @pytest.fixture(scope="class")
    def tiny(self):
        m = tiny_cnn(input_size=4, channels=1, classes=3)
        m.init_params(7)
        return m

    def test_circuit_outputs_match_exact_forward(self, tiny):
        x = random_input(tiny.input_shape, seed=3, frac_bits=4)
        zk = circuitize(tiny, x, F)
        want = [int(v) for v in forward_exact(tiny, x).reshape(-1)]
        assert zk.outputs == want

    def test_circuit_satisfiable(self, tiny):
        x = random_input(tiny.input_shape, seed=4, frac_bits=4)
        zk = circuitize(tiny, x, F)
        assert zk.compiled.r1cs.is_satisfied(zk.compiled.witness)

    def test_gate_count_is_mac_level(self, tiny):
        """circuitize builds a MAC-per-gate circuit (unlike the model's
        zkCNN-style protocol estimate): conv MACs + squares + fc MACs."""
        x = random_input(tiny.input_shape, seed=3, frac_bits=4)
        zk = circuitize(tiny, x, F)
        n = tiny.input_shape[-1]
        fc = tiny.layers[-1]
        # Upper bound: all conv taps + one square per activation + fc MACs.
        upper = n * n * 9 + n * n + fc.in_features * fc.out_features
        assert 0 < zk.gate_count <= upper
        assert zk.compiled.r1cs.num_constraints >= zk.gate_count

    def test_different_inputs_different_outputs(self, tiny):
        x1 = random_input(tiny.input_shape, seed=5, frac_bits=4)
        x2 = random_input(tiny.input_shape, seed=6, frac_bits=4)
        z1 = circuitize(tiny, x1, F)
        z2 = circuitize(tiny, x2, F)
        assert z1.outputs != z2.outputs

    def test_relu_model_circuitizes_via_gadget(self):
        """ReLU compiles for real now (bit-decomposition gadget)."""
        m = SequentialModel(
            [Linear(4, 2, name="fc"), ReLU()], input_shape=(4,), name="relu-model"
        )
        m.init_params(0)
        x = QuantizedTensor(np.array([3, -2, 5, -7]), frac_bits=0)
        zk = circuitize(m, x, F, relu_bits=20)
        want = [int(v) for v in forward_exact(m, x).reshape(-1)]
        assert zk.outputs == want
        assert all(v >= 0 for v in zk.outputs)
        assert zk.compiled.r1cs.is_satisfied(zk.compiled.witness)

    def test_maxpool_model_rejected(self):
        from repro.zkml import MaxPool2d

        m = SequentialModel(
            [MaxPool2d(), Flatten(), Linear(4, 2, name="fc")],
            input_shape=(1, 4, 4),
            name="bad",
        )
        m.init_params(0)
        with pytest.raises(ZkmlError):
            circuitize(m, QuantizedTensor(np.zeros((1, 4, 4), dtype=np.int64)), F)


class TestMlaasService:
    @pytest.fixture(scope="class")
    def service(self):
        m = tiny_cnn(input_size=4, channels=1, classes=3)
        m.init_params(7)
        return MlaasService(m, num_col_checks=6)

    def test_model_root_stable(self, service):
        assert service.model_root == service.model_root
        assert len(service.model_root) == 32

    def test_prove_and_verify(self, service):
        x = random_input(service.model.input_shape, seed=8, frac_bits=4)
        resp = service.prove_prediction(x)
        assert service.verify_prediction(x, resp)

    def test_prediction_matches_engine(self, service):
        x = random_input(service.model.input_shape, seed=8, frac_bits=4)
        resp = service.prove_prediction(x)
        want = [int(v) for v in forward_exact(service.model, x).reshape(-1)]
        assert resp.prediction == want

    def test_wrong_prediction_rejected(self, service):
        import dataclasses

        x = random_input(service.model.input_shape, seed=9, frac_bits=4)
        resp = service.prove_prediction(x)
        bad = dataclasses.replace(resp, prediction=[v + 1 for v in resp.prediction])
        assert not service.verify_prediction(x, bad)

    def test_prove_predictions_batch_verifies(self, service):
        """Batched request streams ride the S22 parallel runtime."""
        xs = [
            random_input(service.model.input_shape, seed=s, frac_bits=4)
            for s in (21, 22, 23)
        ]
        resps = service.prove_predictions(xs, workers=2)
        assert len(resps) == 3
        assert all(
            service.verify_prediction(x, r) for x, r in zip(xs, resps)
        )
        assert service.last_runtime_stats.proofs_generated == 3

    def test_prove_predictions_empty(self, service):
        assert service.prove_predictions([]) == []

    def test_empty_batch_resets_stale_runtime_stats(self, service):
        """Regression: an empty call must not leave a previous batch's
        stats in place masquerading as this call's report."""
        x = random_input(service.model.input_shape, seed=31, frac_bits=4)
        service.prove_predictions([x])
        assert service.last_runtime_stats is not None
        assert service.prove_predictions([]) == []
        assert service.last_runtime_stats is None

    def test_nonuniform_fallback_resets_stale_runtime_stats(
        self, service, monkeypatch
    ):
        """Regression: the serial fallback never touches the runtime, so
        it must clear, not inherit, the previous batch's stats."""
        from repro.core.r1cs import R1CS

        xs = [
            random_input(service.model.input_shape, seed=s, frac_bits=4)
            for s in (32, 33)
        ]
        service.prove_predictions([xs[0]])
        assert service.last_runtime_stats is not None
        # Per-object digests make every compile look structurally distinct,
        # forcing the non-uniform serial path.  (Digests are transcript-
        # bound, so proofs from this patched run are not verified here.)
        monkeypatch.setattr(
            R1CS,
            "digest",
            lambda self, hasher=None: id(self).to_bytes(16, "little"),
        )
        responses = service.prove_predictions(xs)
        assert len(responses) == 2
        assert all(r.proof is not None for r in responses)
        assert service.last_runtime_stats is None

    def test_serve_streams_predictions_through_proof_service(self, service):
        """The streaming front door: uniform batches, cache reuse, and
        customer-verifiable responses."""
        from repro.service import BatchPolicy, Priority

        xs = [
            random_input(service.model.input_shape, seed=s, frac_bits=4)
            for s in (41, 42)
        ]
        policy = BatchPolicy(max_batch_size=4, max_wait_seconds=0.02)
        with service.serve(policy=policy, max_queue=16) as front:
            tickets = [
                front.submit(
                    x, priority=Priority.INTERACTIVE, deadline_seconds=300.0
                )
                for x in xs
            ]
            duplicate = front.submit(xs[0])
            responses = [t.result(timeout=300) for t in tickets]
            assert duplicate.result(timeout=300).prediction == \
                responses[0].prediction
        assert duplicate.source in ("cache", "coalesced")
        assert all(
            service.verify_prediction(x, r) for x, r in zip(xs, responses)
        )
        assert front.stats.completed == 3
        assert sum(front.stats.batch_size_histogram.values()) >= 1
        # The uniform batch rode the shared-spec runtime fast path.
        assert service.last_runtime_stats is not None

    def test_prove_predictions_matches_single(self, service):
        x = random_input(service.model.input_shape, seed=24, frac_bits=4)
        (batched,) = service.prove_predictions([x], workers=1)
        single = service.prove_prediction(x)
        assert batched.prediction == single.prediction
        assert service.verify_prediction(x, batched)

    def test_model_substitution_detected(self, service):
        """Figure 8's security claim: a different model has a different
        Merkle root, so its responses are rejected."""
        other_model = tiny_cnn(input_size=4, channels=1, classes=3)
        other_model.init_params(99)
        other = MlaasService(other_model, num_col_checks=6)
        x = random_input(service.model.input_shape, seed=10, frac_bits=4)
        resp = other.prove_prediction(x)
        assert resp.model_root != service.model_root
        assert not service.verify_prediction(x, resp)

    def test_missing_proof_rejected(self, service):
        import dataclasses

        x = random_input(service.model.input_shape, seed=11, frac_bits=4)
        resp = service.prove_prediction(x)
        assert not service.verify_prediction(
            x, dataclasses.replace(resp, proof=None)
        )


class TestVgg16Simulation:
    def test_table11_shape(self):
        """Ours: ~an order of magnitude of 9.52 proofs/s, sub-second
        amortized generation, >400x over ZENO."""
        from repro.baselines import ZKML_BASELINES

        res = simulate_vgg16_service(vgg16_cifar10(), device="GH200")
        thpt = res.sim.steady_throughput_per_second
        assert 5.0 < thpt < 20.0
        assert 1.0 / thpt < 1.0  # sub-second amortized proof generation
        assert thpt / ZKML_BASELINES["ZENO"].throughput_per_second > 200
        # Latency >> amortized (deep pipeline), in the paper's ballpark.
        assert 3.0 < res.latency_seconds < 40.0

    def test_small_model_rejected(self):
        m = tiny_cnn()
        m.init_params(0)
        with pytest.raises(ZkmlError):
            simulate_vgg16_service(m)
