"""Brakedown polynomial-commitment tests."""

import dataclasses

import pytest

from repro.commitment import BrakedownPCS, split_num_vars
from repro.errors import CommitmentError
from repro.field import DEFAULT_FIELD, MultilinearPolynomial
from repro.hashing import Transcript

F = DEFAULT_FIELD


@pytest.fixture(scope="module")
def pcs():
    return BrakedownPCS(F, num_vars=8, seed=2, num_col_checks=12)


@pytest.fixture(scope="module")
def committed(pcs):
    import random

    rng = random.Random(5)
    ml = MultilinearPolynomial.random(F, 8, rng)
    com, state = pcs.commit(ml.evals)
    return ml, com, state


class TestSplit:
    def test_default_balanced(self):
        assert split_num_vars(8) == (4, 4)
        assert split_num_vars(9) == (4, 5)

    def test_explicit_split(self):
        assert split_num_vars(8, row_vars=2) == (2, 6)

    def test_too_few_vars(self):
        with pytest.raises(CommitmentError):
            split_num_vars(1)

    def test_degenerate_split(self):
        with pytest.raises(CommitmentError):
            split_num_vars(4, row_vars=4)


class TestCommit:
    def test_commitment_is_32_bytes(self, committed):
        _, com, _ = committed
        assert len(com.root) == 32

    def test_wrong_eval_count(self, pcs):
        with pytest.raises(CommitmentError):
            pcs.commit([1, 2, 3])

    def test_deterministic(self, pcs, rng):
        evals = F.rand_vector(256, rng)
        c1, _ = pcs.commit(evals)
        c2, _ = pcs.commit(evals)
        assert c1.root == c2.root

    def test_binding_to_data(self, pcs, rng):
        evals = F.rand_vector(256, rng)
        c1, _ = pcs.commit(evals)
        evals[100] = (evals[100] + 1) % F.modulus
        c2, _ = pcs.commit(evals)
        assert c1.root != c2.root

    def test_codeword_matrix_shape(self, committed, pcs):
        _, _, state = committed
        assert len(state.encoded) == pcs.params.num_rows
        assert all(len(r) == pcs.params.codeword_length for r in state.encoded)


class TestEvaluate:
    def test_matches_multilinear_extension(self, committed, pcs, rng):
        ml, _, state = committed
        for _ in range(5):
            pt = F.rand_vector(8, rng)
            assert pcs.evaluate(state, pt) == ml.evaluate(pt)

    def test_boolean_point_is_table_entry(self, committed, pcs):
        ml, _, state = committed
        idx = 137
        pt = [(idx >> i) & 1 for i in range(8)]
        assert pcs.evaluate(state, pt) == ml.evals[idx]

    def test_wrong_dimension(self, committed, pcs):
        _, _, state = committed
        with pytest.raises(CommitmentError):
            pcs.evaluate(state, [1, 2, 3])


class TestOpenVerify:
    def test_roundtrip(self, committed, pcs, rng):
        ml, com, state = committed
        pt = F.rand_vector(8, rng)
        value = ml.evaluate(pt)
        proof = pcs.open(state, pt, Transcript(b"t"))
        assert pcs.verify(com, pt, value, proof, Transcript(b"t"))

    def test_wrong_value_rejected(self, committed, pcs, rng):
        ml, com, state = committed
        pt = F.rand_vector(8, rng)
        proof = pcs.open(state, pt, Transcript(b"t"))
        assert not pcs.verify(
            com, pt, (ml.evaluate(pt) + 1) % F.modulus, proof, Transcript(b"t")
        )

    def test_wrong_transcript_rejected(self, committed, pcs, rng):
        """Column indices are transcript-derived; a different transcript
        expects different columns."""
        ml, com, state = committed
        pt = F.rand_vector(8, rng)
        proof = pcs.open(state, pt, Transcript(b"t"))
        assert not pcs.verify(
            com, pt, ml.evaluate(pt), proof, Transcript(b"other")
        )

    def test_wrong_point_rejected(self, committed, pcs, rng):
        ml, com, state = committed
        pt = F.rand_vector(8, rng)
        value = ml.evaluate(pt)
        proof = pcs.open(state, pt, Transcript(b"t"))
        other = F.rand_vector(8, rng)
        assert not pcs.verify(com, other, value, proof, Transcript(b"t"))

    def test_tampered_evaluation_row(self, committed, pcs, rng):
        ml, com, state = committed
        pt = F.rand_vector(8, rng)
        value = ml.evaluate(pt)
        proof = pcs.open(state, pt, Transcript(b"t"))
        bad = dataclasses.replace(
            proof,
            evaluation_row=[(v + 1) % F.modulus for v in proof.evaluation_row],
        )
        assert not pcs.verify(com, pt, value, bad, Transcript(b"t"))

    def test_tampered_proximity_row(self, committed, pcs, rng):
        ml, com, state = committed
        pt = F.rand_vector(8, rng)
        value = ml.evaluate(pt)
        proof = pcs.open(state, pt, Transcript(b"t"))
        bad = dataclasses.replace(
            proof,
            proximity_row=[(v + 1) % F.modulus for v in proof.proximity_row],
        )
        assert not pcs.verify(com, pt, value, bad, Transcript(b"t"))

    def test_tampered_column_values(self, committed, pcs, rng):
        ml, com, state = committed
        pt = F.rand_vector(8, rng)
        value = ml.evaluate(pt)
        proof = pcs.open(state, pt, Transcript(b"t"))
        col0 = dataclasses.replace(
            proof.columns[0],
            values=[(v + 1) % F.modulus for v in proof.columns[0].values],
        )
        bad = dataclasses.replace(proof, columns=[col0] + list(proof.columns[1:]))
        assert not pcs.verify(com, pt, value, bad, Transcript(b"t"))

    def test_dropped_column_rejected(self, committed, pcs, rng):
        ml, com, state = committed
        pt = F.rand_vector(8, rng)
        value = ml.evaluate(pt)
        proof = pcs.open(state, pt, Transcript(b"t"))
        bad = dataclasses.replace(proof, columns=list(proof.columns[1:]))
        assert not pcs.verify(com, pt, value, bad, Transcript(b"t"))

    def test_wrong_length_rows_rejected(self, committed, pcs, rng):
        ml, com, state = committed
        pt = F.rand_vector(8, rng)
        value = ml.evaluate(pt)
        proof = pcs.open(state, pt, Transcript(b"t"))
        bad = dataclasses.replace(proof, evaluation_row=proof.evaluation_row[:-1])
        assert not pcs.verify(com, pt, value, bad, Transcript(b"t"))

    def test_substituted_commitment_rejected(self, pcs, rng):
        """Open against one polynomial, verify against another's root."""
        a = MultilinearPolynomial.random(F, 8, rng)
        b = MultilinearPolynomial.random(F, 8, rng)
        com_a, state_a = pcs.commit(a.evals)
        com_b, _ = pcs.commit(b.evals)
        pt = F.rand_vector(8, rng)
        proof = pcs.open(state_a, pt, Transcript(b"t"))
        assert not pcs.verify(com_b, pt, a.evaluate(pt), proof, Transcript(b"t"))

    def test_proof_size_positive(self, committed, pcs, rng):
        _, _, state = committed
        pt = F.rand_vector(8, rng)
        proof = pcs.open(state, pt, Transcript(b"t"))
        assert proof.size_field_elements() > 0
        assert proof.size_bytes(F) > proof.size_field_elements()


class TestParameterVariants:
    @pytest.mark.parametrize("num_vars", [4, 6, 10])
    def test_various_sizes_roundtrip(self, num_vars, rng):
        pcs = BrakedownPCS(F, num_vars=num_vars, seed=1, num_col_checks=6)
        ml = MultilinearPolynomial.random(F, num_vars, rng)
        com, state = pcs.commit(ml.evals)
        pt = F.rand_vector(num_vars, rng)
        proof = pcs.open(state, pt, Transcript(b"t"))
        assert pcs.verify(com, pt, ml.evaluate(pt), proof, Transcript(b"t"))

    def test_unbalanced_split_roundtrip(self, rng):
        pcs = BrakedownPCS(F, num_vars=8, row_vars=2, seed=1, num_col_checks=6)
        ml = MultilinearPolynomial.random(F, 8, rng)
        com, state = pcs.commit(ml.evals)
        pt = F.rand_vector(8, rng)
        proof = pcs.open(state, pt, Transcript(b"t"))
        assert pcs.verify(com, pt, ml.evaluate(pt), proof, Transcript(b"t"))

    def test_mismatched_pcs_params_raise(self, committed):
        _, com, _ = committed
        other = BrakedownPCS(F, num_vars=8, seed=99, num_col_checks=12)
        with pytest.raises(CommitmentError):
            other.verify(com, [0] * 8, 0, None, Transcript(b"t"))  # type: ignore[arg-type]
