"""Training tests: gradients, learning, quantization, prove-after-train."""

import numpy as np
import pytest

from repro.errors import ZkmlError
from repro.zkml import (
    Dataset,
    FloatTrainer,
    MlaasService,
    QuantizedTensor,
    ReLU,
    SequentialModel,
    Linear,
    Flatten,
    quantized_accuracy,
    synthetic_blobs,
    tiny_cnn,
    train_verifiable_model,
)
from repro.zkml.training import _softmax_xent_grad


class TestDataset:
    def test_shapes(self):
        data = synthetic_blobs(num_samples=50, image_size=4)
        assert data.x.shape == (50, 1, 4, 4)
        assert data.y.shape == (50,)
        assert data.y.max() < data.num_classes

    def test_deterministic(self):
        a = synthetic_blobs(num_samples=20, seed=3)
        b = synthetic_blobs(num_samples=20, seed=3)
        assert np.array_equal(a.x, b.x) and np.array_equal(a.y, b.y)

    def test_normalized(self):
        data = synthetic_blobs(num_samples=30)
        assert data.x.min() >= 0.0 and data.x.max() <= 1.0

    def test_split(self):
        data = synthetic_blobs(num_samples=50)
        train, test = data.split(0.8)
        assert len(train) == 40 and len(test) == 10


class TestGradients:
    def test_softmax_xent_grad_sums_to_zero(self):
        logits = np.array([1.0, -2.0, 0.5])
        _, grad = _softmax_xent_grad(logits, 1)
        assert abs(grad.sum()) < 1e-9
        assert grad[1] < 0  # pulls the true class up

    @pytest.mark.parametrize("layer_kind", ["conv", "linear", "square", "pool"])
    def test_numeric_gradient_check(self, layer_kind):
        """Backward passes must match finite differences."""
        model = tiny_cnn(input_size=4, channels=1, classes=2)
        trainer = FloatTrainer(model, seed=1)
        data = synthetic_blobs(num_samples=1, image_size=4, num_classes=2, seed=2)
        x, y = data.x[0], int(data.y[0])

        def loss_at() -> float:
            logits = trainer.predict_logits(x)
            loss, _ = _softmax_xent_grad(logits, y)
            return loss

        # Analytic gradients.
        logits = trainer.predict_logits(x)
        _, grad = _softmax_xent_grad(logits, y)
        g = grad
        for layer in reversed(trainer.twins):
            g = layer.backward(g)
        # Numeric check on a handful of parameters of each layer type.
        eps = 1e-6
        checked = 0
        for twin in trainer.twins:
            if not hasattr(twin, "w"):
                continue
            flat = twin.w.reshape(-1)
            gflat = twin.gw.reshape(-1)
            for idx in (0, len(flat) // 2):
                original = flat[idx]
                flat[idx] = original + eps
                up = loss_at()
                flat[idx] = original - eps
                down = loss_at()
                flat[idx] = original
                numeric = (up - down) / (2 * eps)
                assert gflat[idx] == pytest.approx(numeric, rel=1e-3, abs=1e-6)
                checked += 1
            twin.gw[:] = 0
            twin.gb[:] = 0
        assert checked >= 4


class TestTraining:
    @pytest.fixture(scope="class")
    def trained(self):
        model = tiny_cnn(input_size=4, channels=1, classes=3)
        data = synthetic_blobs(
            num_samples=120, image_size=4, num_classes=3, seed=5
        )
        trainer, float_acc, quant_acc = train_verifiable_model(
            model, data, epochs=6, lr=0.03, seed=5
        )
        return model, data, trainer, float_acc, quant_acc

    def test_loss_decreases(self):
        model = tiny_cnn(input_size=4, channels=1, classes=3)
        data = synthetic_blobs(num_samples=80, image_size=4, seed=6)
        trainer = FloatTrainer(model, seed=6)
        losses = trainer.train(data, epochs=4, lr=0.03)
        assert losses[-1] < losses[0]

    def test_beats_chance(self, trained):
        _, _, _, float_acc, _ = trained
        assert float_acc > 0.7  # chance is 1/3

    def test_quantization_preserves_accuracy(self, trained):
        _, _, _, float_acc, quant_acc = trained
        assert quant_acc > float_acc - 0.15

    def test_trained_model_proves(self, trained):
        """The §5 workflow end to end: train -> quantize -> commit ->
        predict -> prove -> verify."""
        model, data, _, _, _ = trained
        service = MlaasService(model, num_col_checks=5)
        x = QuantizedTensor.from_float(data.x[0], frac_bits=4)
        resp = service.prove_prediction(x)
        assert service.verify_prediction(x, resp)

    def test_untrainable_layer_rejected(self):
        model = SequentialModel(
            [Flatten(), Linear(16, 3, name="fc"), ReLU()],
            input_shape=(1, 4, 4),
        )
        with pytest.raises(ZkmlError):
            FloatTrainer(model)

    def test_export_changes_model_weights(self, trained):
        model, _, trainer, _, _ = trained
        conv = model.layers[0]
        assert np.allclose(
            conv.weights.to_float(), trainer.twins[0].w, atol=1 / 128
        )
