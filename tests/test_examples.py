"""Smoke tests: every example script runs to completion.

Examples are part of the public surface; each one contains its own
assertions, so a zero exit code means the demonstrated flow verified.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_example_inventory():
    """The README promises at least these runnable walkthroughs."""
    assert {
        "quickstart.py",
        "commitment_demo.py",
        "module_pipelines.py",
        "batch_throughput.py",
        "verifiable_ml.py",
        "train_and_prove.py",
        "zkbridge_service.py",
        "delegated_computation.py",
    } <= set(EXAMPLES)


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, (
        f"{name} failed:\n{result.stdout[-2000:]}\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{name} produced no output"
