"""Tests for the bench harness (table runners) and the CLI."""

import pytest

from repro.__main__ import main as cli_main
from repro.bench import (
    TableRow,
    compute_breakdown,
    compute_fig9,
    compute_table3,
    compute_table7,
    compute_table8,
    compute_table9,
    compute_table10,
    compute_table11,
    format_rows,
)


class TestTableRunners:
    def test_table3_rows_and_keys(self):
        rows = compute_table3(sizes=(14, 16))
        assert [r.label for r in rows] == ["2^16", "2^14"]
        for r in rows:
            assert {"cpu", "gpu_baseline", "ours"} <= set(r.values)

    def test_table7_has_paper_columns(self):
        rows = compute_table7()
        assert len(rows) == 5
        for r in rows:
            assert "ours_paper" in r.values
            assert r.values["ours_ms"] > 0

    def test_table7_within_2x_of_paper(self):
        """Every 'ours' cell lands within 2x of the published value."""
        for r in compute_table7():
            ratio = r.values["ours_ms"] / r.values["ours_paper"]
            assert 0.5 < ratio < 2.0, r.label

    def test_table8_within_30pct_of_paper(self):
        for r in compute_table8():
            ratio = r.values["ours_throughput"] / r.values["ours_throughput_paper"]
            assert 0.7 < ratio < 1.3, r.label

    def test_table9_within_15pct_of_paper(self):
        for r in compute_table9():
            for key in ("comm", "comp", "overall"):
                ratio = r.values[f"{key}_ms"] / r.values[f"{key}_paper"]
                assert 0.85 < ratio < 1.15, (r.label, key)

    def test_table10_monotone(self):
        rows = compute_table10()
        ours = [r.values["ours_gb"] for r in rows]
        assert ours == sorted(ours)

    def test_table11_has_all_systems(self):
        labels = {r.label for r in compute_table11()}
        assert labels == {"zkCNN", "ZKML", "ZENO", "Ours"}

    def test_breakdown_multiplies_up(self):
        bd = compute_breakdown()
        assert bd["protocol_speedup"] * bd["pipeline_speedup"] == pytest.approx(
            bd["total_speedup_vs_bellperson"], rel=1e-9
        )

    def test_fig9_traces_nonempty(self):
        data = compute_fig9(lg=14)
        for module, traces in data.items():
            assert traces["ours"] and traces["baseline"]
            assert 0 < traces["ours_mean"] <= 1


class TestFormatRows:
    def test_includes_all_keys_across_rows(self):
        rows = [
            TableRow(label="a", values={"x": 1.0}),
            TableRow(label="b", values={"x": 2.0, "y": 3.0}),
        ]
        text = format_rows("T", rows)
        assert "y" in text and "T" in text

    def test_missing_cells_blank(self):
        rows = [
            TableRow(label="a", values={"x": 1.0}),
            TableRow(label="b", values={"y": 3.0}),
        ]
        text = format_rows("T", rows)
        assert text.count("\n") == 3

    def test_empty(self):
        assert "(no rows)" in format_rows("T", [])


class TestCli:
    def test_list(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table3" in out and "fig9" in out

    def test_single_table(self, capsys):
        assert cli_main(["table9"]) == 0
        out = capsys.readouterr().out
        assert "overlap" in out and "V100" in out

    def test_breakdown(self, capsys):
        assert cli_main(["breakdown"]) == 0
        out = capsys.readouterr().out
        assert "pipeline speedup" in out

    def test_fig9(self, capsys):
        assert cli_main(["fig9"]) == 0
        out = capsys.readouterr().out
        assert "utilization" in out

    def test_device_override(self, capsys):
        assert cli_main(["table10", "--device", "V100"]) == 0

    def test_prove_serial(self, capsys):
        assert cli_main(["prove", "--tasks", "2", "--gates", "32"]) == 0
        out = capsys.readouterr().out
        assert "all 2 returned proofs verify: True" in out
        assert "throughput" in out

    def test_prove_parallel_with_trace(self, capsys, tmp_path):
        trace = str(tmp_path / "trace.jsonl")
        assert cli_main([
            "prove", "--tasks", "3", "--gates", "32",
            "--workers", "2", "--trace", trace,
        ]) == 0
        out = capsys.readouterr().out
        assert "all 3 returned proofs verify: True" in out
        import json

        events = [json.loads(line) for line in open(trace)]
        assert any(e["event"] == "complete" for e in events)

    def test_serve_replays_a_trace(self, capsys):
        assert cli_main([
            "serve", "--requests", "16", "--rate", "800",
            "--gates", "32", "--batch-size", "4", "--window", "0.005",
            "--verify-sample", "4",
        ]) == 0
        out = capsys.readouterr().out
        assert "batches" in out
        assert "verified sample of 4: ok" in out

    def test_serve_bursty_with_trace_file(self, capsys, tmp_path):
        import json

        trace = str(tmp_path / "serve.jsonl")
        assert cli_main([
            "serve", "--requests", "12", "--rate", "800", "--gates", "32",
            "--pattern", "bursty", "--trace", trace, "--verify-sample", "2",
        ]) == 0
        events = [json.loads(line) for line in open(trace)]
        kinds = {e["event"] for e in events}
        assert {"svc_submit", "batch_form", "batch_done"} <= kinds

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            cli_main(["table99"])
