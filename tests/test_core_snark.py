"""End-to-end SNARK tests: completeness, soundness smoke, batch API."""

import dataclasses

import pytest

from repro.core import (
    BatchProver,
    CircuitBuilder,
    ConstraintSumcheckProver,
    ProofTask,
    SnarkProver,
    SnarkVerifier,
    compile_builder,
    make_pcs,
    random_circuit,
    verify_all,
)
from repro.errors import ProofError
from repro.field import DEFAULT_FIELD, MultilinearPolynomial, eq_table
from repro.sumcheck import evaluation_point, verify_product_rounds

F = DEFAULT_FIELD


@pytest.fixture(scope="module")
def setup():
    cc = random_circuit(F, 64, seed=11)
    pcs = make_pcs(F, cc.r1cs, num_col_checks=8)
    prover = SnarkProver(cc.r1cs, pcs, public_indices=cc.public_indices)
    verifier = SnarkVerifier(cc.r1cs, pcs, public_indices=cc.public_indices)
    proof = prover.prove(cc.witness, cc.public_values)
    return cc, prover, verifier, proof


class TestConstraintSumcheck:
    def test_zero_sum_on_satisfying_witness(self, rng):
        cc = random_circuit(F, 32, seed=5)
        z = cc.r1cs.pad_witness(cc.witness)
        az, bz, cz = cc.r1cs.matvec_tables(z)
        tau = F.rand_vector(cc.r1cs.constraint_vars, rng)
        prover = ConstraintSumcheckProver(F, eq_table(F, tau), az, bz, cz)
        assert prover.claimed_sum == 0

    def test_rounds_verify_and_finalize(self, rng):
        cc = random_circuit(F, 16, seed=6)
        z = cc.r1cs.pad_witness(cc.witness)
        az, bz, cz = cc.r1cs.matvec_tables(z)
        tau = F.rand_vector(cc.r1cs.constraint_vars, rng)
        prover = ConstraintSumcheckProver(F, eq_table(F, tau), az, bz, cz)
        rounds, chals = [], []
        for _ in range(prover.num_vars):
            rounds.append(prover.round_polynomial())
            r = F.rand(rng)
            chals.append(r)
            prover.fold(r)
        final = verify_product_rounds(F, 0, rounds, chals, 3)
        assert final == prover.final_value()
        e, va, vb, vc = prover.final_values()
        assert final == (e * (va * vb - vc)) % F.modulus

    def test_nonzero_on_bad_witness(self, rng):
        cc = random_circuit(F, 16, seed=7)
        z = cc.r1cs.pad_witness(cc.witness)
        z[2] = (z[2] + 1) % F.modulus
        az, bz, cz = cc.r1cs.matvec_tables(z)
        tau = F.rand_vector(cc.r1cs.constraint_vars, rng)
        prover = ConstraintSumcheckProver(F, eq_table(F, tau), az, bz, cz)
        # Whp nonzero: eq(tau) weights make cancellation negligible.
        assert prover.claimed_sum != 0


class TestCompleteness:
    def test_proof_verifies(self, setup):
        cc, _, verifier, proof = setup
        assert verifier.verify(proof, cc.public_values)

    def test_handbuilt_circuit(self):
        cb = CircuitBuilder(F)
        x = cb.private_input(7)
        y = cb.private_input(6)
        cb.expose_public(cb.mul(cb.add(x, y), cb.sub(x, y)))  # 49-36 = 13
        cc = compile_builder(cb)
        pcs = make_pcs(F, cc.r1cs, num_col_checks=6)
        prover = SnarkProver(cc.r1cs, pcs, public_indices=cc.public_indices)
        verifier = SnarkVerifier(cc.r1cs, pcs, public_indices=cc.public_indices)
        proof = prover.prove(cc.witness, cc.public_values)
        assert cc.public_values == [13]
        assert verifier.verify(proof, [13])

    @pytest.mark.parametrize("gates", [4, 17, 130])
    def test_various_scales(self, gates):
        cc = random_circuit(F, gates, seed=gates)
        pcs = make_pcs(F, cc.r1cs, num_col_checks=4)
        prover = SnarkProver(cc.r1cs, pcs, public_indices=cc.public_indices)
        verifier = SnarkVerifier(cc.r1cs, pcs, public_indices=cc.public_indices)
        proof = prover.prove(cc.witness, cc.public_values)
        assert verifier.verify(proof, cc.public_values)


class TestSoundnessSmoke:
    def test_wrong_public_value(self, setup):
        cc, _, verifier, proof = setup
        assert not verifier.verify(proof, [(cc.public_values[0] + 1) % F.modulus])

    def test_unsatisfying_witness_refused_by_prover(self, setup):
        cc, prover, _, _ = setup
        bad = list(cc.witness)
        bad[1] = (bad[1] + 1) % F.modulus
        with pytest.raises(ProofError):
            prover.prove(bad, cc.public_values)

    def test_tampered_va(self, setup):
        cc, _, verifier, proof = setup
        bad = dataclasses.replace(proof, va=(proof.va + 1) % F.modulus)
        assert not verifier.verify(bad, cc.public_values)

    def test_tampered_vz(self, setup):
        cc, _, verifier, proof = setup
        bad = dataclasses.replace(proof, vz=(proof.vz + 1) % F.modulus)
        assert not verifier.verify(bad, cc.public_values)

    def test_tampered_constraint_sumcheck(self, setup):
        cc, _, verifier, proof = setup
        sc = proof.constraint_sumcheck
        rounds = [list(r) for r in sc.round_polys]
        rounds[0][0] = (rounds[0][0] + 1) % F.modulus
        bad_sc = dataclasses.replace(sc, round_polys=rounds)
        bad = dataclasses.replace(proof, constraint_sumcheck=bad_sc)
        assert not verifier.verify(bad, cc.public_values)

    def test_tampered_witness_sumcheck(self, setup):
        cc, _, verifier, proof = setup
        sc = proof.witness_sumcheck
        rounds = [list(r) for r in sc.round_polys]
        rounds[-1][1] = (rounds[-1][1] + 1) % F.modulus
        bad_sc = dataclasses.replace(sc, round_polys=rounds)
        bad = dataclasses.replace(proof, witness_sumcheck=bad_sc)
        assert not verifier.verify(bad, cc.public_values)

    def test_tampered_witness_opening(self, setup):
        cc, _, verifier, proof = setup
        tampered = dataclasses.replace(
            proof.witness_opening,
            evaluation_row=[
                (v + 1) % F.modulus for v in proof.witness_opening.evaluation_row
            ],
        )
        bad = dataclasses.replace(proof, witness_opening=tampered)
        assert not verifier.verify(bad, cc.public_values)

    def test_tampered_public_binding(self, setup):
        cc, _, verifier, proof = setup
        binding = proof.public_bindings[-1]
        bad_binding = dataclasses.replace(binding, value=(binding.value + 1) % F.modulus)
        bad = dataclasses.replace(
            proof, public_bindings=proof.public_bindings[:-1] + [bad_binding]
        )
        assert not verifier.verify(bad, cc.public_values)

    def test_dropped_public_binding(self, setup):
        cc, _, verifier, proof = setup
        bad = dataclasses.replace(proof, public_bindings=proof.public_bindings[:-1])
        assert not verifier.verify(bad, cc.public_values)

    def test_wrong_public_count(self, setup):
        cc, _, verifier, proof = setup
        assert not verifier.verify(proof, cc.public_values + [0])


class TestProofObject:
    def test_size_accounting(self, setup):
        _, _, _, proof = setup
        assert proof.size_field_elements() > 0
        sizes = proof.component_sizes(F)
        assert set(sizes) == {"merkle_root", "sumchecks", "pcs_openings"}
        assert sizes["merkle_root"] == 32
        total = proof.size_bytes(F)
        assert total == sum(sizes.values())

    def test_proof_is_nontrivially_sized(self, setup):
        """Second-category proofs are KB–MB scale (paper §2.1)."""
        _, _, _, proof = setup
        assert proof.size_bytes(F) > 1000


class TestBatchApi:
    def test_prove_all_and_verify_all(self, setup):
        cc, prover, verifier, _ = setup
        tasks = [ProofTask(i, cc.witness, cc.public_values) for i in range(3)]
        batch = BatchProver(prover)
        proofs, stats = batch.prove_all(tasks)
        assert stats.proofs_generated == 3
        assert stats.throughput_per_second > 0
        assert stats.amortized_seconds > 0
        assert len(stats.per_proof_seconds) == 3
        assert verify_all(verifier, proofs, tasks)

    def test_prove_stream(self, setup):
        cc, prover, verifier, _ = setup
        tasks = [ProofTask(i, cc.witness, cc.public_values) for i in range(2)]
        batch = BatchProver(prover)
        proofs = list(batch.prove_stream(iter(tasks)))
        assert len(proofs) == 2
        assert batch.stats.proofs_generated == 2
        assert verify_all(verifier, proofs, tasks)

    def test_verify_all_count_mismatch(self, setup):
        cc, prover, verifier, proof = setup
        with pytest.raises(ProofError):
            verify_all(verifier, [proof], [])

    def test_public_value_count_mismatch_raises(self, setup):
        cc, prover, _, _ = setup
        with pytest.raises(ProofError):
            prover.prove(cc.witness, [])
