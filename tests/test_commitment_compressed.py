"""Compressed (multiproof) PCS openings: correctness, size, end-to-end."""

import dataclasses
import random

import pytest

from repro.commitment import BrakedownPCS
from repro.core import (
    SnarkProver,
    SnarkVerifier,
    deserialize_proof,
    make_pcs,
    random_circuit,
    serialize_proof,
)
from repro.field import DEFAULT_FIELD, MultilinearPolynomial
from repro.hashing import Transcript

F = DEFAULT_FIELD


@pytest.fixture(scope="module")
def pair():
    """(compressed PCS, plain PCS) with identical code parameters."""
    compressed = BrakedownPCS(
        F, num_vars=10, seed=4, num_col_checks=16, compress_openings=True
    )
    plain = BrakedownPCS(F, num_vars=10, seed=4, num_col_checks=16)
    return compressed, plain


@pytest.fixture(scope="module")
def committed(pair):
    rng = random.Random(13)
    ml = MultilinearPolynomial.random(F, 10, rng)
    compressed, plain = pair
    com_c, state_c = compressed.commit(ml.evals)
    com_p, state_p = plain.commit(ml.evals)
    return ml, (com_c, state_c), (com_p, state_p)


class TestCompressedOpenings:
    def test_same_commitment_root(self, committed):
        """Compression is an opening-time choice; commitments agree."""
        _, (com_c, _), (com_p, _) = committed
        assert com_c.root == com_p.root

    def test_roundtrip(self, pair, committed, rng):
        compressed, _ = pair
        ml, (com, state), _ = committed
        pt = F.rand_vector(10, rng)
        proof = compressed.open(state, pt, Transcript(b"c"))
        assert proof.multiproof is not None
        assert all(c.path is None for c in proof.columns)
        assert compressed.verify(com, pt, ml.evaluate(pt), proof, Transcript(b"c"))

    def test_smaller_than_plain(self, pair, committed, rng):
        compressed, plain = pair
        ml, (com_c, state_c), (com_p, state_p) = committed
        pt = F.rand_vector(10, rng)
        proof_c = compressed.open(state_c, pt, Transcript(b"c"))
        proof_p = plain.open(state_p, pt, Transcript(b"c"))
        assert proof_c.size_bytes(F) < proof_p.size_bytes(F)

    def test_wrong_value_rejected(self, pair, committed, rng):
        compressed, _ = pair
        ml, (com, state), _ = committed
        pt = F.rand_vector(10, rng)
        proof = compressed.open(state, pt, Transcript(b"c"))
        value = ml.evaluate(pt)
        assert not compressed.verify(
            com, pt, (value + 1) % F.modulus, proof, Transcript(b"c")
        )

    def test_tampered_column_rejected(self, pair, committed, rng):
        compressed, _ = pair
        ml, (com, state), _ = committed
        pt = F.rand_vector(10, rng)
        proof = compressed.open(state, pt, Transcript(b"c"))
        value = ml.evaluate(pt)
        bad_col = dataclasses.replace(
            proof.columns[0],
            values=[(v + 1) % F.modulus for v in proof.columns[0].values],
        )
        bad = dataclasses.replace(
            proof, columns=[bad_col] + list(proof.columns[1:])
        )
        assert not compressed.verify(com, pt, value, bad, Transcript(b"c"))

    def test_missing_multiproof_rejected(self, pair, committed, rng):
        compressed, _ = pair
        ml, (com, state), _ = committed
        pt = F.rand_vector(10, rng)
        proof = compressed.open(state, pt, Transcript(b"c"))
        bad = dataclasses.replace(proof, multiproof=None)
        assert not compressed.verify(
            com, pt, ml.evaluate(pt), bad, Transcript(b"c")
        )

    def test_mode_mixup_rejected(self, pair, committed, rng):
        """A plain verifier must reject compressed proofs (different
        params) and vice versa — modes are part of the public setup."""
        from repro.errors import CommitmentError

        compressed, plain = pair
        ml, (com_c, state_c), (com_p, state_p) = committed
        pt = F.rand_vector(10, rng)
        proof_c = compressed.open(state_c, pt, Transcript(b"c"))
        with pytest.raises(CommitmentError):
            plain.verify(com_c, pt, ml.evaluate(pt), proof_c, Transcript(b"c"))


class TestCompressedSnark:
    @pytest.fixture(scope="class")
    def setting(self):
        cc = random_circuit(F, 48, seed=71)
        pcs = make_pcs(F, cc.r1cs, num_col_checks=8, compress_openings=True)
        prover = SnarkProver(cc.r1cs, pcs, public_indices=cc.public_indices)
        verifier = SnarkVerifier(cc.r1cs, pcs, public_indices=cc.public_indices)
        proof = prover.prove(cc.witness, cc.public_values)
        return cc, pcs, verifier, proof

    def test_end_to_end(self, setting):
        cc, _, verifier, proof = setting
        assert verifier.verify(proof, cc.public_values)

    def test_smaller_than_plain_snark(self, setting):
        cc, _, _, proof = setting
        plain_pcs = make_pcs(F, cc.r1cs, num_col_checks=8)
        plain_prover = SnarkProver(
            cc.r1cs, plain_pcs, public_indices=cc.public_indices
        )
        plain_proof = plain_prover.prove(cc.witness, cc.public_values)
        assert proof.size_bytes(F) < plain_proof.size_bytes(F)

    def test_serialization_roundtrip(self, setting):
        cc, pcs, verifier, proof = setting
        blob = serialize_proof(proof, F)
        again = deserialize_proof(blob, F, pcs.params)
        assert again.witness_opening.multiproof == proof.witness_opening.multiproof
        assert verifier.verify(again, cc.public_values)
