"""Streaming proof service tests (S23): admission, batching, cache, e2e."""

import hashlib
import threading
import time

import pytest

from repro.core import ProofTask, SnarkProver, make_pcs, random_circuit
from repro.errors import (
    AdmissionError,
    ProofError,
    QuarantinedTaskError,
    ServiceError,
)
from repro.field import DEFAULT_FIELD
from repro.runtime import JsonlTraceSink, ProverSpec
from repro.service import (
    ArrivalEvent,
    BatchPolicy,
    Priority,
    ProofRequest,
    ProofService,
    ResultCache,
    RuntimeProofBackend,
    Ticket,
    bursty_trace,
    poisson_trace,
    replay,
    spec_key,
    task_witness_key,
)

F = DEFAULT_FIELD


# -- fixtures -----------------------------------------------------------------

@pytest.fixture(scope="module")
def circuits():
    """Two distinct circuits so batches must group by circuit key."""
    built = {}
    for name, gates, seed in (("a", 32, 2), ("b", 48, 3)):
        cc = random_circuit(F, gates, seed=seed)
        pcs = make_pcs(F, cc.r1cs, num_col_checks=4)
        prover = SnarkProver(cc.r1cs, pcs, public_indices=cc.public_indices)
        spec = ProverSpec.from_prover(prover)
        built[name] = (cc, spec, spec_key(spec))
    return built


@pytest.fixture
def backend(circuits):
    return RuntimeProofBackend.from_specs(
        [spec for _, spec, _ in circuits.values()]
    )


def _task(cc, task_id=0):
    return ProofTask(task_id, cc.witness, cc.public_values)


def _wkey(i: int) -> bytes:
    """Distinct witness keys for logically distinct requests."""
    return hashlib.sha256(f"request-{i}".encode()).digest()


class GatedBackend:
    """Wraps a backend; holds the first prove_batch until released."""

    def __init__(self, inner):
        self.inner = inner
        self.release = threading.Event()
        self.calls = []  # (circuit_key, batch_size)
        self._first = True

    def prove_batch(self, circuit_key, requests):
        if self._first:
            self._first = False
            self.release.wait(timeout=30)
        self.calls.append((circuit_key, len(requests)))
        return self.inner.prove_batch(circuit_key, requests)


class FailingBackend:
    """Always raises — exercises the batch-failure path."""

    def prove_batch(self, circuit_key, requests):
        raise RuntimeError("prover farm on fire")


# -- tickets ------------------------------------------------------------------

class TestTicket:
    def test_lifecycle(self):
        t = Ticket(7, priority=Priority.INTERACTIVE)
        assert t.state == "pending" and not t.done()
        t._resolve("proof", source="proved")
        assert t.done() and t.state == "done"
        assert t.result() == "proof"
        assert t.source == "proved"

    def test_result_timeout_raises_service_error(self):
        t = Ticket(0)
        with pytest.raises(ServiceError, match="not done"):
            t.result(timeout=0.01)

    def test_failed_ticket_reraises(self):
        t = Ticket(0)
        t._fail(ProofError("boom"))
        assert t.state == "failed"
        with pytest.raises(ProofError, match="boom"):
            t.result()


# -- result cache -------------------------------------------------------------

class TestResultCache:
    KEY = (b"circuit", b"witness")

    def test_lead_then_hit(self):
        cache = ResultCache(capacity=4)
        assert cache.claim(self.KEY, Ticket(0)) == ("lead", None)
        assert cache.fulfill(self.KEY, "proof") == []
        assert cache.claim(self.KEY, Ticket(1)) == ("hit", "proof")

    def test_single_flight_join_and_fulfill(self):
        cache = ResultCache(capacity=4)
        follower = Ticket(1)
        cache.claim(self.KEY, Ticket(0))
        assert cache.claim(self.KEY, follower) == ("joined", None)
        assert cache.inflight_count() == 1
        assert cache.fulfill(self.KEY, "proof") == [follower]
        assert cache.inflight_count() == 0

    def test_abandon_releases_claim(self):
        cache = ResultCache(capacity=4)
        follower = Ticket(1)
        cache.claim(self.KEY, Ticket(0))
        cache.claim(self.KEY, follower)
        assert cache.abandon(self.KEY) == [follower]
        # The key is claimable again — a retry can lead.
        assert cache.claim(self.KEY, Ticket(2)) == ("lead", None)

    def test_lru_eviction(self):
        cache = ResultCache(capacity=2)
        for i in range(3):
            key = (b"c", bytes([i]))
            cache.claim(key, Ticket(i))
            cache.fulfill(key, i)
        assert len(cache) == 2
        assert cache.evictions == 1
        assert cache.peek((b"c", b"\x00")) is None  # oldest evicted
        assert cache.peek((b"c", b"\x02")) == 2

    def test_zero_capacity_keeps_single_flight_only(self):
        cache = ResultCache(capacity=0)
        follower = Ticket(1)
        cache.claim(self.KEY, Ticket(0))
        cache.claim(self.KEY, follower)
        assert cache.fulfill(self.KEY, "proof") == [follower]
        assert len(cache) == 0
        assert cache.claim(self.KEY, Ticket(2)) == ("lead", None)

    def test_negative_capacity_rejected(self):
        with pytest.raises(ServiceError):
            ResultCache(capacity=-1)


# -- batch policy (pure scheduling) -------------------------------------------

def _request(i, circuit=b"c", *, priority=Priority.BULK, submitted=0.0,
             deadline=None):
    return ProofRequest(
        request_id=i, payload=None, circuit_key=circuit, witness_key=None,
        priority=priority, submitted_at=submitted, deadline=deadline,
        ticket=Ticket(i),
    )


class TestBatchPolicy:
    def test_size_trigger(self):
        policy = BatchPolicy(max_batch_size=3, max_wait_seconds=10.0)
        pending = [_request(i) for i in range(2)]
        assert policy.select(pending, now=0.0) is None
        pending.append(_request(2))
        batch = policy.select(pending, now=0.0)
        assert [r.request_id for r in batch] == [0, 1, 2]

    def test_age_trigger_fires_for_small_batch(self):
        policy = BatchPolicy(max_batch_size=8, max_wait_seconds=0.5)
        pending = [_request(0, submitted=0.0)]
        assert policy.select(pending, now=0.4) is None
        assert policy.select(pending, now=0.6) is not None

    def test_deadline_trigger(self):
        policy = BatchPolicy(
            max_batch_size=8, max_wait_seconds=100.0, urgency_slack_seconds=1.0
        )
        pending = [_request(0, submitted=0.0, deadline=50.0)]
        assert policy.select(pending, now=0.0) is None
        assert policy.select(pending, now=49.5) is not None

    def test_batches_are_circuit_uniform(self):
        policy = BatchPolicy(max_batch_size=4, max_wait_seconds=0.0)
        pending = [_request(i, circuit=b"a" if i % 2 else b"b")
                   for i in range(6)]
        batch = policy.select(pending, now=1.0)
        assert len({r.circuit_key for r in batch}) == 1

    def test_interactive_group_wins_and_orders_first(self):
        policy = BatchPolicy(max_batch_size=4, max_wait_seconds=0.0)
        pending = [
            _request(0, circuit=b"bulk", priority=Priority.BULK, submitted=0.0),
            _request(1, circuit=b"mix", priority=Priority.BULK, submitted=0.1),
            _request(2, circuit=b"mix", priority=Priority.INTERACTIVE,
                     submitted=0.2),
        ]
        batch = policy.select(pending, now=1.0)
        # The group containing the INTERACTIVE request dispatches first,
        # and the INTERACTIVE member leads the batch despite arriving last.
        assert [r.request_id for r in batch] == [2, 1]

    def test_earlier_deadline_orders_first_within_class(self):
        policy = BatchPolicy(max_batch_size=4, max_wait_seconds=0.0)
        pending = [
            _request(0, submitted=0.0, deadline=9.0),
            _request(1, submitted=0.1, deadline=3.0),
            _request(2, submitted=0.2),  # no deadline sorts last
        ]
        batch = policy.select(pending, now=1.0)
        assert [r.request_id for r in batch] == [1, 0, 2]

    def test_drain_makes_everything_ripe(self):
        policy = BatchPolicy(max_batch_size=8, max_wait_seconds=100.0)
        pending = [_request(0, submitted=0.0)]
        assert policy.select(pending, now=0.0) is None
        assert policy.select(pending, now=0.0, drain=True) is not None

    def test_next_wakeup_tracks_age_and_deadline(self):
        policy = BatchPolicy(
            max_batch_size=8, max_wait_seconds=2.0, urgency_slack_seconds=1.0
        )
        assert policy.next_wakeup([], now=0.0) is None
        pending = [_request(0, submitted=0.0, deadline=1.5)]
        # age trigger at 2.0, deadline trigger at 1.5 - 1.0 = 0.5
        assert policy.next_wakeup(pending, now=0.0) == pytest.approx(0.5)

    def test_invalid_policy_rejected(self):
        with pytest.raises(ServiceError):
            BatchPolicy(max_batch_size=0)
        with pytest.raises(ServiceError):
            BatchPolicy(max_wait_seconds=-1.0)


# -- admission control ---------------------------------------------------------

class TestAdmission:
    """start=False keeps the batcher off so the queue only ever grows."""

    def _service(self, backend, **kwargs):
        kwargs.setdefault("start", False)
        return ProofService(backend, **kwargs)

    def test_queue_full_is_typed_not_blocking(self, circuits, backend):
        cc, _, key = circuits["a"]
        svc = self._service(backend, max_queue=4, high_watermark=4,
                            low_watermark=2)
        for i in range(4):
            svc.submit(_task(cc, i), circuit_key=key)
        before = time.monotonic()
        with pytest.raises(AdmissionError) as err:
            svc.submit(_task(cc, 99), circuit_key=key)
        assert err.value.reason == "queue_full"
        assert time.monotonic() - before < 0.5  # rejected, never queued
        assert svc.stats.rejections["queue_full"] == 1

    def test_bulk_shed_spares_interactive(self, circuits, backend):
        cc, _, key = circuits["a"]
        svc = self._service(backend, max_queue=16, high_watermark=3,
                            low_watermark=1)
        for i in range(3):
            svc.submit(_task(cc, i), circuit_key=key)
        with pytest.raises(AdmissionError) as err:
            svc.submit(_task(cc, 7), circuit_key=key, priority=Priority.BULK)
        assert err.value.reason == "bulk_shed"
        # Interactive traffic still boards while bulk is shed.
        svc.submit(
            _task(cc, 8), circuit_key=key, priority=Priority.INTERACTIVE
        )
        assert svc.queue_depth == 4

    def test_shedding_hysteresis_resumes_below_low_watermark(
        self, circuits, backend
    ):
        cc, _, key = circuits["a"]
        svc = self._service(backend, max_queue=16, high_watermark=3,
                            low_watermark=1)
        for i in range(3):
            svc.submit(_task(cc, i), circuit_key=key)
        with pytest.raises(AdmissionError):
            svc.submit(_task(cc, 7), circuit_key=key)
        # Drain manually to just above the low watermark: still shedding.
        with svc._cond:
            svc._pending[:] = svc._pending[:2]
        with pytest.raises(AdmissionError):
            svc.submit(_task(cc, 8), circuit_key=key)
        # At/below the low watermark bulk admission resumes.
        with svc._cond:
            svc._pending[:] = svc._pending[:1]
        svc.submit(_task(cc, 9), circuit_key=key)

    def test_closed_service_rejects(self, circuits, backend):
        cc, _, key = circuits["a"]
        svc = ProofService(backend, max_queue=4)
        svc.close()
        with pytest.raises(AdmissionError) as err:
            svc.submit(_task(cc), circuit_key=key)
        assert err.value.reason == "service_closed"

    def test_invalid_configuration_rejected(self, backend):
        with pytest.raises(ServiceError):
            ProofService(backend, max_queue=0, start=False)
        with pytest.raises(ServiceError):
            ProofService(backend, max_queue=8, high_watermark=2,
                         low_watermark=4, start=False)

    def test_missing_keyer_and_key(self, circuits, backend):
        cc, _, _ = circuits["a"]
        svc = self._service(backend, max_queue=4)
        with pytest.raises(ServiceError, match="circuit_key"):
            svc.submit(_task(cc))


# -- live service flows --------------------------------------------------------

class TestServiceFlow:
    def test_proofs_verify_and_cache_hits_after_completion(
        self, circuits, backend
    ):
        cc, _, key = circuits["a"]
        policy = BatchPolicy(max_batch_size=4, max_wait_seconds=0.005)
        with ProofService(backend, policy=policy, max_queue=64) as svc:
            tickets = [
                svc.submit(_task(cc, i), circuit_key=key, witness_key=_wkey(i))
                for i in range(6)
            ]
            assert svc.drain(timeout=60)
            repeat = svc.submit(
                _task(cc, 0), circuit_key=key, witness_key=_wkey(0)
            )
            proofs = [t.result(timeout=30) for t in tickets]
            assert repeat.source == "cache"
            assert repeat.result() is proofs[0]
        verifier = backend.verifier_for(key)
        assert all(verifier.verify(p, cc.public_values) for p in proofs)
        assert svc.stats.cache_hits == 1
        assert svc.stats.cache_hit_rate > 0

    def test_single_flight_coalesces_inflight_duplicates(
        self, circuits, backend
    ):
        cc, _, key = circuits["a"]
        gated = GatedBackend(backend)
        policy = BatchPolicy(max_batch_size=2, max_wait_seconds=0.001)
        with ProofService(gated, policy=policy, max_queue=64) as svc:
            lead = svc.submit(
                _task(cc, 0), circuit_key=key, witness_key=_wkey(0)
            )
            time.sleep(0.05)  # let the batcher take the lead into a batch
            dups = [
                svc.submit(
                    _task(cc, 0), circuit_key=key, witness_key=_wkey(0)
                )
                for _ in range(3)
            ]
            gated.release.set()
            proof = lead.result(timeout=60)
            for dup in dups:
                assert dup.result(timeout=60) is proof
                assert dup.source in ("coalesced", "cache")
        assert svc.stats.coalesced >= 1
        # One proof was generated for the four identical submissions.
        assert sum(size for _, size in gated.calls) == 1

    def test_batches_group_by_circuit_key(self, circuits, backend):
        gated = GatedBackend(backend)
        gated.release.set()  # no gating, just call recording
        policy = BatchPolicy(max_batch_size=8, max_wait_seconds=0.05)
        with ProofService(gated, policy=policy, max_queue=64) as svc:
            for i in range(4):
                name = "a" if i % 2 else "b"
                cc, _, key = circuits[name]
                svc.submit(_task(cc, i), circuit_key=key)
            assert svc.drain(timeout=60)
        assert len(gated.calls) == 2
        assert {key for key, _ in gated.calls} == {
            circuits["a"][2], circuits["b"][2]
        }

    def test_backend_failure_fails_tickets_and_frees_cache(
        self, circuits, backend
    ):
        cc, _, key = circuits["a"]
        policy = BatchPolicy(max_batch_size=2, max_wait_seconds=0.001)
        with ProofService(
            FailingBackend(), policy=policy, max_queue=16
        ) as svc:
            t = svc.submit(_task(cc, 0), circuit_key=key, witness_key=_wkey(0))
            with pytest.raises(ProofError, match="batch of"):
                t.result(timeout=30)
            assert svc.stats.failed == 1
            # The single-flight claim was released: resubmitting leads again
            # (it would be "joined" forever if the claim leaked).
            t2 = svc.submit(
                _task(cc, 0), circuit_key=key, witness_key=_wkey(0)
            )
            with pytest.raises(ProofError):
                t2.result(timeout=30)

    def test_close_without_drain_fails_pending(self, circuits, backend):
        cc, _, key = circuits["a"]
        gated = GatedBackend(backend)
        policy = BatchPolicy(max_batch_size=1, max_wait_seconds=0.0)
        svc = ProofService(gated, policy=policy, max_queue=64)
        first = svc.submit(_task(cc, 0), circuit_key=key)
        time.sleep(0.05)  # batcher is now blocked inside the gated batch
        stranded = [
            svc.submit(_task(cc, i), circuit_key=key) for i in range(1, 4)
        ]
        svc.close(drain=False, timeout=0.2)
        gated.release.set()
        svc._batcher.join(timeout=30)
        assert first.result(timeout=30) is not None  # in-flight completes
        for t in stranded:
            with pytest.raises(ServiceError, match="closed"):
                t.result(timeout=5)

    def test_deadline_miss_recorded_not_dropped(self, circuits, backend):
        cc, _, key = circuits["a"]
        gated = GatedBackend(backend)
        policy = BatchPolicy(max_batch_size=1, max_wait_seconds=0.0)
        with ProofService(gated, policy=policy, max_queue=16) as svc:
            t = svc.submit(
                _task(cc, 0), circuit_key=key, deadline_seconds=0.01
            )
            time.sleep(0.05)
            gated.release.set()
            assert t.result(timeout=60) is not None  # still served
        assert svc.stats.deadline_misses >= 1

    def test_mismatched_backend_result_count_fails_batch(
        self, circuits, backend
    ):
        cc, _, key = circuits["a"]

        class ShortBackend:
            def prove_batch(self, circuit_key, requests):
                return []

        policy = BatchPolicy(max_batch_size=1, max_wait_seconds=0.0)
        with ProofService(ShortBackend(), policy=policy, max_queue=4) as svc:
            t = svc.submit(_task(cc, 0), circuit_key=key)
            with pytest.raises(ProofError):
                t.result(timeout=30)

    def test_trace_events_cover_service_lifecycle(
        self, circuits, backend, tmp_path
    ):
        import json

        cc, _, key = circuits["a"]
        path = str(tmp_path / "svc.jsonl")
        policy = BatchPolicy(max_batch_size=2, max_wait_seconds=0.005)
        with JsonlTraceSink(path) as sink:
            with ProofService(
                backend, policy=policy, max_queue=16, trace=sink
            ) as svc:
                for i in range(3):
                    svc.submit(
                        _task(cc, i), circuit_key=key, witness_key=_wkey(i)
                    )
                svc.drain(timeout=60)
                svc.submit(_task(cc, 0), circuit_key=key, witness_key=_wkey(0))
        kinds = {json.loads(line)["event"] for line in open(path)}
        assert {"svc_submit", "batch_form", "batch_done", "svc_cache_hit",
                "svc_close"} <= kinds

    def test_unknown_circuit_key_fails_cleanly(self, circuits, backend):
        cc, _, _ = circuits["a"]
        policy = BatchPolicy(max_batch_size=1, max_wait_seconds=0.0)
        with ProofService(backend, policy=policy, max_queue=4) as svc:
            t = svc.submit(_task(cc, 0), circuit_key=b"\x00" * 32)
            with pytest.raises(ProofError, match="no ProverSpec"):
                t.result(timeout=30)


# -- workload generators -------------------------------------------------------

class TestWorkload:
    def test_poisson_trace_shape(self):
        events = poisson_trace(
            50, 100.0, seed=1, interactive_fraction=0.5,
            duplicate_fraction=0.2, deadline_seconds=1.0,
        )
        assert len(events) == 50
        offsets = [e.offset_seconds for e in events]
        assert offsets == sorted(offsets)
        assert {e.priority for e in events} == {
            Priority.INTERACTIVE, Priority.BULK
        }
        assert any(e.duplicate_of is not None for e in events)
        for e in events:
            if e.duplicate_of is not None:
                assert e.duplicate_of < events.index(e) + 1

    def test_bursty_trace_is_burstier_than_poisson(self):
        n, rate = 400, 200.0
        poisson = poisson_trace(n, rate, seed=7, duplicate_fraction=0.0)
        bursty = bursty_trace(
            n, rate, seed=7, burst_factor=8.0, burst_fraction=0.3,
            duplicate_fraction=0.0,
        )

        def cv2(events):  # squared coefficient of variation of gaps
            offs = [e.offset_seconds for e in events]
            gaps = [b - a for a, b in zip(offs, offs[1:])]
            mean = sum(gaps) / len(gaps)
            var = sum((g - mean) ** 2 for g in gaps) / len(gaps)
            return var / (mean * mean)

        assert cv2(bursty) > cv2(poisson)

    def test_trace_parameter_validation(self):
        with pytest.raises(ServiceError):
            poisson_trace(5, 0.0)
        with pytest.raises(ServiceError):
            bursty_trace(5, -1.0)
        with pytest.raises(ServiceError):
            bursty_trace(5, 10.0, burst_factor=0.5)

    def test_replay_resubmits_duplicates_and_absorbs_rejections(
        self, circuits, backend
    ):
        cc, _, key = circuits["a"]
        events = poisson_trace(
            30, 2000.0, seed=5, duplicate_fraction=0.3
        )

        def make_request(i):
            return _task(cc, i), key, _wkey(i)

        policy = BatchPolicy(max_batch_size=8, max_wait_seconds=0.002)
        with ProofService(backend, policy=policy, max_queue=64) as svc:
            tickets, rejected = replay(svc, events, make_request)
            svc.drain(timeout=120)
            results = [t.result(timeout=60) for t in tickets if t is not None]
        assert rejected == 0
        assert len(results) == 30
        assert svc.stats.coalesced + svc.stats.cache_hits >= 1


# -- the acceptance-criteria end-to-end run ------------------------------------

class TestEndToEnd:
    def test_streamed_load_batches_caches_rejects_and_verifies(
        self, circuits, backend
    ):
        """≥100 streamed requests, 2 priority classes, multiple batch
        sizes, cache hits, typed full-queue rejection, all proofs verify."""
        cc, _, key = circuits["a"]
        gated = GatedBackend(backend)
        policy = BatchPolicy(max_batch_size=16, max_wait_seconds=0.005)
        svc = ProofService(
            gated, policy=policy, max_queue=50,
            high_watermark=50, low_watermark=25,  # isolate the hard bound
        )
        tickets, rejected = [], 0

        def push(i, priority):
            nonlocal rejected
            try:
                tickets.append(svc.submit(
                    _task(cc, i), circuit_key=key, witness_key=_wkey(i % 70),
                    priority=priority, deadline_seconds=120.0,
                ))
            except AdmissionError as exc:
                assert exc.reason == "queue_full"
                rejected += 1

        # Phase 1: burst into a blocked backend until the queue overflows.
        for i in range(70):
            push(i, Priority.INTERACTIVE if i % 3 == 0 else Priority.BULK)
        assert rejected > 0, "burst should overflow max_queue=50"
        gated.release.set()
        # Let phase 1 finish before replaying its keys: a repeat of an
        # *in-flight* request coalesces rather than cache-hits, so the
        # cache-hit assertions below need phase-1 results to be cached.
        assert svc.drain(timeout=300)

        # Phase 2: paced arrivals (varied batch sizes) incl. repeats of
        # phase-1 keys, which land as cache hits or coalesces.
        for i in range(70, 140):
            push(i, Priority.INTERACTIVE if i % 3 == 0 else Priority.BULK)
            if i % 10 == 0:
                time.sleep(0.01)
        assert svc.drain(timeout=300)
        svc.close()

        assert len(tickets) + rejected >= 140  # ≥100 streamed requests
        priorities = {t.priority for t in tickets}
        assert priorities == {Priority.INTERACTIVE, Priority.BULK}

        histogram = svc.stats.batch_size_histogram
        assert len(histogram) > 1, f"expected varied batch sizes: {histogram}"
        assert sum(histogram.values()) >= 2

        assert svc.stats.cache_hits > 0
        assert svc.stats.cache_hit_rate > 0
        assert svc.stats.rejections["queue_full"] == rejected

        verifier = backend.verifier_for(key)
        proofs = [t.result(timeout=120) for t in tickets]
        assert all(verifier.verify(p, cc.public_values) for p in proofs)
        assert svc.stats.completed == len(tickets)
        assert svc.stats.failed == 0


# -- failure recovery (S25 satellites) ----------------------------------------

class GatedFlakyBackend:
    """Holds the first prove_batch open, then fails the first N calls.

    The gate keeps the leader's batch in flight while followers coalesce
    onto its cache claim, which is the exact shape the single-flight
    retry path has to recover.
    """

    def __init__(self, inner, failures=1):
        self.inner = inner
        self.failures = failures
        self.release = threading.Event()
        self.calls = 0

    def prove_batch(self, circuit_key, requests):
        self.calls += 1
        if self.calls == 1:
            self.release.wait(timeout=30)
        if self.calls <= self.failures:
            raise RuntimeError("transient farm fault")
        return self.inner.prove_batch(circuit_key, requests)


class TestFailureRecovery:
    def test_follower_retries_independently_after_batch_failure(
        self, circuits, backend
    ):
        """A coalesced follower never had its own attempt: one batch
        failure must cost the leader, not every parked duplicate."""
        cc, _, key = circuits["a"]
        flaky = GatedFlakyBackend(backend, failures=1)
        policy = BatchPolicy(max_batch_size=4, max_wait_seconds=0.0)
        with ProofService(flaky, policy=policy, max_queue=16) as svc:
            leader = svc.submit(
                _task(cc, 0), circuit_key=key, witness_key=_wkey(0)
            )
            time.sleep(0.05)  # leader's batch is gated in flight
            follower = svc.submit(
                _task(cc, 0), circuit_key=key, witness_key=_wkey(0)
            )
            flaky.release.set()
            with pytest.raises(ProofError, match="batch of"):
                leader.result(timeout=30)
            proof = follower.result(timeout=30)  # promoted retry proved it
            verifier = backend.verifier_for(key)
            assert verifier.verify(proof, cc.public_values)
        assert flaky.calls == 2
        assert svc.stats.follower_retries == 1
        assert svc.stats.failed == 1
        assert svc.stats.completed == 1

    def test_second_failure_fails_followers_too(self, circuits, backend):
        """One independent retry, not a loop: attempt 2 failing is
        terminal for the promoted follower and everyone parked on it."""
        cc, _, key = circuits["a"]
        flaky = GatedFlakyBackend(backend, failures=2)
        policy = BatchPolicy(max_batch_size=4, max_wait_seconds=0.0)
        with ProofService(flaky, policy=policy, max_queue=16) as svc:
            leader = svc.submit(
                _task(cc, 0), circuit_key=key, witness_key=_wkey(0)
            )
            time.sleep(0.05)
            followers = [
                svc.submit(
                    _task(cc, 0), circuit_key=key, witness_key=_wkey(0)
                )
                for _ in range(2)
            ]
            flaky.release.set()
            for ticket in [leader] + followers:
                with pytest.raises(ProofError, match="batch of"):
                    ticket.result(timeout=30)
        assert flaky.calls == 2  # no third attempt
        assert svc.stats.follower_retries == 2
        assert svc.stats.failed == 3

    def test_quarantined_slot_fails_only_its_ticket(self, circuits, backend):
        cc, _, key = circuits["a"]

        class QuarantineOneBackend:
            def prove_batch(self, circuit_key, requests):
                results = backend.prove_batch(circuit_key, requests)
                return [
                    QuarantinedTaskError(13, ["0:serial"], "poison")
                    if r.payload.task_id == 13 else proof
                    for r, proof in zip(requests, results)
                ]

        policy = BatchPolicy(max_batch_size=2, max_wait_seconds=0.2)
        with ProofService(
            QuarantineOneBackend(), policy=policy, max_queue=16
        ) as svc:
            good = svc.submit(
                _task(cc, 0), circuit_key=key, witness_key=_wkey(0)
            )
            bad = svc.submit(
                _task(cc, 13), circuit_key=key, witness_key=_wkey(13)
            )
            verifier = backend.verifier_for(key)
            assert verifier.verify(good.result(timeout=30), cc.public_values)
            with pytest.raises(QuarantinedTaskError, match="task 13"):
                bad.result(timeout=30)
        assert svc.stats.completed == 1
        assert svc.stats.failed == 1

    def test_batcher_survives_dispatch_crash(self, circuits, backend):
        """A bug escaping _dispatch fails that batch's tickets and
        nothing else; the scheduler thread keeps serving the queue."""
        cc, _, key = circuits["a"]
        policy = BatchPolicy(max_batch_size=1, max_wait_seconds=0.0)
        with ProofService(backend, policy=policy, max_queue=16) as svc:
            real_dispatch = svc._dispatch
            crashes = {"n": 0}

            def buggy_dispatch(batch):
                if crashes["n"] == 0:
                    crashes["n"] += 1
                    raise RuntimeError("scheduler bug")
                return real_dispatch(batch)

            svc._dispatch = buggy_dispatch
            doomed = svc.submit(
                _task(cc, 0), circuit_key=key, witness_key=_wkey(0)
            )
            with pytest.raises(ServiceError, match="dispatch crashed"):
                doomed.result(timeout=30)
            healthy = svc.submit(
                _task(cc, 1), circuit_key=key, witness_key=_wkey(1)
            )
            verifier = backend.verifier_for(key)
            assert verifier.verify(
                healthy.result(timeout=30), cc.public_values
            )
            assert svc._batcher.is_alive()
        assert svc.stats.batcher_errors == 1
        assert svc.stats.failed == 1
        assert svc.stats.completed == 1
