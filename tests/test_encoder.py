"""Linear-time encoder tests: sparse matrices, Spielman code, scheduling."""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EncodingError
from repro.field import DEFAULT_FIELD, PrimeField
from repro.field.primes import MERSENNE31
from repro.encoder import (
    EncoderParams,
    MAX_ROW_WEIGHT,
    SparseMatrix,
    SpielmanEncoder,
    WARP_SIZE,
    bucket_sort_rows,
    sorted_schedule,
    sorting_speedup,
    unsorted_schedule,
)

F = DEFAULT_FIELD
F31 = PrimeField(MERSENNE31, name="M31", check=False)


class TestSparseMatrix:
    def test_apply_matches_dense(self, rng):
        m = SparseMatrix.random_expander(F, 10, 6, 3, rng)
        x = F.rand_vector(10, rng)
        dense = [[0] * 6 for _ in range(10)]
        for i, row in enumerate(m.rows):
            for j, w in row:
                dense[i][j] = w
        want = [
            sum(x[i] * dense[i][j] for i in range(10)) % F.modulus for j in range(6)
        ]
        assert m.apply(x) == want

    def test_apply_length_check(self, rng):
        m = SparseMatrix.random_expander(F, 4, 4, 2, rng)
        with pytest.raises(EncodingError):
            m.apply([1, 2, 3])

    def test_fixed_row_weight(self, rng):
        m = SparseMatrix.random_expander(F, 20, 50, 7, rng)
        assert all(len(r) == 7 for r in m.rows)
        assert m.nnz == 140

    def test_row_weight_clamped_to_out(self, rng):
        m = SparseMatrix.random_expander(F, 5, 3, 8, rng)
        assert all(len(r) == 3 for r in m.rows)

    def test_distinct_columns_per_row(self, rng):
        m = SparseMatrix.random_expander(F, 30, 40, 10, rng)
        for row in m.rows:
            cols = [j for j, _ in row]
            assert len(set(cols)) == len(cols)

    def test_rejects_row_over_max_weight(self):
        rows = [[(j, 1) for j in range(MAX_ROW_WEIGHT + 1)]]
        with pytest.raises(EncodingError):
            SparseMatrix(F, 1, MAX_ROW_WEIGHT + 1, rows)

    def test_rejects_zero_weight(self):
        with pytest.raises(EncodingError):
            SparseMatrix(F, 1, 2, [[(0, 0)]])

    def test_rejects_bad_column(self):
        with pytest.raises(EncodingError):
            SparseMatrix(F, 1, 2, [[(5, 1)]])

    def test_apply_f31_matches_python(self, rng):
        m = SparseMatrix.random_expander(F31, 64, 40, 6, rng)
        x = np.random.default_rng(0).integers(0, MERSENNE31, 64, dtype=np.uint64)
        got = m.apply_f31(x)
        want = m.apply([int(v) for v in x])
        assert [int(v) for v in got] == want

    def test_apply_f31_wrong_field(self, rng):
        m = SparseMatrix.random_expander(F, 4, 4, 2, rng)
        with pytest.raises(EncodingError):
            m.apply_f31(np.zeros(4, dtype=np.uint64))

    def test_statistics(self, rng):
        m = SparseMatrix.random_expander(F, 10, 20, 4, rng)
        assert sum(m.column_degrees()) == m.nnz
        assert m.row_lengths() == [4] * 10
        assert 0 < m.density() < 1

    def test_linearity(self, rng):
        m = SparseMatrix.random_expander(F, 8, 8, 3, rng)
        x = F.rand_vector(8, rng)
        y = F.rand_vector(8, rng)
        a, b = F.rand(rng), F.rand(rng)
        combo = [(a * xi + b * yi) % F.modulus for xi, yi in zip(x, y)]
        want = [
            (a * u + b * v) % F.modulus for u, v in zip(m.apply(x), m.apply(y))
        ]
        assert m.apply(combo) == want


class TestEncoderParams:
    def test_defaults_valid(self):
        p = EncoderParams()
        assert p.codeword_length(100) == 200

    def test_rejects_bad_alpha(self):
        with pytest.raises(EncodingError):
            EncoderParams(alpha=0.0)
        with pytest.raises(EncodingError):
            EncoderParams(alpha=1.0)

    def test_rejects_no_parity_room(self):
        with pytest.raises(EncodingError):
            EncoderParams(alpha=0.6, inv_rate=2)  # q(1-a) = 0.8 <= 1

    def test_rejects_rate_one(self):
        with pytest.raises(EncodingError):
            EncoderParams(inv_rate=1)


class TestSpielmanEncoder:
    @pytest.mark.parametrize("n", [16, 33, 64, 200, 512])
    def test_codeword_length_and_systematic(self, n, rng):
        enc = SpielmanEncoder(F, n, seed=1)
        x = F.rand_vector(n, rng)
        cw = enc.encode(x)
        assert len(cw) == 2 * n
        assert cw[:n] == x

    def test_recursive_equals_iterative(self, rng):
        for n in (40, 100, 256):
            enc = SpielmanEncoder(F, n, seed=3)
            x = F.rand_vector(n, rng)
            assert enc.encode(x) == enc.encode_recursive(x)

    def test_base_case_only(self, rng):
        enc = SpielmanEncoder(F, 16, seed=0)  # <= base_size: no stages
        assert enc.num_stages == 0
        x = F.rand_vector(16, rng)
        cw = enc.encode(x)
        assert len(cw) == 32 and cw[:16] == x

    def test_determinism_from_seed(self, rng):
        x = F.rand_vector(128, rng)
        a = SpielmanEncoder(F, 128, seed=9).encode(x)
        b = SpielmanEncoder(F, 128, seed=9).encode(x)
        c = SpielmanEncoder(F, 128, seed=10).encode(x)
        assert a == b
        assert a != c

    def test_linearity(self, rng):
        enc = SpielmanEncoder(F, 100, seed=4)
        x = F.rand_vector(100, rng)
        y = F.rand_vector(100, rng)
        a, b = F.rand(rng), F.rand(rng)
        combo = [(a * xi + b * yi) % F.modulus for xi, yi in zip(x, y)]
        want = [
            (a * u + b * v) % F.modulus
            for u, v in zip(enc.encode(x), enc.encode(y))
        ]
        assert enc.encode(combo) == want

    def test_zero_encodes_to_zero(self):
        enc = SpielmanEncoder(F, 64, seed=2)
        assert enc.encode([0] * 64) == [0] * 128

    def test_distance_smoke(self, rng):
        """Random nonzero messages should produce high-weight codewords —
        a sanity proxy for the expander code's distance."""
        enc = SpielmanEncoder(F, 128, seed=5)
        for _ in range(5):
            x = [0] * 128
            x[rng.randrange(128)] = F.rand_nonzero(rng)
            cw = enc.encode(x)
            nonzero = sum(1 for v in cw if v)
            assert nonzero >= 8  # a single message symbol spreads out

    def test_wrong_length_raises(self):
        enc = SpielmanEncoder(F, 64, seed=0)
        with pytest.raises(EncodingError):
            enc.encode([1] * 63)

    def test_encode_f31_matches(self, rng):
        enc = SpielmanEncoder(F31, 200, seed=7)
        x = np.random.default_rng(3).integers(0, MERSENNE31, 200, dtype=np.uint64)
        got = enc.encode_f31(x)
        want = enc.encode([int(v) for v in x])
        assert [int(v) for v in got] == want

    def test_encode_f31_wrong_field(self):
        enc = SpielmanEncoder(F, 64, seed=0)
        with pytest.raises(EncodingError):
            enc.encode_f31(np.zeros(64, dtype=np.uint64))

    def test_stage_work_profile_structure(self):
        enc = SpielmanEncoder(F, 512, seed=1)
        profile = enc.stage_work_profile()
        kinds = [p["pipeline"] for p in profile]
        assert kinds.count("base") == 1
        assert kinds.count("forward") == kinds.count("backward") == enc.num_stages
        assert sum(p["nnz"] for p in profile) == enc.total_nnz()

    @given(n=st.integers(min_value=33, max_value=300), seed=st.integers(0, 50))
    @settings(max_examples=15, deadline=None)
    def test_property_systematic_and_length(self, n, seed):
        rng = random.Random(seed)
        enc = SpielmanEncoder(F, n, seed=seed)
        x = F.rand_vector(n, rng)
        cw = enc.encode(x)
        assert len(cw) == 2 * n and cw[:n] == x


class TestWarpScheduling:
    def test_bucket_sort_is_sorted(self, rng):
        lens = [rng.randrange(0, 256) for _ in range(500)]
        order = bucket_sort_rows(lens)
        values = [lens[i] for i in order]
        assert values == sorted(values)
        assert sorted(order) == list(range(500))

    def test_bucket_sort_stability(self):
        lens = [5, 3, 5, 3]
        assert bucket_sort_rows(lens) == [1, 3, 0, 2]

    def test_rejects_out_of_range(self):
        with pytest.raises(EncodingError):
            bucket_sort_rows([256])

    def test_sorted_never_worse(self, rng):
        for _ in range(10):
            lens = [rng.randrange(1, 200) for _ in range(rng.randrange(32, 400))]
            assert sorted_schedule(lens).simd_cost <= unsorted_schedule(lens).simd_cost

    def test_uniform_lengths_no_gain(self):
        lens = [17] * 128
        assert sorting_speedup(lens) == 1.0

    def test_work_conservation(self, rng):
        lens = [rng.randrange(1, 100) for _ in range(333)]
        s = sorted_schedule(lens)
        u = unsorted_schedule(lens)
        assert s.total_work == u.total_work == sum(lens)

    def test_warp_partition(self, rng):
        lens = [rng.randrange(1, 50) for _ in range(100)]
        sched = sorted_schedule(lens)
        seen = [i for w in sched.warps for i in w.row_indices]
        assert sorted(seen) == list(range(100))
        assert all(len(w.row_indices) <= WARP_SIZE for w in sched.warps)

    def test_imbalance_at_least_one(self, rng):
        lens = [rng.randrange(1, 256) for _ in range(256)]
        assert sorted_schedule(lens).imbalance >= 1.0

    def test_wasted_lanes_nonnegative(self, rng):
        lens = [rng.randrange(1, 256) for _ in range(77)]
        assert sorted_schedule(lens).wasted_lanes >= 0

    def test_bimodal_lengths_big_gain(self):
        """Alternating short/long rows is the worst case for unsorted."""
        lens = [1, 200] * 64
        assert sorting_speedup(lens) > 1.8
