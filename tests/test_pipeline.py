"""Pipeline stage-graph and full-system tests (paper §3–§4 claims)."""

import pytest

from repro.errors import PipelineError
from repro.gpu import GpuCostModel, get_gpu, run_cpu, run_naive, run_pipelined
from repro.gpu.device import CPU_C5A_8XLARGE
from repro.pipeline import (
    BatchZkpSystem,
    build_module_graphs,
    encoder_graph,
    encoder_stage_sizes,
    merkle_graph,
    sumcheck_graph,
    zkp_system_graph,
)

GH200 = get_gpu("GH200")
COSTS = GpuCostModel()


class TestMerkleGraph:
    def test_layer_count(self):
        g = merkle_graph(1 << 10)
        assert len(g.stages) == 11  # layers 0..10

    def test_halving_work(self):
        g = merkle_graph(1 << 8)
        works = [s.work_units for s in g.stages]
        assert works == [256, 128, 64, 32, 16, 8, 4, 2, 1]

    def test_total_hashes_2n(self):
        g = merkle_graph(1 << 12)
        assert sum(s.work_units for s in g.stages) == 2 * (1 << 12) - 1

    def test_non_power_of_two(self):
        g = merkle_graph(100)
        assert g.stages[0].work_units == 100
        assert g.stages[-1].work_units == 1

    def test_tail_merge_preserves_work(self):
        full = merkle_graph(1 << 12)
        capped = merkle_graph(1 << 12, max_stages=5)
        assert len(capped.stages) == 5
        assert sum(s.work_units for s in capped.stages) == sum(
            s.work_units for s in full.stages
        )
        assert capped.total_bytes_out() == full.total_bytes_out()

    def test_input_bytes_on_first_stage_only(self):
        g = merkle_graph(1 << 8)
        assert g.stages[0].bytes_in == 64 * 256
        assert all(s.bytes_in == 0 for s in g.stages[1:])

    def test_too_small(self):
        with pytest.raises(PipelineError):
            merkle_graph(1)


class TestSumcheckGraph:
    def test_round_count(self):
        g = sumcheck_graph(10)
        assert len(g.stages) == 10

    def test_entry_reads_per_round(self):
        g = sumcheck_graph(4)
        assert [s.work_units for s in g.stages] == [16, 8, 4, 2]

    def test_instances_scale_work(self):
        g1 = sumcheck_graph(6, instances=1)
        g3 = sumcheck_graph(6, instances=3)
        assert sum(s.work_units for s in g3.stages) == 3 * sum(
            s.work_units for s in g1.stages
        )

    def test_table_loads_once(self):
        g = sumcheck_graph(6)
        assert g.stages[0].bytes_in == 32 * 64
        assert all(s.bytes_in == 0 for s in g.stages[1:])

    def test_invalid_vars(self):
        with pytest.raises(PipelineError):
            sumcheck_graph(0)


class TestEncoderGraph:
    def test_stage_sizes_match_encoder(self):
        """The analytic stage sizes must mirror SpielmanEncoder's build."""
        from repro.field import DEFAULT_FIELD
        from repro.encoder import SpielmanEncoder

        n = 1000
        enc = SpielmanEncoder(DEFAULT_FIELD, n, seed=0)
        sizes = encoder_stage_sizes(n)
        forward = [s for s in sizes if s["kind"] == "forward"]
        assert len(forward) == enc.num_stages
        for spec, stage in zip(forward, enc.stages):
            assert spec["in"] == stage.message_length
            assert spec["out"] == stage.shrunk_length

    def test_pipeline_order(self):
        sizes = encoder_stage_sizes(1 << 10)
        kinds = [s["kind"] for s in sizes]
        base_idx = kinds.index("base")
        assert all(k == "forward" for k in kinds[:base_idx])
        assert all(k == "backward" for k in kinds[base_idx + 1 :])

    def test_total_work_is_linear(self):
        """O(N) encoder: MAC count within a small constant of N."""
        for lg in (10, 14, 18):
            g = encoder_graph(1 << lg)
            macs = sum(s.work_units for s in g.stages)
            assert macs < 20 * (1 << lg)

    def test_codeword_leaves_last_stage(self):
        g = encoder_graph(1 << 10)
        assert g.stages[-1].bytes_out == 32 * 2 * (1 << 10)
        assert all(s.bytes_out == 0 for s in g.stages[:-1])

    def test_invalid_message(self):
        with pytest.raises(PipelineError):
            encoder_graph(0)


class TestPaperClaims:
    """Simulator-level reproduction of the paper's qualitative claims."""

    def test_pipelined_beats_naive_all_modules(self):
        """Tables 3-5: ours > GPU baseline > CPU baseline, every size."""
        for lg in (14, 16, 18):
            for graph, penalty in (
                (merkle_graph(1 << lg, COSTS), COSTS.naive_merkle_penalty),
                (sumcheck_graph(lg, COSTS), COSTS.naive_sumcheck_penalty),
                (encoder_graph(1 << lg, COSTS), COSTS.naive_encoder_penalty),
            ):
                ours = run_pipelined(GH200, graph, 32, include_transfers=False)
                base = run_naive(GH200, graph, 32, compute_penalty=penalty)
                cpu = run_cpu(CPU_C5A_8XLARGE, graph, 4)
                assert (
                    ours.steady_throughput_per_second
                    > base.steady_throughput_per_second
                    > cpu.steady_throughput_per_second
                )

    def test_speedup_grows_as_size_shrinks(self):
        """Tables 3-4: the pipelined advantage widens for small inputs."""
        speedups = []
        for lg in (22, 18):
            g = merkle_graph(1 << lg, COSTS)
            ours = run_pipelined(GH200, g, 32, include_transfers=False)
            simon = run_naive(
                GH200, g, 32, compute_penalty=COSTS.naive_merkle_penalty
            )
            speedups.append(
                ours.steady_throughput_per_second
                / simon.steady_throughput_per_second
            )
        assert speedups[1] > speedups[0]

    def test_dynamic_memory_beats_preload(self):
        """§3.1: pipelined resident set is a single task's ≈2N blocks."""
        g = merkle_graph(1 << 14, COSTS)
        pipe = run_pipelined(GH200, g, 64, include_transfers=False)
        naive = run_naive(GH200, g, 64)
        assert pipe.memory_high_water_bytes <= naive.memory_high_water_bytes


class TestSystem:
    def test_graph_composition(self):
        graphs = build_module_graphs(1 << 14)
        g = zkp_system_graph(1 << 14)
        assert len(g.stages) == sum(len(m.stages) for m in graphs.values())

    def test_comm_bytes_calibration(self):
        """Table 9: 320 B/gate of beat traffic."""
        scale = 1 << 14
        g = zkp_system_graph(scale)
        total = g.total_bytes_in() + g.total_bytes_out()
        assert total == pytest.approx(320 * scale, rel=0.02)

    def test_scale_floor(self):
        with pytest.raises(PipelineError):
            build_module_graphs(100)

    def test_system_result_fields(self):
        system = BatchZkpSystem("GH200", scale=1 << 14)
        res = system.simulate(batch_size=64)
        assert res.scale == 1 << 14
        assert res.throughput_per_second > 0
        assert res.latency_seconds > res.sim.beat.overall_seconds
        assert set(res.module_amortized_seconds) == {
            "encoder",
            "merkle",
            "sumcheck",
        }

    def test_module_breakdown_sums_to_beat(self):
        system = BatchZkpSystem("GH200", scale=1 << 16)
        res = system.simulate(batch_size=64)
        total = sum(res.module_amortized_seconds.values())
        # Breakdown is the ideal work split; the realized beat is >= it but
        # close (allocator quantization + sync overhead).
        assert total <= res.sim.beat.comp_seconds * 1.1
        assert total >= res.sim.beat.comp_seconds * 0.7

    def test_sumcheck_dominates_breakdown(self):
        """Table 7: sum-check is the largest module; Merkle the smallest."""
        res = BatchZkpSystem("GH200", scale=1 << 16).simulate(batch_size=32)
        bd = res.module_amortized_seconds
        assert bd["sumcheck"] > bd["encoder"] > bd["merkle"]

    def test_thread_allocation_module_ratio(self):
        """§4: module thread shares follow the work ratio (sum-check gets
        the most, Merkle the least)."""
        system = BatchZkpSystem("V100", scale=1 << 20, total_threads=10240)
        alloc = system.thread_allocation()
        assert sum(alloc.values()) == 10240
        assert alloc["sumcheck"] > alloc["encoder"] > alloc["merkle"]

    def test_throughput_scales_across_devices(self):
        """Table 8: more capable devices give higher throughput."""
        results = {
            dev: BatchZkpSystem(dev, scale=1 << 16).simulate(64)
            for dev in ("V100", "A100", "H100")
        }
        assert (
            results["H100"].sim.steady_throughput_per_second
            > results["A100"].sim.steady_throughput_per_second
            > results["V100"].sim.steady_throughput_per_second
        )

    def test_multi_stream_helps(self):
        """Table 9: overlap reduces the beat versus serialized transfers."""
        system = BatchZkpSystem("V100", scale=1 << 20)
        with_streams = system.simulate(batch_size=32, multi_stream=True)
        without = system.simulate(batch_size=32, multi_stream=False)
        assert (
            with_streams.sim.beat.overall_seconds
            < without.sim.beat.overall_seconds
        )

    def test_memory_linear_in_scale(self):
        small = BatchZkpSystem("GH200", scale=1 << 16).simulate(8)
        large = BatchZkpSystem("GH200", scale=1 << 18).simulate(8)
        ratio = (
            large.sim.memory_high_water_bytes / small.sim.memory_high_water_bytes
        )
        assert ratio == pytest.approx(4.0, rel=0.1)

    def test_memory_far_below_bellperson(self):
        """Table 10: ours uses ~10x less device memory per proof."""
        from repro.baselines import bellperson_memory_gb

        res = BatchZkpSystem("GH200", scale=1 << 20).simulate(8)
        assert res.memory_high_water_gb < bellperson_memory_gb(1 << 20) / 3
