"""R1CS gadget tests: bit decomposition, comparisons, ReLU, mux."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CircuitBuilder,
    SnarkProver,
    SnarkVerifier,
    abs_value,
    assert_in_range,
    compile_builder,
    from_bits,
    is_zero,
    less_than,
    make_pcs,
    max_gadget,
    mux,
    relu,
    sign_bit,
    to_bits,
)
from repro.errors import CircuitError
from repro.field import DEFAULT_FIELD

F = DEFAULT_FIELD


def finalize_and_check(cb):
    r1cs, witness, publics = cb.finalize()
    assert r1cs.is_satisfied(witness)
    return r1cs, witness, publics


class TestBits:
    @given(value=st.integers(min_value=0, max_value=(1 << 12) - 1))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip(self, value):
        cb = CircuitBuilder(F)
        x = cb.private_input(value)
        bits = to_bits(cb, x, 12)
        assert [cb.wire_value(b) for b in bits] == [
            (value >> i) & 1 for i in range(12)
        ]
        back = from_bits(cb, bits)
        cb.assert_equal(back, x)
        finalize_and_check(cb)

    def test_gate_cost(self):
        cb = CircuitBuilder(F)
        x = cb.private_input(123)
        before = cb.num_multiplications
        to_bits(cb, x, 8)
        # 8 booleanity checks + 1 recomposition equality.
        assert cb.num_multiplications - before == 9

    def test_out_of_range_rejected(self):
        cb = CircuitBuilder(F)
        x = cb.private_input(256)
        with pytest.raises(CircuitError):
            to_bits(cb, x, 8)

    def test_assert_in_range(self):
        cb = CircuitBuilder(F)
        assert_in_range(cb, cb.private_input(255), 8)
        finalize_and_check(cb)

    def test_empty_bits_rejected(self):
        cb = CircuitBuilder(F)
        with pytest.raises(CircuitError):
            from_bits(cb, [])


class TestIsZeroAndMux:
    @pytest.mark.parametrize("value,expected", [(0, 1), (1, 0), (12345, 0)])
    def test_is_zero(self, value, expected):
        cb = CircuitBuilder(F)
        out = is_zero(cb, cb.private_input(value))
        assert cb.wire_value(out) == expected
        finalize_and_check(cb)

    def test_mux_selects(self):
        cb = CircuitBuilder(F)
        a, b = cb.private_input(10), cb.private_input(20)
        one, zero = cb.private_input(1), cb.private_input(0)
        assert cb.wire_value(mux(cb, one, a, b)) == 10
        assert cb.wire_value(mux(cb, zero, a, b)) == 20
        finalize_and_check(cb)

    def test_mux_nonboolean_rejected(self):
        cb = CircuitBuilder(F)
        a, b = cb.private_input(10), cb.private_input(20)
        with pytest.raises(CircuitError):
            mux(cb, cb.private_input(2), a, b)


class TestSignedGadgets:
    @given(value=st.integers(min_value=-(1 << 10), max_value=(1 << 10) - 1))
    @settings(max_examples=40, deadline=None)
    def test_relu(self, value):
        cb = CircuitBuilder(F)
        x = cb.private_input(value)
        out = relu(cb, x, bits=12)
        want = max(value, 0) % F.modulus
        assert cb.wire_value(out) == want
        finalize_and_check(cb)

    @given(value=st.integers(min_value=-(1 << 10), max_value=(1 << 10) - 1))
    @settings(max_examples=30, deadline=None)
    def test_abs(self, value):
        cb = CircuitBuilder(F)
        out = abs_value(cb, cb.private_input(value), bits=12)
        assert cb.wire_value(out) == abs(value) % F.modulus
        finalize_and_check(cb)

    def test_sign_bit(self):
        for value, want in ((-5, 0), (0, 1), (7, 1)):
            cb = CircuitBuilder(F)
            nonneg, bits = sign_bit(cb, cb.private_input(value), bits=8)
            assert cb.wire_value(nonneg) == want
            assert len(bits) == 8
            finalize_and_check(cb)

    def test_out_of_signed_range_rejected(self):
        cb = CircuitBuilder(F)
        with pytest.raises(CircuitError):
            relu(cb, cb.private_input(1 << 12), bits=12)


class TestComparisons:
    @given(
        a=st.integers(min_value=0, max_value=255),
        b=st.integers(min_value=0, max_value=255),
    )
    @settings(max_examples=40, deadline=None)
    def test_less_than(self, a, b):
        cb = CircuitBuilder(F)
        out = less_than(cb, cb.private_input(a), cb.private_input(b), bits=8)
        assert cb.wire_value(out) == int(a < b)
        finalize_and_check(cb)

    @given(
        a=st.integers(min_value=0, max_value=255),
        b=st.integers(min_value=0, max_value=255),
    )
    @settings(max_examples=30, deadline=None)
    def test_max(self, a, b):
        cb = CircuitBuilder(F)
        out = max_gadget(cb, cb.private_input(a), cb.private_input(b), bits=8)
        assert cb.wire_value(out) == max(a, b)
        finalize_and_check(cb)

    def test_operand_too_wide_rejected(self):
        cb = CircuitBuilder(F)
        with pytest.raises(CircuitError):
            less_than(cb, cb.private_input(256), cb.private_input(0), bits=8)


class TestGadgetsInProofs:
    def test_prove_relu_statement(self):
        """End-to-end proof of a statement containing a ReLU gadget."""
        cb = CircuitBuilder(F)
        x = cb.private_input(-42)
        cb.expose_public(relu(cb, x, bits=16))
        cc = compile_builder(cb)
        assert cc.public_values == [0]
        pcs = make_pcs(F, cc.r1cs, num_col_checks=5)
        prover = SnarkProver(cc.r1cs, pcs, public_indices=cc.public_indices)
        verifier = SnarkVerifier(cc.r1cs, pcs, public_indices=cc.public_indices)
        proof = prover.prove(cc.witness, cc.public_values)
        assert verifier.verify(proof, [0])
        assert not verifier.verify(proof, [F.modulus - 42])

    def test_prove_range_statement(self):
        """'This committed value fits 16 bits' — a pure range proof."""
        cb = CircuitBuilder(F)
        x = cb.private_input(40000)
        assert_in_range(cb, x, 16)
        cb.expose_public(cb.mul(x, cb.constant(1)))
        cc = compile_builder(cb)
        pcs = make_pcs(F, cc.r1cs, num_col_checks=5)
        prover = SnarkProver(cc.r1cs, pcs, public_indices=cc.public_indices)
        verifier = SnarkVerifier(cc.r1cs, pcs, public_indices=cc.public_indices)
        proof = prover.prove(cc.witness, cc.public_values)
        assert verifier.verify(proof, [40000])
