"""Parallel proving runtime tests (S22): parity, robustness, observability."""

import json
import time

import pytest

from repro.core import (
    BatchProver,
    ProofTask,
    SnarkProver,
    make_pcs,
    random_circuit,
    verify_all,
)
from repro.core.serialize import serialize_proof
from repro.errors import ProofError
from repro.field import DEFAULT_FIELD
from repro.runtime import (
    JsonlTraceSink,
    ParallelProvingRuntime,
    ProverSpec,
    RuntimeStats,
    TaskRecord,
    percentile,
)

F = DEFAULT_FIELD


# -- module-level fault injectors (must be picklable for worker processes) ----

def crash_task2_once(task_id: int, attempt: int) -> None:
    if task_id == 2 and attempt == 1:
        raise RuntimeError("injected crash")


def poison_task1(task_id: int, attempt: int) -> None:
    if task_id == 1:
        raise RuntimeError("poison")


def sleep_task0(task_id: int, attempt: int) -> None:
    if task_id == 0:
        time.sleep(0.6)


def sleep_task0_first_attempt(task_id: int, attempt: int) -> None:
    if task_id == 0 and attempt == 1:
        time.sleep(0.6)


# -- fixtures -----------------------------------------------------------------

@pytest.fixture(scope="module")
def setup():
    cc = random_circuit(F, 48, seed=3)
    pcs = make_pcs(F, cc.r1cs, num_col_checks=4)
    prover = SnarkProver(cc.r1cs, pcs, public_indices=cc.public_indices)
    spec = ProverSpec.from_prover(prover)
    tasks = [ProofTask(i, cc.witness, cc.public_values) for i in range(6)]
    return prover, spec, tasks


@pytest.fixture(scope="module")
def serial_proofs(setup):
    prover, _, tasks = setup
    proofs, _ = BatchProver(prover).prove_all(tasks)
    return proofs


class TestSpec:
    def test_roundtrip_matches_original_pcs(self, setup):
        prover, spec, _ = setup
        rebuilt = spec.build_prover()
        assert rebuilt.pcs.params == prover.pcs.params
        assert rebuilt.r1cs.digest() == prover.r1cs.digest()

    def test_spec_is_picklable(self, setup):
        import pickle

        _, spec, _ = setup
        clone = pickle.loads(pickle.dumps(spec))
        assert clone.build_prover().pcs.params == spec.build_pcs().params

    def test_rebuilt_prover_produces_identical_proofs(self, setup, serial_proofs):
        _, spec, tasks = setup
        proof = spec.build_prover().prove(
            tasks[0].witness, tasks[0].public_values
        )
        assert serialize_proof(proof, F) == serialize_proof(serial_proofs[0], F)


class TestParity:
    """Pooled results must be indistinguishable from serial prove_all."""

    def test_pooled_proofs_identical_to_serial(self, setup, serial_proofs):
        _, spec, tasks = setup
        runtime = ParallelProvingRuntime(spec, workers=2)
        proofs, stats = runtime.prove_tasks(tasks)
        assert stats.proofs_generated == len(tasks)
        assert [serialize_proof(p, F) for p in proofs] == [
            serialize_proof(p, F) for p in serial_proofs
        ]
        assert verify_all(spec.build_verifier(), proofs, tasks)

    def test_chunked_dispatch_preserves_order(self, setup, serial_proofs):
        _, spec, tasks = setup
        runtime = ParallelProvingRuntime(spec, workers=2, chunk_size=3)
        proofs, _ = runtime.prove_tasks(tasks)
        assert [serialize_proof(p, F) for p in proofs] == [
            serialize_proof(p, F) for p in serial_proofs
        ]

    def test_workers_1_proves_inline(self, setup, serial_proofs):
        _, spec, tasks = setup
        runtime = ParallelProvingRuntime(spec, workers=1)
        proofs, stats = runtime.prove_tasks(tasks)
        assert stats.workers == 1
        assert not stats.fell_back_to_serial
        assert all(r.worker is None for r in stats.records)
        assert [serialize_proof(p, F) for p in proofs] == [
            serialize_proof(p, F) for p in serial_proofs
        ]

    def test_single_task_avoids_pool(self, setup):
        _, spec, tasks = setup
        runtime = ParallelProvingRuntime(spec, workers=4)
        proofs, stats = runtime.prove_tasks(tasks[:1])
        assert len(proofs) == 1 and stats.workers == 1


class TestRobustness:
    def test_retry_recovers_from_worker_exception(self, setup):
        _, spec, tasks = setup
        runtime = ParallelProvingRuntime(
            spec, workers=2, fault_injector=crash_task2_once
        )
        proofs, stats = runtime.prove_tasks(tasks)
        assert stats.retries >= 1
        record = next(r for r in stats.records if r.task_id == 2)
        assert record.attempts == 2
        assert verify_all(spec.build_verifier(), proofs, tasks)

    def test_retry_exhaustion_raises_proof_error(self, setup):
        _, spec, tasks = setup
        runtime = ParallelProvingRuntime(
            spec, workers=2, fault_injector=poison_task1, max_retries=1,
            retry_backoff_seconds=0.01,
        )
        with pytest.raises(ProofError, match="failed after 2 attempts"):
            runtime.prove_tasks(tasks)

    def test_timeout_surfaces_clean_proof_error(self, setup):
        _, spec, tasks = setup
        runtime = ParallelProvingRuntime(
            spec, workers=2, fault_injector=sleep_task0,
            task_timeout_seconds=0.15, max_retries=0,
        )
        with pytest.raises(ProofError, match="timeout"):
            runtime.prove_tasks(tasks)

    def test_timeout_then_retry_completes_batch(self, setup):
        _, spec, tasks = setup
        runtime = ParallelProvingRuntime(
            spec, workers=2, fault_injector=sleep_task0_first_attempt,
            task_timeout_seconds=0.15, max_retries=2,
            retry_backoff_seconds=0.01,
        )
        proofs, stats = runtime.prove_tasks(tasks)
        assert stats.timeouts >= 1
        assert verify_all(spec.build_verifier(), proofs, tasks)

    def test_serial_path_honors_retries_too(self, setup):
        _, spec, tasks = setup
        runtime = ParallelProvingRuntime(
            spec, workers=1, fault_injector=crash_task2_once,
            retry_backoff_seconds=0.01,
        )
        proofs, stats = runtime.prove_tasks(tasks)
        assert stats.retries == 1
        assert verify_all(spec.build_verifier(), proofs, tasks)

    def test_serial_timeout_recorded_not_preempted(self, setup, tmp_path):
        """Serial overruns are counted and traced with the same run-level
        event shape as the pooled path, but the proof still lands."""
        _, spec, tasks = setup
        path = str(tmp_path / "trace.jsonl")
        with JsonlTraceSink(path) as sink:
            runtime = ParallelProvingRuntime(
                spec, workers=1, trace=sink,
                task_timeout_seconds=1e-6, max_retries=0,
            )
            proofs, stats = runtime.prove_tasks(tasks)
        assert len(proofs) == len(tasks)  # recorded, not preempted
        assert stats.timeouts == len(tasks)
        assert verify_all(spec.build_verifier(), proofs, tasks)
        events = [json.loads(line) for line in open(path)]
        overruns = [e for e in events if e["event"] == "timeout"]
        assert [e["tasks"] for e in overruns] == [
            [t.task_id] for t in tasks
        ]
        assert all(e["seconds"] > 0 for e in overruns)
        run_span = next(
            e for e in events if e["event"] == "run_start"
        )["span"]
        assert all(e["span"] == run_span for e in overruns)

    def test_invalid_configuration_rejected(self, setup):
        _, spec, _ = setup
        with pytest.raises(ProofError):
            ParallelProvingRuntime(spec, workers=0)
        with pytest.raises(ProofError):
            ParallelProvingRuntime(spec, chunk_size=0)
        with pytest.raises(ProofError):
            ParallelProvingRuntime(spec, max_retries=-1)


class TestStats:
    def test_percentile_known_values(self):
        assert percentile([1, 2, 3, 4], 50) == 2.5
        assert percentile([1, 2, 3, 4], 0) == 1.0
        assert percentile([1, 2, 3, 4], 100) == 4.0
        assert percentile([10], 99) == 10.0
        assert percentile([], 50) == 0.0
        # 1..100: p95 interpolates between the 95th and 96th values.
        assert percentile(list(range(1, 101)), 95) == pytest.approx(95.05)
        with pytest.raises(ValueError):
            percentile([1], 101)

    def test_percentile_sorts_its_input(self):
        """The caller owes no ordering guarantee."""
        unsorted = [9.0, 1.0, 5.0, 3.0, 7.0]
        assert percentile(unsorted, 50) == 5.0
        assert percentile(unsorted, 0) == 1.0
        assert percentile(unsorted, 100) == 9.0
        assert unsorted == [9.0, 1.0, 5.0, 3.0, 7.0]  # input untouched

    def test_percentile_two_elements_interpolates(self):
        assert percentile([3, 1], 50) == 2.0
        assert percentile([3, 1], 25) == 1.5
        assert percentile([3, 1], 0) == 1.0
        assert percentile([3, 1], 100) == 3.0

    def test_percentile_q_bounds_rejected(self):
        for bad_q in (-0.001, -5, 100.001, 1000):
            with pytest.raises(ValueError, match=r"\[0, 100\]"):
                percentile([1, 2], bad_q)

    def test_empty_run_aggregates_are_all_zero(self):
        """A run that produced no records must report without crashing."""
        stats = RuntimeStats()
        assert stats.proofs_generated == 0
        assert stats.throughput_per_second == 0.0
        assert stats.latencies == []
        assert stats.p50_latency_seconds == 0.0
        assert stats.p95_latency_seconds == 0.0
        assert stats.p99_latency_seconds == 0.0
        assert stats.worker_utilization == 0.0
        assert stats.max_queue_depth == 0
        assert stats.mean_queue_depth == 0.0
        assert stats.total_attempts == 0
        assert "proofs          : 0" in stats.report()

    def test_latency_percentiles_on_known_records(self):
        stats = RuntimeStats(workers=2)
        for i, latency in enumerate([0.01 * k for k in range(1, 11)]):
            stats.records.append(
                TaskRecord(
                    task_id=i, attempts=1, prove_seconds=latency,
                    latency_seconds=latency,
                )
            )
        assert stats.p50_latency_seconds == pytest.approx(0.055)
        assert stats.p95_latency_seconds == pytest.approx(0.0955)
        assert stats.p99_latency_seconds == pytest.approx(0.0991)

    def test_utilization_and_throughput(self):
        stats = RuntimeStats(workers=4, total_seconds=2.0, busy_seconds=4.0)
        stats.records.append(
            TaskRecord(task_id=0, attempts=1, prove_seconds=1.0,
                       latency_seconds=1.0)
        )
        assert stats.worker_utilization == pytest.approx(0.5)
        assert stats.throughput_per_second == pytest.approx(0.5)

    def test_queue_depth_aggregates(self):
        stats = RuntimeStats(queue_depth_samples=[0, 2, 4])
        assert stats.max_queue_depth == 4
        assert stats.mean_queue_depth == pytest.approx(2.0)
        assert RuntimeStats().max_queue_depth == 0

    def test_report_is_human_readable(self, setup):
        _, spec, tasks = setup
        _, stats = ParallelProvingRuntime(spec, workers=2).prove_tasks(tasks)
        report = stats.report()
        for needle in ("proofs", "throughput", "latency p95", "utilization"):
            assert needle in report


class TestTrace:
    def test_jsonl_events_cover_lifecycle(self, setup, tmp_path):
        _, spec, tasks = setup
        path = str(tmp_path / "trace.jsonl")
        with JsonlTraceSink(path) as sink:
            runtime = ParallelProvingRuntime(
                spec, workers=2, trace=sink, fault_injector=crash_task2_once,
            )
            runtime.prove_tasks(tasks)
        events = [json.loads(line) for line in open(path)]
        kinds = {e["event"] for e in events}
        assert {"run_start", "submit", "complete", "retry", "run_end"} <= kinds
        completes = [e for e in events if e["event"] == "complete"]
        assert {e["task_id"] for e in completes} == {t.task_id for t in tasks}
        assert all("t" in e for e in events)

    def test_sink_counts_events(self, tmp_path):
        sink = JsonlTraceSink(str(tmp_path / "t.jsonl"))
        sink.emit("a", x=1)
        sink.emit("b")
        sink.close()
        assert sink.events_emitted == 2

    def test_concurrent_emit_is_thread_safe(self, tmp_path):
        """The batcher thread and dispatcher share one sink: lines must
        never interleave and the counter must never drop an increment."""
        import threading

        path = str(tmp_path / "concurrent.jsonl")
        sink = JsonlTraceSink(path)
        threads_n, emits_n = 8, 50

        def hammer(thread_id):
            for i in range(emits_n):
                sink.emit("tick", thread=thread_id, i=i, pad="x" * 64)

        threads = [
            threading.Thread(target=hammer, args=(t,))
            for t in range(threads_n)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        sink.close()
        assert sink.events_emitted == threads_n * emits_n
        lines = open(path).read().splitlines()
        assert len(lines) == threads_n * emits_n
        events = [json.loads(line) for line in lines]  # every line parses
        seen = {(e["thread"], e["i"]) for e in events}
        assert len(seen) == threads_n * emits_n


class TestBatchProverDelegation:
    def test_workers_flag_delegates_to_runtime(self, setup, serial_proofs):
        prover, _, tasks = setup
        batch = BatchProver(prover, workers=2)
        proofs, stats = batch.prove_all(tasks)
        assert batch.last_runtime_stats is not None
        assert batch.last_runtime_stats.workers == 2
        assert stats.proofs_generated == len(tasks)
        assert len(stats.per_proof_seconds) == len(tasks)
        assert [serialize_proof(p, F) for p in proofs] == [
            serialize_proof(p, F) for p in serial_proofs
        ]

    def test_per_call_workers_override(self, setup):
        prover, _, tasks = setup
        batch = BatchProver(prover)  # default serial
        _, _ = batch.prove_all(tasks[:2], workers=2)
        assert batch.last_runtime_stats is not None
