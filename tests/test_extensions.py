"""Tests for the extension glue: gkr_graph, SumPool2d circuits, fuzzing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import make_pcs, random_circuit, SnarkProver, SnarkVerifier, deserialize_proof, serialize_proof
from repro.errors import ProofError
from repro.field import DEFAULT_FIELD
from repro.gkr import matmul_circuit, random_layered_circuit
from repro.gpu import get_gpu, run_naive, run_pipelined
from repro.pipeline import gkr_graph
from repro.zkml import (
    Conv2d,
    Flatten,
    Linear,
    MlaasService,
    SequentialModel,
    Square,
    SumPool2d,
    circuitize,
    forward_exact,
    random_input,
)

F = DEFAULT_FIELD
GH200 = get_gpu("GH200")


class TestGkrGraph:
    def test_stage_structure(self):
        circuit = random_layered_circuit(F, depth=2, width=8, input_size=8, seed=1)
        graph = gkr_graph(circuit)
        names = [s.name for s in graph.stages]
        # Two phases per layer, each with a build stage.
        assert sum("build" in n for n in names) == 2 * circuit.depth
        assert any("L0/p1/round0" in n for n in names)

    def test_work_scales_with_circuit(self):
        small = gkr_graph(matmul_circuit(F, 2))
        large = gkr_graph(matmul_circuit(F, 4))
        work_small = sum(s.work_units for s in small.stages)
        work_large = sum(s.work_units for s in large.stages)
        assert work_large > 4 * work_small

    def test_pipelined_beats_naive_on_gkr(self):
        """The paper's scheduling discipline pays off for GKR proving too."""
        graph = gkr_graph(matmul_circuit(F, 16))
        pipe = run_pipelined(GH200, graph, 64, include_transfers=False)
        naive = run_naive(GH200, graph, 64, compute_penalty=1.3)
        assert (
            pipe.steady_throughput_per_second
            > naive.steady_throughput_per_second
        )

    def test_tail_merge_per_layer(self):
        circuit = matmul_circuit(F, 8)
        full = gkr_graph(circuit)
        capped = gkr_graph(circuit, max_stages_per_layer=3)
        assert len(capped.stages) < len(full.stages)
        assert sum(s.work_units for s in capped.stages) == sum(
            s.work_units for s in full.stages
        )


class TestSumPool:
    def test_forward_sums_windows(self):
        pool = SumPool2d()
        from repro.zkml import QuantizedTensor

        x = QuantizedTensor(np.arange(16).reshape(1, 4, 4))
        y = pool.forward(x)
        assert list(y.values.reshape(-1)) == [0 + 1 + 4 + 5, 2 + 3 + 6 + 7,
                                              8 + 9 + 12 + 13, 10 + 11 + 14 + 15]

    def test_zero_gates(self):
        assert SumPool2d().gate_count((4, 8, 8)) == 0

    def test_pooled_model_circuitizes(self):
        """A conv + square + sumpool + fc model proves end to end."""
        model = SequentialModel(
            [
                Conv2d(1, 2, 3, name="c1"),
                Square(name="s1"),
                SumPool2d(name="p1"),
                Flatten(),
                Linear(2 * 2 * 2, 3, name="fc"),
            ],
            input_shape=(1, 4, 4),
            name="pooled",
        )
        model.init_params(5)
        x = random_input(model.input_shape, seed=6, frac_bits=3)
        zk = circuitize(model, x, F)
        want = [int(v) for v in forward_exact(model, x).reshape(-1)]
        assert zk.outputs == want
        assert zk.compiled.r1cs.is_satisfied(zk.compiled.witness)

        service = MlaasService(model, num_col_checks=5)
        resp = service.prove_prediction(x)
        assert service.verify_prediction(x, resp)


class TestSerializationFuzz:
    @pytest.fixture(scope="class")
    def setting(self):
        cc = random_circuit(F, 24, seed=61)
        pcs = make_pcs(F, cc.r1cs, num_col_checks=4)
        prover = SnarkProver(cc.r1cs, pcs, public_indices=cc.public_indices)
        verifier = SnarkVerifier(cc.r1cs, pcs, public_indices=cc.public_indices)
        proof = prover.prove(cc.witness, cc.public_values)
        return cc, pcs, verifier, serialize_proof(proof, F)

    @given(data=st.binary(max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_random_blobs_never_crash(self, data):
        cc = random_circuit(F, 8, seed=62)
        pcs = make_pcs(F, cc.r1cs, num_col_checks=4)
        with pytest.raises(ProofError):
            deserialize_proof(data, F, pcs.params)

    @given(cut=st.integers(min_value=1, max_value=500))
    @settings(max_examples=20, deadline=None)
    def test_truncations_never_crash(self, setting, cut):
        cc, pcs, _, blob = setting
        truncated = blob[: max(0, len(blob) - cut)]
        with pytest.raises(ProofError):
            deserialize_proof(truncated, F, pcs.params)

    @given(pos=st.integers(min_value=8, max_value=400), delta=st.integers(1, 255))
    @settings(max_examples=30, deadline=None)
    def test_bitflips_parse_or_reject_but_never_verify(self, setting, pos, delta):
        cc, pcs, verifier, blob = setting
        mutated = bytearray(blob)
        pos = pos % len(mutated)
        if pos < 8:
            pos = 8  # keep header valid; header flips are covered above
        mutated[pos] = (mutated[pos] + delta) % 256
        if bytes(mutated) == blob:
            return
        try:
            proof = deserialize_proof(bytes(mutated), F, pcs.params)
        except ProofError:
            return
        assert not verifier.verify(proof, cc.public_values)
