"""GKR protocol tests: circuits, two-phase sum-check, end-to-end."""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CircuitError
from repro.field import DEFAULT_FIELD, PrimeField
from repro.field.primes import BN254_SCALAR
from repro.gkr import (
    ADD,
    Gate,
    GkrProver,
    GkrVerifier,
    LayeredCircuit,
    MUL,
    matmul_circuit,
    random_layered_circuit,
)

F = DEFAULT_FIELD


def tiny_circuit():
    """out0 = (a+b)*(c*d), out1 = a+b — a hand-checkable 2-layer circuit."""
    layer1 = [Gate(ADD, 0, 1), Gate(MUL, 2, 3)]  # s = a+b, t = c*d
    layer0 = [Gate(MUL, 0, 1), Gate(ADD, 0, 0)]  # s*t, s+s
    return LayeredCircuit(F, [layer0, layer1], input_size=4)


class TestLayeredCircuit:
    def test_tiny_evaluation(self):
        c = tiny_circuit()
        outs = c.outputs([2, 3, 4, 5])
        assert outs == [(2 + 3) * (4 * 5), (2 + 3) * 2]

    def test_padding_to_power_of_two(self):
        c = tiny_circuit()
        values = c.evaluate([1, 1, 1, 1])
        for i in range(c.depth + 1):
            assert len(values[i]) == 1 << c.layer_vars(i)

    def test_gate_validation(self):
        with pytest.raises(CircuitError):
            Gate("xor", 0, 1)
        with pytest.raises(CircuitError):
            Gate(ADD, -1, 0)

    def test_wiring_validation(self):
        with pytest.raises(CircuitError):
            LayeredCircuit(F, [[Gate(ADD, 0, 5)]], input_size=4)

    def test_empty_layer_rejected(self):
        with pytest.raises(CircuitError):
            LayeredCircuit(F, [[]], input_size=2)

    def test_input_count_enforced(self):
        c = tiny_circuit()
        with pytest.raises(CircuitError):
            c.evaluate([1, 2, 3])

    def test_gate_counters(self):
        c = tiny_circuit()
        assert c.total_gates() == 4
        assert c.mul_gates() == 2

    def test_digest_binds_structure(self):
        a = tiny_circuit()
        b = LayeredCircuit(
            F,
            [[Gate(MUL, 0, 1), Gate(ADD, 0, 0)], [Gate(MUL, 0, 1), Gate(MUL, 2, 3)]],
            input_size=4,
        )
        assert a.digest() != b.digest()
        assert a.digest() == tiny_circuit().digest()

    def test_random_circuit_deterministic(self):
        a = random_layered_circuit(F, seed=5)
        b = random_layered_circuit(F, seed=5)
        assert a.digest() == b.digest()


class TestMatmulCircuit:
    @pytest.mark.parametrize("n", [2, 4])
    def test_computes_matrix_product(self, n, rng):
        c = matmul_circuit(F, n)
        a = [[rng.randrange(100) for _ in range(n)] for _ in range(n)]
        b = [[rng.randrange(100) for _ in range(n)] for _ in range(n)]
        ins = [v for row in a for v in row] + [v for row in b for v in row]
        outs = c.outputs(ins)
        want = [
            sum(a[i][k] * b[k][j] for k in range(n)) % F.modulus
            for i in range(n)
            for j in range(n)
        ]
        assert outs == want

    def test_depth_is_logarithmic(self):
        assert matmul_circuit(F, 4).depth == 1 + 2  # products + log2(4) adds

    def test_requires_power_of_two(self):
        with pytest.raises(CircuitError):
            matmul_circuit(F, 3)


class TestGkrCompleteness:
    def test_tiny_circuit(self, rng):
        c = tiny_circuit()
        inputs = F.rand_vector(4, rng)
        proof = GkrProver(c).prove(inputs)
        assert GkrVerifier(c).verify(inputs, proof)

    @pytest.mark.parametrize("depth,width", [(1, 4), (3, 8), (5, 16), (2, 32)])
    def test_random_circuits(self, depth, width, rng):
        c = random_layered_circuit(F, depth=depth, width=width, input_size=8, seed=depth * 100 + width)
        inputs = F.rand_vector(8, rng)
        proof = GkrProver(c).prove(inputs)
        assert GkrVerifier(c).verify(inputs, proof)

    def test_matmul_proof(self, rng):
        c = matmul_circuit(F, 4)
        ins = F.rand_vector(32, rng)
        proof = GkrProver(c).prove(ins)
        assert GkrVerifier(c).verify(ins, proof)

    def test_other_field(self, rng):
        field = PrimeField(BN254_SCALAR, check=False)
        c = random_layered_circuit(field, depth=2, width=4, input_size=4, seed=9)
        inputs = field.rand_vector(4, rng)
        proof = GkrProver(c).prove(inputs)
        assert GkrVerifier(c).verify(inputs, proof)

    @given(seed=st.integers(0, 300))
    @settings(max_examples=10, deadline=None)
    def test_property_completeness(self, seed):
        import random as _random

        rng = _random.Random(seed)
        c = random_layered_circuit(F, depth=2, width=4, input_size=4, seed=seed)
        inputs = F.rand_vector(4, rng)
        proof = GkrProver(c).prove(inputs)
        assert GkrVerifier(c).verify(inputs, proof)


class TestGkrSoundness:
    @pytest.fixture(scope="class")
    def setting(self):
        import random as _random

        rng = _random.Random(7)
        c = random_layered_circuit(F, depth=3, width=8, input_size=8, seed=77)
        inputs = F.rand_vector(8, rng)
        proof = GkrProver(c).prove(inputs)
        return c, inputs, proof

    def test_tampered_output(self, setting):
        c, inputs, proof = setting
        bad = dataclasses.replace(
            proof, outputs=[(proof.outputs[0] + 1) % F.modulus] + proof.outputs[1:]
        )
        assert not GkrVerifier(c).verify(inputs, bad)

    def test_wrong_inputs(self, setting):
        c, inputs, proof = setting
        assert not GkrVerifier(c).verify(
            [(v + 1) % F.modulus for v in inputs], proof
        )

    def test_tampered_phase1_round(self, setting):
        c, inputs, proof = setting
        lp = proof.layer_proofs[0]
        rounds = [list(r) for r in lp.phase1_rounds]
        rounds[0][0] = (rounds[0][0] + 1) % F.modulus
        bad_lp = dataclasses.replace(lp, phase1_rounds=rounds)
        bad = dataclasses.replace(
            proof, layer_proofs=[bad_lp] + proof.layer_proofs[1:]
        )
        assert not GkrVerifier(c).verify(inputs, bad)

    def test_tampered_phase2_round(self, setting):
        c, inputs, proof = setting
        lp = proof.layer_proofs[-1]
        rounds = [list(r) for r in lp.phase2_rounds]
        rounds[-1][2] = (rounds[-1][2] + 1) % F.modulus
        bad_lp = dataclasses.replace(lp, phase2_rounds=rounds)
        bad = dataclasses.replace(
            proof, layer_proofs=proof.layer_proofs[:-1] + [bad_lp]
        )
        assert not GkrVerifier(c).verify(inputs, bad)

    def test_tampered_value_claims(self, setting):
        c, inputs, proof = setting
        for layer_idx in (0, len(proof.layer_proofs) - 1):
            lp = proof.layer_proofs[layer_idx]
            bad_lp = dataclasses.replace(lp, v_u=(lp.v_u + 1) % F.modulus)
            layers = list(proof.layer_proofs)
            layers[layer_idx] = bad_lp
            bad = dataclasses.replace(proof, layer_proofs=layers)
            assert not GkrVerifier(c).verify(inputs, bad)

    def test_truncated_proof(self, setting):
        c, inputs, proof = setting
        bad = dataclasses.replace(proof, layer_proofs=proof.layer_proofs[:-1])
        assert not GkrVerifier(c).verify(inputs, bad)

    def test_circuit_substitution(self, setting):
        """A proof for one circuit must not verify against another."""
        c, inputs, proof = setting
        other = random_layered_circuit(F, depth=3, width=8, input_size=8, seed=78)
        assert not GkrVerifier(other).verify(inputs, proof)


class TestGkrProperties:
    def test_proof_size_linear_in_depth(self):
        import random as _random

        rng = _random.Random(0)
        sizes = []
        for depth in (1, 2, 4):
            c = random_layered_circuit(F, depth=depth, width=8, input_size=8, seed=depth)
            proof = GkrProver(c).prove(F.rand_vector(8, rng))
            sizes.append(proof.size_field_elements())
        assert sizes[0] < sizes[1] < sizes[2]

    def test_deterministic_proofs(self, rng):
        c = random_layered_circuit(F, depth=2, width=4, input_size=4, seed=11)
        inputs = F.rand_vector(4, rng)
        p1 = GkrProver(c).prove(inputs)
        p2 = GkrProver(c).prove(inputs)
        assert p1 == p2
