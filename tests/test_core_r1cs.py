"""R1CS and circuit-builder tests."""

import pytest

from repro.core import CircuitBuilder, R1CS, compile_builder, next_power_of_two, random_circuit
from repro.errors import CircuitError
from repro.field import DEFAULT_FIELD, eq_table

F = DEFAULT_FIELD


def simple_r1cs():
    """x * y = z with witness [1, x, y, z]."""
    return R1CS(
        F,
        num_vars=4,
        a_rows=[[(1, 1)]],
        b_rows=[[(2, 1)]],
        c_rows=[[(3, 1)]],
    )


class TestR1CSBasics:
    def test_satisfied(self):
        r = simple_r1cs()
        assert r.is_satisfied([1, 3, 4, 12])
        assert not r.is_satisfied([1, 3, 4, 13])

    def test_violations(self):
        r = simple_r1cs()
        assert r.violations([1, 3, 4, 13]) == [0]

    def test_witness_leading_one_enforced(self):
        r = simple_r1cs()
        with pytest.raises(CircuitError):
            r.pad_witness([2, 3, 4, 12])

    def test_witness_length_enforced(self):
        r = simple_r1cs()
        with pytest.raises(CircuitError):
            r.pad_witness([1, 3, 4])

    def test_padded_shapes(self):
        r = simple_r1cs()
        assert r.padded_constraints == 2
        assert r.padded_vars == 4
        assert r.constraint_vars == 1
        assert r.witness_vars == 2

    def test_row_count_mismatch(self):
        with pytest.raises(CircuitError):
            R1CS(F, 4, [[(0, 1)]], [], [])

    def test_column_out_of_range(self):
        with pytest.raises(CircuitError):
            R1CS(F, 2, [[(5, 1)]], [[(0, 1)]], [[(0, 1)]])

    def test_zero_coefficient_rejected(self):
        with pytest.raises(CircuitError):
            R1CS(F, 2, [[(0, F.modulus)]], [[(0, 1)]], [[(0, 1)]])

    def test_digest_binds_structure(self):
        a = simple_r1cs()
        b = R1CS(F, 4, [[(1, 2)]], [[(2, 1)]], [[(3, 1)]])
        assert a.digest() != b.digest()
        assert a.digest() == simple_r1cs().digest()

    def test_nnz(self):
        assert simple_r1cs().nnz() == 3

    def test_next_power_of_two(self):
        assert [next_power_of_two(n) for n in (1, 2, 3, 4, 5, 1023)] == [
            1, 2, 4, 4, 8, 1024,
        ]


class TestMleQueries:
    def test_matvec_tables(self):
        r = simple_r1cs()
        az, bz, cz = r.matvec_tables([1, 3, 4, 12])
        assert az[0] == 3 and bz[0] == 4 and cz[0] == 12
        assert az[1] == bz[1] == cz[1] == 0  # padding rows

    def test_combined_row_table(self, rng):
        r = simple_r1cs()
        point = F.rand_vector(r.constraint_vars, rng)
        eq_x = eq_table(F, point)
        table = r.combined_row_table(eq_x, 1, 0, 0)
        # Only A contributes: T[1] = eq_x[0] * 1.
        assert table[1] == eq_x[0]
        assert table[0] == 0

    def test_combined_row_length_check(self):
        r = simple_r1cs()
        with pytest.raises(CircuitError):
            r.combined_row_table([1], 1, 1, 1)

    def test_mle_eval_consistency(self, rng):
        """M̃ at boolean points equals the matrix entries."""
        r = simple_r1cs()
        eq_x = eq_table(F, [0])  # row 0
        eq_y = eq_table(F, [1, 0])  # column 1
        assert r.mle_eval(r.a_rows, eq_x, eq_y) == 1
        eq_y0 = eq_table(F, [0, 0])
        assert r.mle_eval(r.a_rows, eq_x, eq_y0) == 0

    def test_mle_evals_abc(self, rng):
        r = simple_r1cs()
        px = F.rand_vector(r.constraint_vars, rng)
        py = F.rand_vector(r.witness_vars, rng)
        ma, mb, mc = r.mle_evals_abc(px, py)
        eq_x = eq_table(F, px)
        eq_y = eq_table(F, py)
        assert ma == F.mul(eq_x[0], eq_y[1])
        assert mb == F.mul(eq_x[0], eq_y[2])
        assert mc == F.mul(eq_x[0], eq_y[3])


class TestCircuitBuilder:
    def test_mul_chain(self):
        cb = CircuitBuilder(F)
        x = cb.private_input(2)
        acc = x
        for _ in range(5):
            acc = cb.mul(acc, x)
        cb.expose_public(acc)
        r1cs, witness, publics = cb.finalize()
        assert publics == [64]  # 2^6
        assert r1cs.is_satisfied(witness)

    def test_linear_ops_are_free(self):
        cb = CircuitBuilder(F)
        a = cb.private_input(3)
        b = cb.private_input(4)
        s = cb.add(a, b)
        d = cb.sub(a, b)
        sc = cb.scale(s, 10)
        _ = cb.add_constant(d, 100)
        assert cb.num_multiplications == 0
        assert cb.wire_value(sc) == 70

    def test_linear_combination(self):
        cb = CircuitBuilder(F)
        a = cb.private_input(2)
        b = cb.private_input(3)
        lc = cb.linear_combination([(a, 5), (b, 7)])
        assert cb.wire_value(lc) == 31

    def test_assert_equal_ok_and_bad(self):
        cb = CircuitBuilder(F)
        a = cb.private_input(5)
        b = cb.scale(cb.private_input(1), 5)
        cb.assert_equal(a, b)
        r1cs, witness, _ = cb.finalize()
        assert r1cs.is_satisfied(witness)

        cb2 = CircuitBuilder(F)
        with pytest.raises(CircuitError):
            cb2.assert_equal(cb2.private_input(1), cb2.private_input(2))

    def test_assert_boolean(self):
        cb = CircuitBuilder(F)
        cb.assert_boolean(cb.private_input(1))
        cb.assert_boolean(cb.private_input(0))
        r1cs, witness, _ = cb.finalize()
        assert r1cs.is_satisfied(witness)
        cb2 = CircuitBuilder(F)
        with pytest.raises(CircuitError):
            cb2.assert_boolean(cb2.private_input(2))

    def test_square(self):
        cb = CircuitBuilder(F)
        x = cb.private_input(9)
        cb.expose_public(cb.square(x))
        _, _, publics = cb.finalize()
        assert publics == [81]

    def test_constant_wire(self):
        cb = CircuitBuilder(F)
        c = cb.constant(7)
        x = cb.private_input(6)
        cb.expose_public(cb.mul(c, x))
        _, _, publics = cb.finalize()
        assert publics == [42]

    def test_double_finalize_raises(self):
        cb = CircuitBuilder(F)
        cb.mul(cb.private_input(1), cb.private_input(1))
        cb.finalize()
        with pytest.raises(CircuitError):
            cb.finalize()

    def test_mul_after_finalize_raises(self):
        cb = CircuitBuilder(F)
        x = cb.private_input(1)
        cb.mul(x, x)
        cb.finalize()
        with pytest.raises(CircuitError):
            cb.mul(x, x)

    def test_public_indices_bound_in_witness(self):
        cb = CircuitBuilder(F)
        x = cb.private_input(3)
        cb.expose_public(cb.mul(x, x))
        r1cs, witness, publics = cb.finalize()
        assert [witness[i] for i in cb.public_indices] == publics

    def test_sum_wires(self):
        cb = CircuitBuilder(F)
        ws = cb.private_inputs([1, 2, 3, 4])
        assert cb.wire_value(cb.sum_wires(ws)) == 10


class TestRandomCircuit:
    def test_gate_count_exact(self):
        cc = random_circuit(F, 100, seed=1)
        # 100 gates + 1 public-binding constraint row.
        assert cc.r1cs.num_constraints == 101

    def test_satisfiable(self):
        cc = random_circuit(F, 64, seed=2)
        assert cc.r1cs.is_satisfied(cc.witness)

    def test_deterministic(self):
        a = random_circuit(F, 32, seed=3)
        b = random_circuit(F, 32, seed=3)
        assert a.r1cs.digest() == b.r1cs.digest()
        assert a.witness == b.witness

    def test_seed_changes_circuit(self):
        a = random_circuit(F, 32, seed=3)
        b = random_circuit(F, 32, seed=4)
        assert a.r1cs.digest() != b.r1cs.digest()

    def test_too_small_raises(self):
        with pytest.raises(CircuitError):
            random_circuit(F, 1)
