"""Proof serialization: roundtrips, tamper and truncation handling."""

import pytest

from repro.core import (
    SnarkProver,
    SnarkVerifier,
    deserialize_proof,
    make_pcs,
    random_circuit,
    serialize_proof,
)
from repro.core.serialize import ByteReader, ByteWriter, MAGIC
from repro.errors import ProofError
from repro.field import DEFAULT_FIELD

F = DEFAULT_FIELD


@pytest.fixture(scope="module")
def setting():
    cc = random_circuit(F, 48, seed=51)
    pcs = make_pcs(F, cc.r1cs, num_col_checks=6)
    prover = SnarkProver(cc.r1cs, pcs, public_indices=cc.public_indices)
    verifier = SnarkVerifier(cc.r1cs, pcs, public_indices=cc.public_indices)
    proof = prover.prove(cc.witness, cc.public_values)
    return cc, pcs, verifier, proof


class TestByteCodec:
    def test_u32_u64_roundtrip(self):
        w = ByteWriter()
        w.u32(123)
        w.u64(1 << 50)
        r = ByteReader(w.getvalue())
        assert r.u32() == 123
        assert r.u64() == 1 << 50
        r.expect_end()

    def test_blob_roundtrip(self):
        w = ByteWriter()
        w.blob(b"hello")
        r = ByteReader(w.getvalue())
        assert r.blob() == b"hello"

    def test_field_vector_roundtrip(self, rng):
        vec = F.rand_vector(17, rng)
        w = ByteWriter()
        w.field_vector(F, vec)
        r = ByteReader(w.getvalue())
        assert r.field_vector(F) == vec

    def test_truncation_detected(self):
        w = ByteWriter()
        w.u64(5)
        r = ByteReader(w.getvalue()[:4])
        with pytest.raises(ProofError):
            r.u64()

    def test_trailing_bytes_detected(self):
        r = ByteReader(b"\x00" * 8)
        r.u32()
        with pytest.raises(ProofError):
            r.expect_end()


class TestProofRoundtrip:
    def test_roundtrip_verifies(self, setting):
        cc, pcs, verifier, proof = setting
        blob = serialize_proof(proof, F)
        again = deserialize_proof(blob, F, pcs.params)
        assert verifier.verify(again, cc.public_values)

    def test_roundtrip_is_exact(self, setting):
        cc, pcs, _, proof = setting
        blob = serialize_proof(proof, F)
        again = deserialize_proof(blob, F, pcs.params)
        assert again.commitment.root == proof.commitment.root
        assert again.constraint_sumcheck == proof.constraint_sumcheck
        assert again.witness_sumcheck == proof.witness_sumcheck
        assert (again.va, again.vb, again.vc, again.vz) == (
            proof.va, proof.vb, proof.vc, proof.vz,
        )
        assert again.witness_opening == proof.witness_opening
        assert again.public_bindings == proof.public_bindings

    def test_blob_size_matches_accounting(self, setting):
        """Serialized size is within overhead of the size estimate."""
        _, _, _, proof = setting
        blob = serialize_proof(proof, F)
        estimate = proof.size_bytes(F)
        assert estimate * 0.8 < len(blob) < estimate * 1.3

    def test_deterministic_encoding(self, setting):
        _, _, _, proof = setting
        assert serialize_proof(proof, F) == serialize_proof(proof, F)


class TestMalformedBlobs:
    def test_bad_magic(self, setting):
        _, pcs, _, proof = setting
        blob = b"XXXX" + serialize_proof(proof, F)[4:]
        with pytest.raises(ProofError):
            deserialize_proof(blob, F, pcs.params)

    def test_bad_version(self, setting):
        _, pcs, _, proof = setting
        blob = bytearray(serialize_proof(proof, F))
        blob[4] = 99
        with pytest.raises(ProofError):
            deserialize_proof(bytes(blob), F, pcs.params)

    def test_truncated_blob(self, setting):
        _, pcs, _, proof = setting
        blob = serialize_proof(proof, F)
        with pytest.raises(ProofError):
            deserialize_proof(blob[: len(blob) // 2], F, pcs.params)

    def test_trailing_garbage(self, setting):
        _, pcs, _, proof = setting
        blob = serialize_proof(proof, F) + b"\x00"
        with pytest.raises(ProofError):
            deserialize_proof(blob, F, pcs.params)

    def test_bitflip_fails_verification(self, setting):
        """Any single corrupted field element must break verification
        (the blob may still parse — soundness rejects it)."""
        cc, pcs, verifier, proof = setting
        blob = bytearray(serialize_proof(proof, F))
        # Flip a byte inside the constraint sum-check region.
        blob[50] ^= 0xFF
        try:
            mangled = deserialize_proof(bytes(blob), F, pcs.params)
        except ProofError:
            return  # parse-time rejection is also fine
        assert not verifier.verify(mangled, cc.public_values)

    def test_empty_blob(self, setting):
        _, pcs, _, _ = setting
        with pytest.raises(ProofError):
            deserialize_proof(b"", F, pcs.params)

    def test_magic_constant(self):
        assert MAGIC == b"RPZK"
