"""Latency-throughput frontier tests (the paper's future-work direction)."""

import pytest

from repro.errors import PipelineError
from repro.gpu import get_gpu, run_pipelined
from repro.pipeline import (
    FrontierPoint,
    fuse_stages,
    latency_throughput_frontier,
    merkle_graph,
    run_hybrid,
    sumcheck_graph,
)

GH200 = get_gpu("GH200")


class TestFusion:
    def test_conserves_work_and_bytes(self):
        graph = merkle_graph(1 << 14)
        for depth in (1, 2, 5, 10):
            fused = fuse_stages(graph, depth)
            assert fused.total_work_cycles() == pytest.approx(
                graph.total_work_cycles()
            )
            assert fused.total_bytes_in() == graph.total_bytes_in()
            assert fused.total_bytes_out() == graph.total_bytes_out()
            assert fused.peak_memory_bytes() == graph.peak_memory_bytes()

    def test_stage_counts(self):
        graph = merkle_graph(1 << 14)  # 15 layers
        assert len(fuse_stages(graph, 1).stages) == 1
        assert len(fuse_stages(graph, 4).stages) == 4
        assert len(fuse_stages(graph, 100).stages) == len(graph.stages)

    def test_invalid_depth(self):
        with pytest.raises(PipelineError):
            fuse_stages(merkle_graph(16), 0)

    def test_groups_are_balanced(self):
        graph = sumcheck_graph(16)
        fused = fuse_stages(graph, 4)
        cycles = [s.total_cycles for s in fused.stages]
        # No group more than ~2x the mean (greedy prefix partitioning).
        mean = sum(cycles) / len(cycles)
        assert max(cycles) < 2.5 * mean


class TestFrontier:
    @pytest.fixture(scope="class")
    def points(self):
        return latency_throughput_frontier(GH200, merkle_graph(1 << 18))

    def test_latency_falls_with_fusion(self, points):
        depths = [p.super_stages for p in points]
        latencies = [p.latency_seconds for p in points]
        assert depths == sorted(depths, reverse=True)
        assert latencies == sorted(latencies, reverse=True)

    def test_throughput_roughly_preserved_until_fully_fused(self, points):
        """The future-work headline: fusing to ~4 super-stages cuts
        latency several-fold at a small throughput cost."""
        split = points[0]
        mid = next(p for p in points if p.super_stages == 4)
        assert mid.latency_seconds < split.latency_seconds / 2.5
        assert (
            mid.throughput_per_second > 0.65 * split.throughput_per_second
        )

    def test_fully_fused_is_kernel_per_task_like(self, points):
        fused = points[-1]
        assert fused.super_stages == 1
        # Depth-1 pipeline: latency equals the beat.
        assert fused.latency_seconds == pytest.approx(
            1.0 / fused.throughput_per_second, rel=1e-6
        )


class TestHybrid:
    def test_express_lane_has_lower_latency(self):
        graph = merkle_graph(1 << 18)
        hybrid = run_hybrid(GH200, graph, express_fraction=0.25)
        assert hybrid.express_latency_seconds < hybrid.bulk_latency_seconds

    def test_express_costs_throughput(self):
        graph = merkle_graph(1 << 18)
        full = run_pipelined(GH200, graph, 64, include_transfers=False)
        hybrid = run_hybrid(GH200, graph, express_fraction=0.25)
        assert (
            hybrid.bulk_throughput_per_second
            < full.steady_throughput_per_second
        )
        # But the combined rate is still within ~65% of dedicating
        # everything to the pipeline.
        assert (
            hybrid.total_throughput_per_second
            > 0.6 * full.steady_throughput_per_second
        )

    def test_bigger_express_slice_lower_express_latency(self):
        graph = merkle_graph(1 << 18)
        small = run_hybrid(GH200, graph, express_fraction=0.1)
        large = run_hybrid(GH200, graph, express_fraction=0.5)
        assert large.express_latency_seconds <= small.express_latency_seconds

    def test_invalid_fraction(self):
        with pytest.raises(PipelineError):
            run_hybrid(GH200, merkle_graph(1 << 14), express_fraction=1.5)
