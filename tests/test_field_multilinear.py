"""Tests for multilinear polynomials, eq tables and tensor points."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FieldError
from repro.field import (
    DEFAULT_FIELD,
    MultilinearPolynomial,
    eq_eval,
    eq_table,
    tensor_point,
)

F = DEFAULT_FIELD


def bits_of(b, n):
    return [(b >> i) & 1 for i in range(n)]


class TestConstruction:
    def test_rejects_non_power_of_two(self):
        with pytest.raises(FieldError):
            MultilinearPolynomial(F, [1, 2, 3])

    def test_num_vars(self):
        assert MultilinearPolynomial(F, [0] * 16).num_vars == 4

    def test_from_function(self):
        ml = MultilinearPolynomial.from_function(F, 3, lambda a, b, c: a + 2 * b + 4 * c)
        assert ml.evals == list(range(8))

    def test_zero(self):
        assert MultilinearPolynomial.zero(F, 3).hypercube_sum() == 0


class TestEvaluation:
    def test_boolean_points_are_table_lookups(self, rng):
        ml = MultilinearPolynomial.random(F, 5, rng)
        for b in (0, 7, 21, 31):
            assert ml.evaluate(bits_of(b, 5)) == ml.evals[b]

    def test_evaluate_matches_eq_inner_product(self, rng):
        ml = MultilinearPolynomial.random(F, 6, rng)
        pt = F.rand_vector(6, rng)
        eq = eq_table(F, pt)
        want = sum(e * v for e, v in zip(eq, ml.evals)) % F.modulus
        assert ml.evaluate(pt) == want

    def test_wrong_dimension_raises(self, rng):
        ml = MultilinearPolynomial.random(F, 4, rng)
        with pytest.raises(FieldError):
            ml.evaluate([1, 2, 3])

    def test_multilinearity_in_each_variable(self, rng):
        """p is degree <= 1 in every variable: p(..t..) is affine in t."""
        ml = MultilinearPolynomial.random(F, 4, rng)
        base = F.rand_vector(4, rng)
        for var in range(4):
            def at(t):
                pt = list(base)
                pt[var] = t
                return ml.evaluate(pt)
            # affine check: f(2) - 2f(1) + f(0) == 0
            assert (at(2) - 2 * at(1) + at(0)) % F.modulus == 0


class TestFixVariables:
    def test_fix_last_consistent_with_evaluate(self, rng):
        ml = MultilinearPolynomial.random(F, 5, rng)
        pt = F.rand_vector(5, rng)
        assert ml.fix_last_variable(pt[-1]).evaluate(pt[:-1]) == ml.evaluate(pt)

    def test_fix_first_consistent_with_evaluate(self, rng):
        ml = MultilinearPolynomial.random(F, 5, rng)
        pt = F.rand_vector(5, rng)
        assert ml.fix_first_variable(pt[0]).evaluate(pt[1:]) == ml.evaluate(pt)

    def test_fix_all_variables_sequentially(self, rng):
        ml = MultilinearPolynomial.random(F, 4, rng)
        pt = F.rand_vector(4, rng)
        g = ml
        for r in reversed(pt):
            g = g.fix_last_variable(r)
        assert g.evals[0] == ml.evaluate(pt)

    def test_fix_on_constant_raises(self):
        const = MultilinearPolynomial(F, [3, 3]).fix_last_variable(1)
        with pytest.raises(FieldError):
            const.fix_last_variable(0)


class TestAlgebra:
    def test_add_sub_scale(self, rng):
        a = MultilinearPolynomial.random(F, 4, rng)
        b = MultilinearPolynomial.random(F, 4, rng)
        pt = F.rand_vector(4, rng)
        assert (a + b).evaluate(pt) == F.add(a.evaluate(pt), b.evaluate(pt))
        assert (a - b).evaluate(pt) == F.sub(a.evaluate(pt), b.evaluate(pt))
        assert a.scale(7).evaluate(pt) == F.mul(7, a.evaluate(pt))

    def test_dimension_mismatch(self, rng):
        a = MultilinearPolynomial.random(F, 3, rng)
        b = MultilinearPolynomial.random(F, 4, rng)
        with pytest.raises(FieldError):
            _ = a + b

    def test_pointwise_mul_table(self, rng):
        a = MultilinearPolynomial.random(F, 3, rng)
        b = MultilinearPolynomial.random(F, 3, rng)
        table = a.pointwise_mul(b)
        assert table == [(x * y) % F.modulus for x, y in zip(a.evals, b.evals)]

    def test_hypercube_sum(self):
        ml = MultilinearPolynomial(F, [1, 2, 3, 4])
        assert ml.hypercube_sum() == 10


class TestEqPolynomial:
    def test_eq_table_is_indicator_on_booleans(self):
        pt = [1, 0, 1]
        table = eq_table(F, pt)
        idx = 0b101
        assert table[idx] == 1
        assert sum(table) % F.modulus == 1

    def test_eq_table_sums_to_one(self, rng):
        """Σ_b eq(r, b) = 1 for any r (partition of unity)."""
        pt = F.rand_vector(5, rng)
        assert sum(eq_table(F, pt)) % F.modulus == 1

    def test_eq_eval_matches_table(self, rng):
        pt = F.rand_vector(4, rng)
        table = eq_table(F, pt)
        for b in range(16):
            assert eq_eval(F, pt, bits_of(b, 4)) == table[b]

    def test_eq_eval_symmetry(self, rng):
        x = F.rand_vector(3, rng)
        y = F.rand_vector(3, rng)
        assert eq_eval(F, x, y) == eq_eval(F, y, x)

    def test_eq_eval_dimension_mismatch(self):
        with pytest.raises(FieldError):
            eq_eval(F, [1], [1, 2])

    def test_tensor_point_alias(self, rng):
        pt = F.rand_vector(4, rng)
        assert tensor_point(F, pt) == eq_table(F, pt)

    @given(n=st.integers(min_value=1, max_value=6))
    @settings(max_examples=10)
    def test_eq_table_length(self, n):
        assert len(eq_table(F, [1] * n)) == 1 << n
