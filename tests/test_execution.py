"""Execution-layer tests (S24): backend parity, registry, sharding,
entry-point routing, and correlated trace replay."""

import io
import json

import pytest

from repro.core import (
    BatchProver,
    ProofTask,
    SnarkProver,
    make_pcs,
    random_circuit,
    verify_all,
)
from repro.core.serialize import serialize_proof
from repro.errors import ExecutionError
from repro.execution import (
    PoolBackend,
    ProvingBackend,
    SerialBackend,
    ShardedBackend,
    available_backends,
    format_lineage,
    largest_remainder_shares,
    lineage_of,
    load_trace,
    request_lineage,
    resolve_backend,
    span_index,
)
from repro.field import DEFAULT_FIELD
from repro.runtime import JsonlTraceSink, ProverSpec

F = DEFAULT_FIELD


@pytest.fixture(scope="module")
def setup():
    cc = random_circuit(F, 48, seed=3)
    pcs = make_pcs(F, cc.r1cs, num_col_checks=4)
    prover = SnarkProver(cc.r1cs, pcs, public_indices=cc.public_indices)
    spec = ProverSpec.from_prover(prover)
    tasks = [ProofTask(i, cc.witness, cc.public_values) for i in range(6)]
    return prover, spec, tasks


@pytest.fixture(scope="module")
def serial_run(setup):
    _, spec, tasks = setup
    return SerialBackend().prove_tasks(spec, tasks)


def _wire(proofs):
    return [serialize_proof(p, F) for p in proofs]


# -- sharding arithmetic -------------------------------------------------------

class TestLargestRemainderShares:
    def test_shares_sum_to_total(self):
        for total in (1, 7, 64, 1000):
            shares = largest_remainder_shares(total, [3.0, 1.0, 2.0])
            assert sum(shares) == total

    def test_proportionality_bound(self):
        """No share is more than one above its exact proportion."""
        weights = [5.0, 2.0, 3.0]
        total = 97
        shares = largest_remainder_shares(total, weights)
        wsum = sum(weights)
        for share, w in zip(shares, weights):
            assert share <= total * w / wsum + 1

    def test_zero_weights_fall_back_to_even_split(self):
        assert largest_remainder_shares(10, [0.0, 0.0, 0.0]) == [4, 3, 3]

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ExecutionError):
            largest_remainder_shares(-1, [1.0])
        with pytest.raises(ExecutionError):
            largest_remainder_shares(5, [])
        with pytest.raises(ExecutionError):
            largest_remainder_shares(5, [1.0, -2.0])

    def test_matches_multigpu_shard(self):
        """The farm simulator and the functional backend place identically."""
        from repro.pipeline.multigpu import MultiGpuBatchSystem

        farm = MultiGpuBatchSystem(["V100", "A100"], scale=1 << 12)
        shares = farm.shard(33)
        assert shares == largest_remainder_shares(33, farm.device_rates())


# -- registry ------------------------------------------------------------------

class TestRegistry:
    def test_stock_heads_registered(self):
        assert {"serial", "pool", "sharded"} <= set(available_backends())

    def test_selector_parsing(self):
        assert resolve_backend("serial").name == "serial"
        assert resolve_backend("pool:3").parallelism == 3
        sharded = resolve_backend("sharded:pool:2,serial")
        assert sharded.name == "sharded:pool:2,serial"
        assert sharded.parallelism == 3
        assert [type(c) for c in sharded.children] == [
            PoolBackend, SerialBackend,
        ]

    def test_instances_pass_through(self):
        backend = SerialBackend()
        assert resolve_backend(backend) is backend

    def test_backends_satisfy_protocol(self):
        for selector in ("serial", "pool:2", "sharded:serial,serial"):
            assert isinstance(resolve_backend(selector), ProvingBackend)

    def test_unknown_selector_lists_names_and_suggests(self):
        """Regression: the unknown-selector error must enumerate every
        registered head and offer a did-you-mean for a near miss."""
        with pytest.raises(ExecutionError) as excinfo:
            resolve_backend("warp:4")
        message = str(excinfo.value)
        for head in available_backends():
            assert head in message
        with pytest.raises(ExecutionError, match="did you mean 'serial'"):
            resolve_backend("serail")
        with pytest.raises(ExecutionError, match="did you mean 'cluster'"):
            resolve_backend("clustre:remote:h:1")

    def test_bad_selectors_raise_typed_errors(self):
        for bad in (
            "", "warp", "serial:3", "pool:many", "sharded:",
            "sharded:pool:2,,serial", "sharded:sharded:serial",
        ):
            with pytest.raises(ExecutionError):
                resolve_backend(bad)
        with pytest.raises(ExecutionError):
            resolve_backend(42)


# -- parity (the satellite acceptance property) --------------------------------

class TestBackendParity:
    def test_pool_proofs_byte_identical_to_serial(self, setup, serial_run):
        _, spec, tasks = setup
        serial_proofs, _ = serial_run
        pool_proofs, stats = PoolBackend(2).prove_tasks(spec, tasks)
        assert _wire(pool_proofs) == _wire(serial_proofs)
        assert stats.workers == 2

    def test_sharded_proofs_byte_identical_to_serial(self, setup, serial_run):
        _, spec, tasks = setup
        serial_proofs, _ = serial_run
        sharded = resolve_backend("sharded:pool:2,serial")
        sharded_proofs, stats = sharded.prove_tasks(spec, tasks)
        assert _wire(sharded_proofs) == _wire(serial_proofs)
        # Merged report covers every task and both children's workers.
        assert len(stats.records) == len(tasks)
        assert stats.workers == 3

    def test_all_backends_verify(self, setup):
        _, spec, tasks = setup
        verifier = spec.build_verifier()
        for selector in ("serial", "pool:2", "sharded:serial,serial"):
            proofs, _ = resolve_backend(selector).prove_tasks(spec, tasks)
            assert verify_all(verifier, proofs, tasks)

    def test_sharded_preserves_task_order(self, setup):
        _, spec, tasks = setup
        sharded = ShardedBackend([SerialBackend(), SerialBackend()])
        _, stats = sharded.prove_tasks(spec, tasks)
        assert sorted(r.task_id for r in stats.records) == [
            t.task_id for t in tasks
        ]

    def test_empty_batch(self, setup):
        _, spec, _ = setup
        for selector in ("serial", "sharded:serial,serial"):
            proofs, stats = resolve_backend(selector).prove_tasks(spec, [])
            assert proofs == []
            assert stats.records == []


# -- entry-point routing -------------------------------------------------------

class TestEntryPoints:
    def test_batch_prover_accepts_backend_selector(self, setup, serial_run):
        prover, _, tasks = setup
        serial_proofs, _ = serial_run
        batch = BatchProver(prover, backend="sharded:serial,serial")
        proofs, stats = batch.prove_all(tasks)
        assert _wire(proofs) == _wire(serial_proofs)
        assert stats.proofs_generated == len(tasks)
        assert batch.last_runtime_stats is not None
        assert batch.last_runtime_stats.workers == 2

    def test_batch_prover_per_call_backend_override(self, setup, serial_run):
        prover, _, tasks = setup
        serial_proofs, _ = serial_run
        batch = BatchProver(prover)
        proofs, _ = batch.prove_all(tasks, backend="serial")
        assert _wire(proofs) == _wire(serial_proofs)

    def test_runtime_proof_backend_accepts_selector(self, setup):
        from repro.service import RuntimeProofBackend, spec_key
        from repro.service.request import Priority, ProofRequest

        _, spec, tasks = setup
        backend = RuntimeProofBackend.from_specs(
            [spec], backend="sharded:serial,serial"
        )
        key = spec_key(spec)
        requests = [
            ProofRequest(
                request_id=100 + i, payload=task, circuit_key=key,
                witness_key=None, priority=Priority.BULK,
                submitted_at=0.0, deadline=None,
            )
            for i, task in enumerate(tasks[:3])
        ]
        proofs = backend.prove_batch(key, requests)
        verifier = backend.verifier_for(key)
        assert all(
            verifier.verify(p, t.public_values)
            for p, t in zip(proofs, tasks)
        )
        # Tasks were renumbered to request ids for trace correlation.
        assert sorted(
            r.task_id for r in backend.last_runtime_stats.records
        ) == [100, 101, 102]


# -- correlated trace replay ---------------------------------------------------

class TestTraceReplay:
    @pytest.fixture(scope="class")
    def trace_events(self, setup):
        """One service run, one shared JSONL sink, serial proving."""
        from repro.service import (
            BatchPolicy,
            ProofService,
            RuntimeProofBackend,
            spec_key,
            task_witness_key,
        )

        _, spec, tasks = setup
        buffer = io.StringIO()
        sink = JsonlTraceSink(buffer)
        backend = RuntimeProofBackend.from_specs([spec], backend="serial")
        key = spec_key(spec)
        policy = BatchPolicy(max_batch_size=4, max_wait_seconds=0.005)
        with ProofService(backend, policy=policy, trace=sink) as svc:
            tickets = [
                svc.submit(
                    task,
                    circuit_key=key,
                    witness_key=task_witness_key(task)
                    + task.task_id.to_bytes(4, "little"),
                )
                for task in tasks
            ]
            # A duplicate of the first task: cache hit or coalesce.
            dup = svc.submit(
                tasks[0],
                circuit_key=key,
                witness_key=task_witness_key(tasks[0])
                + tasks[0].task_id.to_bytes(4, "little"),
            )
            svc.drain(timeout=60)
            for ticket in tickets:
                ticket.result(timeout=60)
            dup.result(timeout=60)
        return load_trace(buffer.getvalue().splitlines()), tickets, dup

    def test_every_event_is_span_stamped(self, trace_events):
        events, _, _ = trace_events
        assert events
        for event in events:
            assert {"span", "parent", "kind", "event", "t"} <= set(event)
            assert event["kind"] in (
                "service", "request", "batch", "backend", "task",
            )

    def test_lineage_reconstructs_full_span_tree(self, trace_events):
        """The tentpole acceptance: service → batch → backend → task from
        one JSONL file."""
        events, tickets, _ = trace_events
        rid = tickets[0].request_id
        lineage = request_lineage(events, rid)
        assert lineage.resolution == "proved"
        nodes = span_index(events)
        # The chain is connected: request under service, batch under
        # service, backend under batch, task under backend.
        assert nodes[lineage.request].parent == lineage.service
        assert nodes[lineage.service].kind == "service"
        assert lineage.batch is not None
        assert nodes[lineage.batch].parent == lineage.service
        assert lineage.backends, "no backend span under the batch"
        for backend_span in lineage.backends:
            assert nodes[backend_span].parent == lineage.batch
        assert lineage.tasks, "no task span for the request"
        for task_span in lineage.tasks:
            assert nodes[task_span].parent in lineage.backends
            assert any(
                e.get("task_id") == rid for e in nodes[task_span].events
            )

    def test_every_proved_request_has_a_task_span(self, trace_events):
        events, tickets, _ = trace_events
        for ticket in tickets:
            lineage = request_lineage(events, ticket.request_id)
            assert lineage.resolution == "proved"
            assert lineage.tasks

    def test_duplicate_resolves_without_backend_spans(self, trace_events):
        events, _, dup = trace_events
        lineage = request_lineage(events, dup.request_id)
        assert lineage.resolution in ("cache", "coalesced")
        assert lineage.tasks == []

    def test_format_lineage_renders_chain(self, trace_events):
        events, tickets, _ = trace_events
        text = format_lineage(request_lineage(events, tickets[0].request_id))
        assert "[proved]" in text
        assert "→" in text

    def test_unknown_request_raises(self, trace_events):
        events, _, _ = trace_events
        with pytest.raises(ExecutionError):
            request_lineage(events, 999_999)

    def test_lineage_of_reads_files(self, trace_events, tmp_path):
        events, tickets, _ = trace_events
        path = tmp_path / "trace.jsonl"
        path.write_text(
            "".join(json.dumps(e) + "\n" for e in events)
        )
        lineage = lineage_of(str(path), tickets[0].request_id)
        assert lineage.resolution == "proved"


# -- shared percentile ---------------------------------------------------------

class TestSharedPercentile:
    def test_single_source_of_truth(self):
        from repro import stats as shared
        from repro.runtime import stats as runtime_stats
        from repro.service import stats as service_stats

        assert runtime_stats.percentile is shared.percentile
        assert service_stats.percentile is shared.percentile

    def test_reexport_from_runtime_package(self):
        from repro.runtime import percentile as reexported
        from repro.stats import percentile as shared

        assert reexported is shared


# -- stage-pipelined backend (S27) ---------------------------------------------

class TestPipelinedPlanner:
    def test_registry_parsing(self):
        assert "pipelined" in available_backends()
        backend = resolve_backend("pipelined:3")
        assert backend.name == "pipelined:3" and backend.parallelism == 3
        assert resolve_backend("pipelined:auto").name == "pipelined:auto"
        assert resolve_backend("pipelined").parallelism >= 2
        assert isinstance(resolve_backend("pipelined:2"), ProvingBackend)
        for bad in ("pipelined:zero", "pipelined:0", "pipelined:-1"):
            with pytest.raises(ExecutionError):
                resolve_backend(bad)

    def test_plan_covers_all_stages_once_in_order(self):
        from repro.core import PIPELINE_STAGES
        from repro.execution import plan_stage_workers

        fractions = {
            "merkle": 0.4, "sumcheck": 0.35, "encoder": 0.15, "other": 0.1,
        }
        for workers in range(1, 9):
            plan = plan_stage_workers(fractions, workers)
            flat = [s for group in plan for s in group.stages]
            assert tuple(flat) == PIPELINE_STAGES  # contiguous, in order
            assert sum(g.workers for g in plan) == workers
            assert all(g.workers >= 1 for g in plan)

    def test_surplus_workers_go_to_heaviest_stage(self):
        from repro.execution import plan_stage_workers

        plan = plan_stage_workers(
            {"merkle": 0.7, "sumcheck": 0.1, "encoder": 0.1, "other": 0.1}, 6
        )
        workers = {g.stages[0]: g.workers for g in plan}
        assert workers["merkle"] == max(workers.values())

    def test_two_workers_balance_the_bottleneck(self):
        from repro.execution import plan_stage_workers

        # sumcheck dominates: the split must isolate it from the cheap
        # head stages rather than cut at the midpoint blindly.
        plan = plan_stage_workers(
            {"merkle": 0.1, "sumcheck": 0.7, "encoder": 0.1, "other": 0.1}, 2
        )
        assert plan[1].stages[0] == "sumcheck"

    def test_empty_fractions_fall_back_to_even_split(self):
        from repro.execution import plan_stage_workers

        plan = plan_stage_workers({}, 2)
        assert [g.stages for g in plan] == [
            ("encode", "merkle"), ("sumcheck", "open"),
        ]

    def test_invalid_workers_rejected(self):
        from repro.execution import plan_stage_workers

        with pytest.raises(ExecutionError):
            plan_stage_workers({}, 0)


class TestPipelinedBackend:
    def test_proofs_byte_identical_to_serial(self, setup, serial_run):
        _, spec, tasks = setup
        proofs, stats = resolve_backend("pipelined:2").prove_tasks(spec, tasks)
        assert _wire(proofs) == _wire(serial_run[0])
        assert stats.proofs_generated == len(tasks)
        assert stats.workers == 2

    def test_second_batch_skips_warmup_and_stays_identical(
        self, setup, serial_run
    ):
        _, spec, tasks = setup
        backend = resolve_backend("pipelined:2")
        backend.prove_tasks(spec, tasks)
        proofs, _ = backend.prove_tasks(spec, tasks)  # plan now cached
        assert _wire(proofs) == _wire(serial_run[0])

    def test_empty_batch(self, setup):
        _, spec, _ = setup
        proofs, stats = resolve_backend("pipelined:2").prove_tasks(spec, [])
        assert proofs == [] and stats.proofs_generated == 0

    def test_four_workers_one_stage_each(self, setup, serial_run):
        _, spec, tasks = setup
        proofs, _ = resolve_backend("pipelined:4").prove_tasks(spec, tasks)
        assert _wire(proofs) == _wire(serial_run[0])

    def test_composes_under_sharded(self, setup, serial_run):
        _, spec, tasks = setup
        backend = resolve_backend("sharded:pipelined:2,serial")
        proofs, _ = backend.prove_tasks(spec, tasks)
        assert _wire(proofs) == _wire(serial_run[0])

    def test_fault_plan_walk_reaches_backend(self):
        from repro.resilience import FaultInjector, FaultPlan, apply_fault_plan

        backend = resolve_backend("resilient:pipelined:2")
        injector = FaultInjector(FaultPlan.parse("crash:0.1,seed=3"))
        apply_fault_plan(backend, injector, min_retries=2)
        inner = backend.children[0]
        assert inner.fault_injector is injector
        assert inner.max_retries >= 2

    def test_exhausted_retries_raise_proof_error(self, setup):
        from repro.errors import ProofError

        _, spec, tasks = setup

        def always_crash(task_id, attempt):
            raise RuntimeError("injected")

        backend = resolve_backend("pipelined:2")
        backend.fault_injector = always_crash
        backend.max_retries = 1
        with pytest.raises(ProofError):
            backend.prove_tasks(spec, tasks)


class TestPipelinedTrace:
    @pytest.fixture()
    def traced_run(self, setup):
        _, spec, tasks = setup
        buf = io.StringIO()
        sink = JsonlTraceSink(buf)
        backend = resolve_backend("pipelined:2")
        proofs, stats = backend.prove_tasks(spec, tasks, trace=sink)
        return load_trace(buf.getvalue().splitlines()), stats, tasks

    def test_every_task_walks_every_stage_in_order(self, traced_run):
        from repro.core import PIPELINE_STAGES

        events, _, tasks = traced_run
        for task in tasks:
            done = [
                e["stage"] for e in events
                if e["event"] == "stage_done" and e["task_id"] == task.task_id
            ]
            assert tuple(done) == PIPELINE_STAGES

    def test_stage_events_are_span_stamped_under_backend(self, traced_run):
        events, _, _ = traced_run
        nodes = span_index(events)
        backend_span = next(
            e["span"] for e in events if e["event"] == "run_start"
        )
        for e in events:
            if e["event"] in ("stage_enqueue", "stage_start", "stage_done"):
                assert e["kind"] == "task"
                assert e["parent"] == backend_span
                assert nodes[e["span"]].parent == backend_span

    def test_breakdown_replay_matches_stats(self, traced_run):
        from repro.execution import stage_breakdown

        events, stats, _ = traced_run
        assert stage_breakdown(events) == stats.stage_totals()
        replayed = stage_breakdown(events, exclusive=False)
        assert replayed == stats.stage_totals(exclusive=False)

    def test_plan_event_partitions_workers(self, traced_run):
        events, stats, _ = traced_run
        plan = next(e for e in events if e["event"] == "pipeline_plan")
        assert sum(g["workers"] for g in plan["groups"]) == stats.workers
        fr = plan["fractions"]
        assert sum(fr.values()) == pytest.approx(1.0)

    def test_exclusive_fractions_sum_within_prove_wall(self, traced_run):
        # Acceptance: exclusive stage fractions are shares of proving
        # wall time — they sum to <= 1.0 of it.
        _, stats, _ = traced_run
        excl = stats.stage_totals()
        prove_wall = sum(r.prove_seconds for r in stats.records)
        assert 0.0 < sum(excl.values()) <= prove_wall * 1.0 + 1e-9
