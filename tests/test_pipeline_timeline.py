"""Pipeline-timeline tests: the Figure 4b schedule as executable spec."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PipelineError
from repro.pipeline import (
    busy_stage_counts,
    occupancy_by_beat,
    pipeline_timeline,
    render_gantt,
    steady_state_beats,
    validate_timeline,
)


class TestTimeline:
    def test_total_cells(self):
        cells = list(pipeline_timeline(num_stages=3, batch_size=5))
        assert len(cells) == 3 * 5  # every task visits every stage once

    def test_task_path(self):
        cells = [
            (o.beat, o.stage)
            for o in pipeline_timeline(3, 5)
            if o.task == 2
        ]
        assert cells == [(2, 0), (3, 1), (4, 2)]

    def test_invalid_args(self):
        with pytest.raises(PipelineError):
            list(pipeline_timeline(0, 1))
        with pytest.raises(PipelineError):
            list(pipeline_timeline(1, 0))

    @given(
        stages=st.integers(min_value=1, max_value=12),
        batch=st.integers(min_value=1, max_value=24),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_all_invariants(self, stages, batch):
        checks = validate_timeline(stages, batch)
        assert all(checks.values()), checks

    def test_busy_profile_shape(self):
        """Ramp up, plateau, drain — the Figure 4b envelope."""
        counts = busy_stage_counts(num_stages=4, batch_size=10)
        assert counts[:4] == [1, 2, 3, 4]  # fill
        assert counts[-3:] == [3, 2, 1]  # drain
        assert counts.count(4) == steady_state_beats(4, 10) == 7

    def test_small_batch_never_fills(self):
        counts = busy_stage_counts(num_stages=8, batch_size=3)
        assert max(counts) == 3
        assert steady_state_beats(8, 3) == 0

    def test_occupancy_grid_total(self):
        grid = occupancy_by_beat(5, 7)
        assert sum(len(cells) for cells in grid) == 35
        assert len(grid) == 7 + 5 - 1


class TestGantt:
    def test_renders_diagonals(self):
        art = render_gantt(num_stages=3, batch_size=4)
        lines = art.splitlines()
        assert len(lines) == 3
        # Task 0 runs down the main diagonal.
        assert lines[0][len("stage  0 |")] == "0"
        assert lines[1][len("stage  0 |") + 1] == "0"
        assert lines[2][len("stage  0 |") + 2] == "0"

    def test_width_guard(self):
        with pytest.raises(PipelineError):
            render_gantt(num_stages=50, batch_size=50)

    def test_matches_sim_beat_count(self):
        """Render and the analytic simulator agree on total beats."""
        from repro.gpu import get_gpu, run_pipelined
        from repro.pipeline import merkle_graph

        graph = merkle_graph(1 << 8)
        stages = len(graph.stages)
        res = run_pipelined(get_gpu("V100"), graph, 16, include_transfers=False)
        grid = occupancy_by_beat(stages, 16)
        assert res.total_seconds == pytest.approx(
            len(grid) * res.steady_interval_seconds, rel=1e-9
        )
