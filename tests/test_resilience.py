"""Resilience-layer tests (S25): chaos plane, breakers, failover,
quarantine, and the crash-safe journal."""

import json
import pickle

import pytest

from repro.core import (
    CircuitBuilder,
    ProofTask,
    SnarkProver,
    compile_builder,
    make_pcs,
    random_circuit,
)
from repro.core.serialize import serialize_proof
from repro.errors import (
    BackendUnavailableError,
    ExecutionError,
    InjectedFault,
    JournalError,
    QuarantinedTaskError,
    ResilienceError,
)
from repro.execution import SerialBackend, resolve_backend
from repro.field import DEFAULT_FIELD
from repro.resilience import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    FaultInjector,
    FaultPlan,
    HealthTracker,
    ProofJournal,
    ResilientBackend,
    apply_fault_plan,
    journaled_prove,
    split_results,
    task_key,
)
from repro.runtime import JsonlTraceSink, ProverSpec

F = DEFAULT_FIELD


# -- fixtures -----------------------------------------------------------------

@pytest.fixture(scope="module")
def setup():
    cc = random_circuit(F, 48, seed=3)
    pcs = make_pcs(F, cc.r1cs, num_col_checks=4)
    prover = SnarkProver(cc.r1cs, pcs, public_indices=cc.public_indices)
    spec = ProverSpec.from_prover(prover)
    tasks = [ProofTask(i, cc.witness, cc.public_values) for i in range(8)]
    return prover, spec, tasks


@pytest.fixture(scope="module")
def fault_free(setup):
    """The oracle: serial proofs with no chaos, on the wire."""
    _, spec, tasks = setup
    proofs, _ = SerialBackend().prove_tasks(spec, tasks)
    return _wire(proofs)


def _wire(proofs):
    return [serialize_proof(p, F) for p in proofs]


def _chain_setup(num_tasks=4, num_inputs=5):
    """One circuit, ``num_tasks`` *distinct* witnesses.

    The builder's structure depends only on the gate sequence, not the
    input values, so re-building with shifted inputs yields the same
    R1CS (same digest, same spec) but distinct witnesses — what the
    content-addressed journal tests need.
    """
    compiled = []
    for t in range(num_tasks):
        cb = CircuitBuilder(F)
        wires = cb.private_inputs([t * num_inputs + k + 1
                                   for k in range(num_inputs)])
        acc = wires[0]
        for wire in wires[1:]:
            acc = cb.mul(acc, wire)
        cb.expose_public(acc)
        compiled.append(compile_builder(cb))
    digests = {cc.r1cs.digest() for cc in compiled}
    assert len(digests) == 1  # same circuit, different witnesses
    cc0 = compiled[0]
    pcs = make_pcs(F, cc0.r1cs, num_col_checks=4)
    prover = SnarkProver(cc0.r1cs, pcs, public_indices=cc0.public_indices)
    spec = ProverSpec.from_prover(prover)
    tasks = [
        ProofTask(i, cc.witness, cc.public_values)
        for i, cc in enumerate(compiled)
    ]
    return spec, tasks


# -- fault-plan grammar -------------------------------------------------------

class TestFaultPlanParse:
    def test_rates_and_seed(self):
        plan = FaultPlan.parse("crash:0.1,corrupt:0.02,seed=7")
        assert plan.crash == 0.1
        assert plan.corrupt == 0.02
        assert plan.seed == 7
        assert plan.any_faults

    def test_down_grammar_variants(self):
        assert FaultPlan.parse("down=1").down == (1, 0, 1)
        assert FaultPlan.parse("down=0@2").down == (0, 2, 1)
        assert FaultPlan.parse("down=0@1x3").down == (0, 1, 3)

    def test_poison_tasks(self):
        assert FaultPlan.parse("poison=3").poison == (3,)
        assert FaultPlan.parse("poison=3+7").poison == (3, 7)

    def test_empty_plan_has_no_faults(self):
        assert not FaultPlan.parse("").any_faults
        assert FaultPlan.parse("crash:0.0").crash == 0.0

    def test_unknown_kind_rejected(self):
        with pytest.raises(ResilienceError, match="unknown fault kind"):
            FaultPlan.parse("meteor:0.5")

    def test_unknown_key_rejected(self):
        with pytest.raises(ResilienceError, match="unknown fault-plan key"):
            FaultPlan.parse("meteor=5")

    def test_bad_rate_rejected(self):
        with pytest.raises(ResilienceError, match="bad fault rate"):
            FaultPlan.parse("crash:lots")

    def test_out_of_range_rate_rejected(self):
        with pytest.raises(ResilienceError, match="outside"):
            FaultPlan.parse("crash:1.5")

    def test_bare_token_rejected(self):
        with pytest.raises(ResilienceError, match="unparseable"):
            FaultPlan.parse("crash")

    def test_negative_slow_seconds_rejected(self):
        with pytest.raises(ResilienceError, match="slow_seconds"):
            FaultPlan.parse("slow:0.1,slow_seconds=-1")

    def test_plan_is_picklable(self):
        plan = FaultPlan.parse("crash:0.1,down=0@1x2,poison=3,seed=9")
        assert pickle.loads(pickle.dumps(plan)) == plan


# -- fault injector -----------------------------------------------------------

def _crash_grid(injector, tasks=20, attempts=3):
    """Which (task, attempt) cells the worker-side hook raises on."""
    crashed = set()
    for task_id in range(tasks):
        for attempt in range(1, attempts + 1):
            try:
                injector(task_id, attempt)
            except InjectedFault:
                crashed.add((task_id, attempt))
    return crashed


class TestFaultInjector:
    def test_decisions_are_deterministic(self):
        a = FaultInjector.from_plan("crash:0.3,seed=5")
        b = FaultInjector.from_plan("crash:0.3,seed=5")
        grid = _crash_grid(a)
        assert grid == _crash_grid(b)
        assert grid  # 0.3 over 60 cells hits something

    def test_seed_changes_decisions(self):
        a = FaultInjector.from_plan("crash:0.3,seed=5")
        b = FaultInjector.from_plan("crash:0.3,seed=6")
        assert _crash_grid(a) != _crash_grid(b)

    def test_crash_keyed_per_attempt(self):
        """A retry of the same task rolls fresh dice."""
        grid = _crash_grid(FaultInjector.from_plan("crash:0.4,seed=5"))
        tasks_hit = {t for t, _ in grid}
        # some crashed task must have a clean later attempt
        assert any(
            (t, 1) in grid and (t, 2) not in grid for t in tasks_hit
        )

    def test_pickled_copy_agrees(self):
        """Worker processes get copies; decisions must match."""
        injector = FaultInjector.from_plan("crash:0.3,slow:0.1,seed=5")
        clone = pickle.loads(pickle.dumps(injector))
        assert _crash_grid(injector) == _crash_grid(clone)

    def test_poison_always_raises(self):
        injector = FaultInjector.from_plan("poison=3,seed=1")
        for attempt in range(1, 5):
            with pytest.raises(InjectedFault) as exc_info:
                injector(3, attempt)
            assert exc_info.value.kind == "poison"
        injector(2, 1)  # non-poisoned task passes

    def test_forced_down_window_counts_calls(self):
        injector = FaultInjector.from_plan("down=1@1x2,seed=0")
        injector.check_outage(1, "one")              # call 0: before window
        for _ in range(2):                           # calls 1, 2: down
            with pytest.raises(BackendUnavailableError):
                injector.check_outage(1, "one")
        injector.check_outage(1, "one")              # call 3: recovered
        injector.check_outage(0, "zero")             # other child untouched

    def test_batch_fault_hook(self):
        always = FaultInjector.from_plan("batch:1.0,seed=0")
        with pytest.raises(InjectedFault):
            always.on_batch_dispatch(0)
        never = FaultInjector.from_plan("batch:0.0,seed=0")
        never.on_batch_dispatch(0)

    def test_maybe_corrupt_flips_commitment_root(self, setup, fault_free):
        _, spec, tasks = setup
        proofs, _ = SerialBackend().prove_tasks(spec, tasks[:1])
        injector = FaultInjector.from_plan("corrupt:1.0,seed=0")
        bad = injector.maybe_corrupt(proofs[0], 0)
        assert bad.commitment.root != proofs[0].commitment.root
        assert serialize_proof(bad, F) != fault_free[0]
        off = FaultInjector.from_plan("corrupt:0.0,seed=0")
        assert off.maybe_corrupt(proofs[0], 0) is proofs[0]

    def test_corrupt_keyed_per_delivery(self, setup):
        _, spec, tasks = setup
        proofs, _ = SerialBackend().prove_tasks(spec, tasks[:1])
        deliveries = []
        injector = FaultInjector.from_plan("corrupt:0.5,seed=2")
        for _ in range(12):
            out = injector.maybe_corrupt(proofs[0], 0)
            deliveries.append(out.commitment.root != proofs[0].commitment.root)
        assert True in deliveries and False in deliveries
        clone = FaultInjector.from_plan("corrupt:0.5,seed=2")
        redo = [
            clone.maybe_corrupt(proofs[0], 0).commitment.root
            != proofs[0].commitment.root
            for _ in range(12)
        ]
        assert redo == deliveries

    def test_injected_snapshot_counts(self):
        injector = FaultInjector.from_plan("poison=0,seed=0")
        with pytest.raises(InjectedFault):
            injector(0, 1)
        assert injector.injected_snapshot() == {"poison": 1}


# -- circuit breaker ----------------------------------------------------------

class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def _breaker(clock, **kwargs):
    kwargs.setdefault("failure_threshold", 2)
    kwargs.setdefault("cooldown_seconds", 1.0)
    return CircuitBreaker(clock=clock, **kwargs)


class TestCircuitBreaker:
    def test_starts_closed_and_admits(self):
        cb = _breaker(FakeClock())
        assert cb.state == CLOSED
        assert cb.acquire()

    def test_success_resets_failure_streak(self):
        cb = _breaker(FakeClock())
        cb.record_failure()
        cb.record_success()
        cb.record_failure()
        assert cb.state == CLOSED  # streak never reached 2

    def test_threshold_failures_trip_open(self):
        clock = FakeClock()
        cb = _breaker(clock)
        cb.record_failure()
        cb.record_failure()
        assert cb.state == OPEN
        assert not cb.acquire()
        assert cb.seconds_until_probe() == pytest.approx(1.0)
        clock.now = 0.4
        assert cb.seconds_until_probe() == pytest.approx(0.6)

    def test_cooldown_admits_limited_probes(self):
        clock = FakeClock()
        cb = _breaker(clock, half_open_probes=1)
        cb.record_failure()
        cb.record_failure()
        clock.now = 1.5
        assert cb.state == HALF_OPEN
        assert cb.acquire()        # the probe
        assert not cb.acquire()    # probe budget spent

    def test_probe_success_closes(self):
        clock = FakeClock()
        cb = _breaker(clock)
        cb.record_failure()
        cb.record_failure()
        clock.now = 1.5
        assert cb.acquire()
        cb.record_success()
        assert cb.state == CLOSED
        assert (HALF_OPEN, CLOSED) in cb.transitions

    def test_probe_failure_reopens_with_fresh_cooldown(self):
        clock = FakeClock()
        cb = _breaker(clock)
        cb.record_failure()
        cb.record_failure()
        clock.now = 1.5
        assert cb.acquire()
        cb.record_failure()
        assert cb.state == OPEN
        assert cb.seconds_until_probe() == pytest.approx(1.0)

    def test_release_returns_unused_probe_slot(self):
        clock = FakeClock()
        cb = _breaker(clock, half_open_probes=1)
        cb.record_failure()
        cb.record_failure()
        clock.now = 1.5
        assert cb.acquire()
        cb.release()               # planner placed nothing on this child
        assert cb.acquire()        # slot is back

    def test_transition_callback_sees_every_move(self):
        clock = FakeClock()
        seen = []
        cb = CircuitBreaker(
            failure_threshold=1, cooldown_seconds=1.0, clock=clock,
            on_transition=lambda src, dst: seen.append((src, dst)),
        )
        cb.record_failure()
        clock.now = 1.5
        cb.acquire()
        cb.record_success()
        assert seen == [
            (CLOSED, OPEN), (OPEN, HALF_OPEN), (HALF_OPEN, CLOSED)
        ]
        assert cb.transitions == seen

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ResilienceError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ResilienceError):
            CircuitBreaker(cooldown_seconds=-1)
        with pytest.raises(ResilienceError):
            CircuitBreaker(half_open_probes=0)


class TestHealthTracker:
    def test_ledger_and_streak(self):
        h = HealthTracker("0:serial")
        h.record_failure("boom", now=1.0)
        h.record_failure("boom again", now=2.0)
        assert h.consecutive_failures == 2
        h.record_success(tasks=3)
        assert h.consecutive_failures == 0
        assert h.tasks_completed == 3
        assert h.total_calls == 3
        assert "0:serial" in h.summary()
        assert "1 ok / 2 failed" in h.summary()


# -- wiring the plan into a backend tree --------------------------------------

class TestApplyFaultPlan:
    def test_installs_injector_at_every_level(self):
        backend = resolve_backend("resilient:sharded:serial,serial")
        injector = FaultInjector.from_plan("crash:0.1,seed=1")
        apply_fault_plan(backend, injector, min_retries=2)
        assert backend.fault_injector is injector
        for child in backend.children:
            assert child.fault_injector is injector
            assert child.max_retries == 2

    def test_min_retries_reaches_pool_runtime_options(self):
        backend = resolve_backend("resilient:pool:2")
        injector = FaultInjector.from_plan("crash:0.1,seed=1")
        apply_fault_plan(backend, injector, min_retries=3)
        pool = backend.children[0]
        assert pool.fault_injector is injector
        assert pool.runtime_options["max_retries"] == 3

    def test_min_retries_never_lowers(self):
        backend = SerialBackend(max_retries=5)
        apply_fault_plan(
            backend, FaultInjector.from_plan("seed=0"), min_retries=2
        )
        assert backend.max_retries == 5


# -- chaos parity sweeps ------------------------------------------------------

class TestChaosParity:
    """Under seeded worker faults every backend must still produce the
    exact fault-free bytes — chaos may cost retries, never proofs."""

    @pytest.mark.parametrize("selector", [
        "serial",
        "pool:2",
        "pipelined:2",
        "lanes:4",
        "resilient:lanes:4",
        "sharded:serial,serial",
        "resilient:sharded:serial,serial",
        "resilient:pipelined:2",
    ])
    @pytest.mark.parametrize("seed", [5, 11])
    def test_crash_storm_preserves_bytes(
        self, setup, fault_free, selector, seed
    ):
        _, spec, tasks = setup
        backend = resolve_backend(selector)
        injector = FaultInjector.from_plan(
            f"crash:0.2,slow:0.05,slow_seconds=0.005,seed={seed}"
        )
        apply_fault_plan(backend, injector, min_retries=4)
        proofs, stats = backend.prove_tasks(spec, tasks)
        assert _wire(proofs) == fault_free
        assert stats.proofs_generated == len(tasks)

    def test_corruption_is_caught_and_reproved(self, setup, fault_free):
        _, spec, tasks = setup
        backend = ResilientBackend(
            resolve_backend("sharded:serial,serial"),
            verify_on_return=True,
            max_reproves=4,
        )
        injector = FaultInjector.from_plan("corrupt:0.3,seed=13")
        apply_fault_plan(backend, injector, min_retries=2)
        proofs, _ = backend.prove_tasks(spec, tasks)
        assert _wire(proofs) == fault_free
        rstats = backend.last_resilience_stats
        assert rstats.faults_injected.get("corrupt", 0) >= 1
        assert rstats.re_proves >= 1


# -- resilient backend --------------------------------------------------------

class TestResilientBackend:
    def test_fault_free_run_matches_sharded_core(self, setup, fault_free):
        _, spec, tasks = setup
        backend = resolve_backend("resilient:sharded:serial,serial")
        proofs, stats = backend.prove_tasks(spec, tasks)
        assert _wire(proofs) == fault_free
        rstats = backend.last_resilience_stats
        assert rstats.rounds == 1
        assert rstats.failovers == 0
        assert rstats.child_failures == 0
        assert rstats.quarantined == 0
        assert stats.proofs_generated == len(tasks)

    def test_poison_task_quarantined_without_sinking_batch(
        self, setup, fault_free
    ):
        _, spec, tasks = setup
        backend = resolve_backend("resilient:sharded:serial,serial")
        injector = FaultInjector.from_plan("poison=3,seed=1")
        apply_fault_plan(backend, injector)
        results, _ = backend.prove_tasks(spec, tasks)
        verdict = results[3]
        assert isinstance(verdict, QuarantinedTaskError)
        assert verdict.task_id == 3
        assert len(verdict.tried_on) == 2  # failed on both children
        good = [r for i, r in enumerate(results) if i != 3]
        oracle = [w for i, w in enumerate(fault_free) if i != 3]
        assert _wire(good) == oracle
        assert backend.last_resilience_stats.quarantined == 1

    def test_poison_quarantined_through_pipelined_child(
        self, setup, fault_free
    ):
        """``resilient:pipelined:W`` composes: the pipelined child's
        exhausted-retry ProofError is attributed and the poison task
        quarantined, without losing the rest of the batch."""
        _, spec, tasks = setup
        backend = resolve_backend("resilient:pipelined:2")
        injector = FaultInjector.from_plan("poison=3,seed=1")
        apply_fault_plan(backend, injector)
        results, _ = backend.prove_tasks(spec, tasks)
        assert isinstance(results[3], QuarantinedTaskError)
        assert results[3].task_id == 3
        good = [r for i, r in enumerate(results) if i != 3]
        oracle = [w for i, w in enumerate(fault_free) if i != 3]
        assert _wire(good) == oracle
        assert backend.last_resilience_stats.quarantined == 1

    def test_forced_outage_fails_over_with_trace_lineage(
        self, setup, fault_free, tmp_path
    ):
        _, spec, tasks = setup
        backend = resolve_backend("resilient:sharded:serial,serial")
        injector = FaultInjector.from_plan("down=0@0x1,seed=2")
        apply_fault_plan(backend, injector)
        path = str(tmp_path / "failover.jsonl")
        with JsonlTraceSink(path) as sink:
            proofs, _ = backend.prove_tasks(spec, tasks, trace=sink)
        assert _wire(proofs) == fault_free
        rstats = backend.last_resilience_stats
        assert rstats.failovers >= 1
        assert rstats.child_failures == 1
        events = [json.loads(line) for line in open(path)]
        failures = [e for e in events if e["event"] == "child_failure"]
        assert failures and failures[0]["child"] == "0:serial"
        failovers = [e for e in events if e["event"] == "failover"]
        assert failovers
        assert all(e["to_child"] == "1:serial" for e in failovers)
        assert all("0:serial" in e["from_children"] for e in failovers)
        # the failed-over work completes under this backend's span
        root = next(e for e in events if e["event"] == "resilient_start")
        assert all(e["span"].startswith(root["span"]) for e in failovers)

    def test_dead_child_trips_breaker_then_recovers(self, setup, fault_free):
        _, spec, tasks = setup
        backend = ResilientBackend(
            resolve_backend("sharded:serial,serial"),
            failure_threshold=1,
            cooldown_seconds=0.01,
        )
        injector = FaultInjector.from_plan("down=0@0x1,seed=4")
        apply_fault_plan(backend, injector)
        proofs, _ = backend.prove_tasks(spec, tasks)
        assert _wire(proofs) == fault_free
        rstats = backend.last_resilience_stats
        assert ("0:serial", CLOSED, OPEN) in rstats.breaker_transitions
        assert rstats.breaker_opens >= 1
        assert backend.health[0].failures == 1
        # the breaker itself is usable again (cooldown is 10 ms)
        import time
        time.sleep(0.02)
        assert backend.breakers[0].acquire()

    def test_lifetime_stats_accumulate_across_runs(self, setup):
        _, spec, tasks = setup
        backend = resolve_backend("resilient:serial")
        backend.prove_tasks(spec, tasks[:2])
        backend.prove_tasks(spec, tasks[2:4])
        assert backend.resilience_stats.rounds == 2
        assert backend.last_resilience_stats.rounds == 1

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ExecutionError):
            ResilientBackend([])
        with pytest.raises(ExecutionError):
            ResilientBackend(SerialBackend(), quarantine_threshold=0)
        with pytest.raises(ExecutionError):
            ResilientBackend(SerialBackend(), max_reproves=-1)
        with pytest.raises(ExecutionError):
            ResilientBackend([SerialBackend()], weights=[1.0, 2.0])

    def test_registry_selector(self):
        backend = resolve_backend("resilient:sharded:serial,serial")
        assert backend.name == "resilient:sharded:serial,serial"
        assert backend.parallelism == 2
        assert resolve_backend("resilient:pool:3").parallelism == 3
        with pytest.raises(ExecutionError, match="wraps an inner"):
            resolve_backend("resilient")

    def test_split_results_partitions(self):
        quarantined = QuarantinedTaskError(7, ["0:serial"], "poison")
        results = ["proof-a", quarantined, "proof-b"]
        proofs, bad = split_results(results)
        assert proofs == [(0, "proof-a"), (2, "proof-b")]
        assert bad == [quarantined]


# -- journal ------------------------------------------------------------------

class ExplodingBackend:
    """Proves ``survive`` calls, then dies — the mid-batch kill stand-in."""

    def __init__(self, inner, survive):
        self.inner = inner
        self.survive = survive
        self.calls = 0

    def prove_tasks(self, spec, tasks, *, trace=None, parent=None):
        if self.calls >= self.survive:
            raise RuntimeError("simulated kill -9")
        self.calls += 1
        return self.inner.prove_tasks(spec, tasks, trace=trace, parent=parent)


class TestTaskKey:
    def test_independent_of_task_id(self):
        spec, tasks = _chain_setup(num_tasks=1)
        relabeled = ProofTask(99, tasks[0].witness, tasks[0].public_values)
        assert task_key(spec, tasks[0]) == task_key(spec, relabeled)

    def test_distinct_witnesses_distinct_keys(self):
        spec, tasks = _chain_setup(num_tasks=4)
        keys = {task_key(spec, t) for t in tasks}
        assert len(keys) == 4


class TestProofJournal:
    def test_roundtrip_and_later_entries_win(self, tmp_path):
        spec, tasks = _chain_setup(num_tasks=2)
        path = str(tmp_path / "j.jsonl")
        keys = [task_key(spec, t) for t in tasks]
        with ProofJournal.create(path, spec) as journal:
            journal.append(keys[0], 0, b"\x01\x02")
            journal.append(keys[1], 1, b"\x03")
            journal.append(keys[0], 0, b"\xff")  # re-prove supersedes
        entries, torn = ProofJournal.load(path, spec)
        assert torn == 0
        assert entries == {keys[0]: b"\xff", keys[1]: b"\x03"}

    def test_header_records_circuit_and_field(self, tmp_path):
        spec, _ = _chain_setup(num_tasks=1)
        path = str(tmp_path / "j.jsonl")
        ProofJournal.create(path, spec).close()
        header = json.loads(open(path).readline())
        assert header["journal"] == "repro-proofs"
        assert header["spec"] == spec.r1cs.digest().hex()
        assert header["field"] == hex(F.modulus)

    def test_open_rejects_wrong_circuit(self, tmp_path):
        spec, _ = _chain_setup(num_tasks=1)
        path = str(tmp_path / "j.jsonl")
        ProofJournal.create(path, spec).close()
        cc = random_circuit(F, 32, seed=2)
        pcs = make_pcs(F, cc.r1cs, num_col_checks=4)
        other = ProverSpec.from_prover(
            SnarkProver(cc.r1cs, pcs, public_indices=cc.public_indices)
        )
        with pytest.raises(JournalError, match="written for circuit"):
            ProofJournal.open(path, other)
        with pytest.raises(JournalError, match="different circuit"):
            ProofJournal.load(path, other)

    def test_rejects_non_journal_file(self, tmp_path):
        spec, _ = _chain_setup(num_tasks=1)
        path = tmp_path / "junk.jsonl"
        path.write_text("this is not json\n")
        with pytest.raises(JournalError, match="unparseable header"):
            ProofJournal.open(str(path), spec)
        path.write_text('{"some": "other file"}\n')
        with pytest.raises(JournalError, match="bad header tag"):
            ProofJournal.open(str(path), spec)

    def test_rejects_future_version(self, tmp_path):
        spec, _ = _chain_setup(num_tasks=1)
        path = tmp_path / "j.jsonl"
        header = {
            "journal": "repro-proofs", "version": 99,
            "spec": spec.r1cs.digest().hex(), "field": hex(F.modulus),
        }
        path.write_text(json.dumps(header) + "\n")
        with pytest.raises(JournalError, match="version"):
            ProofJournal.open(str(path), spec)

    def test_torn_tail_tolerated_but_not_mid_file_corruption(self, tmp_path):
        spec, tasks = _chain_setup(num_tasks=2)
        path = tmp_path / "j.jsonl"
        keys = [task_key(spec, t) for t in tasks]
        with ProofJournal.create(str(path), spec) as journal:
            journal.append(keys[0], 0, b"\x01")
            journal.append(keys[1], 1, b"\x02")
        whole = path.read_text()
        lines = whole.splitlines(keepends=True)
        # crash mid-append: final line half-written
        path.write_text("".join(lines[:-1]) + lines[-1][:10])
        entries, torn = ProofJournal.load(str(path), spec)
        assert torn == 1
        assert entries == {keys[0]: b"\x01"}
        # the same damage mid-file is corruption, not a crash artifact
        path.write_text(lines[0] + lines[1][:10] + "\n" + lines[2])
        with pytest.raises(JournalError, match="not at tail"):
            ProofJournal.load(str(path), spec)


class TestJournaledProve:
    def test_fresh_run_journals_everything(self, tmp_path):
        spec, tasks = _chain_setup()
        path = str(tmp_path / "run.jsonl")
        results, stats, report = journaled_prove(
            SerialBackend(), spec, tasks, path
        )
        assert report.proved == len(tasks) and report.skipped == 0
        verifier = spec.build_verifier()
        assert all(
            verifier.verify(p, t.public_values)
            for p, t in zip(results, tasks)
        )
        assert stats.proofs_generated == len(tasks)

    def test_resume_reproves_zero_completed_tasks(self, tmp_path):
        spec, tasks = _chain_setup()
        path = str(tmp_path / "run.jsonl")
        first, _, _ = journaled_prove(SerialBackend(), spec, tasks, path)
        counting = ExplodingBackend(SerialBackend(), survive=0)
        results, stats, report = journaled_prove(
            counting, spec, tasks, path, resume=True
        )
        assert report.skipped == len(tasks) and report.proved == 0
        assert counting.calls == 0  # backend never invoked
        assert _wire(results) == _wire(first)
        assert stats.proofs_generated == 0

    def test_mid_run_kill_then_resume(self, tmp_path):
        spec, tasks = _chain_setup()
        path = str(tmp_path / "run.jsonl")
        dying = ExplodingBackend(SerialBackend(), survive=2)
        with pytest.raises(RuntimeError, match="kill"):
            journaled_prove(
                dying, spec, tasks, path, checkpoint_every=1
            )
        results, _, report = journaled_prove(
            SerialBackend(), spec, tasks, path, resume=True
        )
        assert report.skipped == 2      # the two checkpointed proofs
        assert report.proved == len(tasks) - 2
        verifier = spec.build_verifier()
        assert all(
            verifier.verify(p, t.public_values)
            for p, t in zip(results, tasks)
        )

    def test_resume_after_torn_tail(self, tmp_path):
        spec, tasks = _chain_setup()
        path = tmp_path / "run.jsonl"
        journaled_prove(SerialBackend(), spec, tasks, str(path))
        lines = path.read_text().splitlines(keepends=True)
        path.write_text("".join(lines[:-1]) + lines[-1][: len(lines[-1]) // 2])
        results, _, report = journaled_prove(
            SerialBackend(), spec, tasks, str(path), resume=True
        )
        assert report.torn_lines == 1
        assert report.skipped == len(tasks) - 1
        assert report.proved == 1       # only the torn entry re-proved
        verifier = spec.build_verifier()
        assert all(
            verifier.verify(p, t.public_values)
            for p, t in zip(results, tasks)
        )

    def test_resume_matches_tasks_by_content_not_position(self, tmp_path):
        spec, tasks = _chain_setup()
        path = str(tmp_path / "run.jsonl")
        first, _, _ = journaled_prove(SerialBackend(), spec, tasks, path)
        shuffled = [tasks[2], tasks[0], tasks[3], tasks[1]]
        results, _, report = journaled_prove(
            SerialBackend(), spec, shuffled, path, resume=True
        )
        assert report.skipped == len(tasks)
        assert _wire(results) == [
            _wire(first)[2], _wire(first)[0], _wire(first)[3], _wire(first)[1]
        ]

    def test_quarantined_slots_are_not_journaled(self, tmp_path):
        spec, tasks = _chain_setup()

        class QuarantiningBackend:
            def prove_tasks(self, spec, batch, *, trace=None, parent=None):
                inner, stats = SerialBackend().prove_tasks(
                    spec, batch, trace=trace, parent=parent
                )
                results = [
                    QuarantinedTaskError(t.task_id, ["0:serial"], "poison")
                    if t.task_id == 1 else p
                    for t, p in zip(batch, inner)
                ]
                return results, stats

        path = str(tmp_path / "run.jsonl")
        results, _, report = journaled_prove(
            QuarantiningBackend(), spec, tasks, path, checkpoint_every=2
        )
        assert report.quarantined == 1
        assert report.proved == len(tasks) - 1
        assert isinstance(results[1], QuarantinedTaskError)
        # the quarantined task is still owed work on resume
        again, _, report2 = journaled_prove(
            SerialBackend(), spec, tasks, path, resume=True
        )
        assert report2.skipped == len(tasks) - 1
        assert report2.proved == 1
        verifier = spec.build_verifier()
        assert verifier.verify(again[1], tasks[1].public_values)

    def test_kill_and_resume_reattempts_poisoned_task(self, tmp_path):
        """Regression: a poison task's quarantined slot must never be
        mistaken for completed work on ``--resume``.

        Run 1 quarantines the poison task and is killed before the last
        chunk.  The resumed run must re-attempt the poison task (and
        re-quarantine it) — never silently skip it — and a final healthy
        resume proves it.
        """
        spec, tasks = _chain_setup()  # 4 tasks, distinct keys
        path = str(tmp_path / "run.jsonl")
        poison_key = task_key(spec, tasks[2])

        def poisoned():
            backend = resolve_backend("resilient:serial")
            injector = FaultInjector.from_plan("poison=2,seed=7")
            apply_fault_plan(backend, injector)
            return backend

        # Run 1: singleton chunks; tasks 0, 1 journal, task 2 is
        # quarantined, then the process dies before task 3's chunk.
        dying = ExplodingBackend(poisoned(), survive=3)
        with pytest.raises(RuntimeError, match="kill"):
            journaled_prove(
                dying, spec, tasks, path, checkpoint_every=1
            )
        entries, _ = ProofJournal.load(path, spec)
        assert poison_key not in entries  # the quarantine never journaled
        assert len(entries) == 2

        # Resume while still poisoned: the task is re-attempted and
        # re-quarantined, not served from the journal.
        results, _, report = journaled_prove(
            poisoned(), spec, tasks, path, resume=True,
            checkpoint_every=1,
        )
        assert report.skipped == 2
        assert report.quarantined == 1
        assert report.proved == 1  # task 3 finally lands
        assert isinstance(results[2], QuarantinedTaskError)
        entries, _ = ProofJournal.load(path, spec)
        assert poison_key not in entries

        # Resume once the poison clears: exactly the owed task is proved.
        final, _, report2 = journaled_prove(
            resolve_backend("resilient:serial"), spec, tasks, path,
            resume=True,
        )
        assert report2.skipped == 3 and report2.proved == 1
        verifier = spec.build_verifier()
        assert verifier.verify(final[2], tasks[2].public_values)

    def test_invalid_checkpoint_rejected(self, tmp_path):
        spec, tasks = _chain_setup(num_tasks=1)
        with pytest.raises(JournalError, match="checkpoint_every"):
            journaled_prove(
                SerialBackend(), spec, tasks,
                str(tmp_path / "x.jsonl"), checkpoint_every=0,
            )
