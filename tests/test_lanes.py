"""Lane-vectorized proving tests (S31): kernels, prover, backend.

Four properties pin the lane dimension down:

1. **Kernel parity** — every laned kernel matches its naive reference
   twin element-for-element at ``[lanes, n]`` shape, and each lane
   matches the scalar kernel applied to that lane alone, across the
   fast-path field (M61) and two fallback fields (M31, p=97).
2. **Byte identity** — ``prove_lanes`` emits proofs byte-identical to
   the per-proof path lane-for-lane, including the degenerate
   ``lanes=1`` group and the ragged final group of a batch.
3. **Selector surface** — ``lanes:<W>``/``lanes:auto`` resolve, pad,
   and compose; ``lane_selector``/``resolve_lane_width`` behave.
4. **Accounting** — amortized per-lane stage seconds keep the S27
   invariant Σ(exclusive stages) ≤ proving wall per task record.
"""

import random

import numpy as np
import pytest

from repro.core import ProofTask, SnarkVerifier, random_circuit
from repro.core.lanes import LanedProof
from repro.core.prover import PIPELINE_STAGES, make_pcs
from repro.core.serialize import serialize_proof
from repro.execution import (
    AUTO_LANE_WIDTH,
    LanedBackend,
    lane_selector,
    resolve_backend,
    resolve_lane_width,
)
from repro.field import DEFAULT_FIELD, PrimeField, fast61
from repro.field.primes import MERSENNE61
from repro.hashing.hashers import get_hasher
from repro.kernels import field_kernels, use_reference_kernels
from repro.merkle.tree import MerkleTree, build_forest
from repro.runtime import ProverSpec

F = DEFAULT_FIELD
P = MERSENNE61

#: The acceptance matrix: the M61 fast path plus two fallback moduli
#: (a non-M61 Mersenne prime and a tiny odd prime) that must take the
#: reference/lockstep code paths yet produce identical bytes.
FIELDS = [F, PrimeField(2**31 - 1, check=False), PrimeField(97, check=False)]
FIELD_IDS = ["m61", "m31", "p97"]


def _lane_mat(rng, lanes, n, p):
    """A ``[lanes, n]`` uint64 array of random residues."""
    return np.array(
        [[rng.randrange(p) for _ in range(n)] for _ in range(lanes)],
        dtype=np.uint64,
    )


def _as_int_lists(arr):
    return [[int(v) for v in lane] for lane in np.asarray(arr)]


# -- laned kernel parity ------------------------------------------------------


@pytest.mark.parametrize("field", FIELDS, ids=FIELD_IDS)
class TestLanedKernelParity:
    """fast == reference == per-lane scalar, at ``[lanes, n]`` shape."""

    LANES = 5

    def test_fold_table(self, field, rng):
        p = field.modulus
        table = _lane_mat(rng, self.LANES, 16, p)
        rs = [rng.randrange(p) for _ in range(self.LANES)]
        fast = field_kernels.fold_table(field, table, rs)
        ref = field_kernels._reference_fold_table(field, table, rs)
        assert _as_int_lists(fast) == _as_int_lists(ref)
        for lane in range(self.LANES):
            scalar = field_kernels.fold_table(
                field, [int(v) for v in table[lane]], rs[lane]
            )
            assert _as_int_lists(fast)[lane] == [int(v) % p for v in scalar]

    def test_fold_table_scalar_challenge_broadcasts(self, field, rng):
        p = field.modulus
        table = _lane_mat(rng, 3, 8, p)
        r = rng.randrange(p)
        fast = field_kernels.fold_table(field, table, r)
        assert _as_int_lists(fast) == _as_int_lists(
            field_kernels.fold_table(field, table, [r, r, r])
        )

    def test_eq_table_lanes(self, field, rng):
        p = field.modulus
        points = [[rng.randrange(p) for _ in range(4)] for _ in range(self.LANES)]
        fast = field_kernels.eq_table_lanes(field, points)
        ref = field_kernels._reference_eq_table_lanes(field, points)
        assert fast.shape == (self.LANES, 16)
        assert _as_int_lists(fast) == _as_int_lists(ref)
        for lane, point in enumerate(points):
            scalar = field_kernels.eq_table(field, point)
            assert _as_int_lists(fast)[lane] == [int(v) % p for v in scalar]

    def test_combine_rows(self, field, rng):
        p = field.modulus
        mats = np.array(
            [
                [[rng.randrange(p) for _ in range(9)] for _ in range(6)]
                for _ in range(self.LANES)
            ],
            dtype=np.uint64,
        )
        coeffs = _lane_mat(rng, self.LANES, 6, p)
        # Exercise the sparse skips: zero and unit coefficients.
        coeffs[0, 0] = 0
        coeffs[1, 2] = 1
        fast = field_kernels.combine_rows(field, mats, coeffs)
        ref = field_kernels._reference_combine_rows(field, mats, coeffs)
        assert _as_int_lists(fast) == _as_int_lists(ref)
        for lane in range(self.LANES):
            scalar = field_kernels.combine_rows(
                field,
                [[int(v) for v in row] for row in mats[lane]],
                [int(c) for c in coeffs[lane]],
            )
            assert _as_int_lists(fast)[lane] == [int(v) % p for v in scalar]

    def test_product_round_quadratic(self, field, rng):
        p = field.modulus
        ta = _lane_mat(rng, self.LANES, 12, p)
        tb = _lane_mat(rng, self.LANES, 12, p)
        fast = field_kernels.product_round_quadratic(field, ta, tb)
        ref = field_kernels._reference_product_round_quadratic(field, ta, tb)
        assert [[int(v) % p for v in lane] for lane in fast] == [
            [int(v) % p for v in lane] for lane in ref
        ]
        for lane in range(self.LANES):
            scalar = field_kernels.product_round_quadratic(
                field, [int(v) for v in ta[lane]], [int(v) for v in tb[lane]]
            )
            assert [int(v) % p for v in fast[lane]] == [int(v) % p for v in scalar]

    def test_constraint_round_cubic(self, field, rng):
        p = field.modulus
        tables = [_lane_mat(rng, self.LANES, 12, p) for _ in range(4)]
        fast = field_kernels.constraint_round_cubic(field, *tables)
        ref = field_kernels._reference_constraint_round_cubic(field, *tables)
        assert [[int(v) % p for v in lane] for lane in fast] == [
            [int(v) % p for v in lane] for lane in ref
        ]
        for lane in range(self.LANES):
            scalar = field_kernels.constraint_round_cubic(
                field, *([int(v) for v in t[lane]] for t in tables)
            )
            assert [int(v) % p for v in fast[lane]] == [int(v) % p for v in scalar]

    def test_constraint_claimed_sum(self, field, rng):
        p = field.modulus
        tables = [_lane_mat(rng, self.LANES, 10, p) for _ in range(4)]
        got = field_kernels.constraint_claimed_sum(field, *tables)
        for lane in range(self.LANES):
            scalar = field_kernels.constraint_claimed_sum(
                field, *([int(v) for v in t[lane]] for t in tables)
            )
            assert int(got[lane]) % p == scalar % p

    def test_constraint_violation_attributes_the_bad_lane(self, field, rng):
        p = field.modulus
        az = _lane_mat(rng, 3, 8, p)
        bz = _lane_mat(rng, 3, 8, p)
        cz = np.array(
            [[(int(a) * int(b)) % p for a, b in zip(la, lb)] for la, lb in zip(az, bz)],
            dtype=np.uint64,
        )
        assert field_kernels.constraint_violation(field, az, bz, cz) == [
            False,
            False,
            False,
        ]
        cz[1, 3] = (int(cz[1, 3]) + 1) % p
        assert field_kernels.constraint_violation(field, az, bz, cz) == [
            False,
            True,
            False,
        ]

    def test_product_pair_sum(self, field, rng):
        p = field.modulus
        ta = _lane_mat(rng, self.LANES, 11, p)
        tb = _lane_mat(rng, self.LANES, 11, p)
        got = field_kernels.product_pair_sum(field, ta, tb)
        for lane in range(self.LANES):
            scalar = field_kernels.product_pair_sum(
                field, [int(v) for v in ta[lane]], [int(v) for v in tb[lane]]
            )
            assert int(got[lane]) % p == scalar % p

    def test_laned_fast_matches_reference_mode(self, field, rng):
        """The whole laned surface again, with kernels globally disabled."""
        p = field.modulus
        table = _lane_mat(rng, 3, 8, p)
        rs = [rng.randrange(p) for _ in range(3)]
        fast = field_kernels.fold_table(field, table, rs)
        with use_reference_kernels():
            ref = field_kernels.fold_table(field, table, rs)
        assert _as_int_lists(fast) == _as_int_lists(ref)


# -- laned fast61 primitives --------------------------------------------------


class TestLanedFast61:
    def test_axis_and_rows_sum(self, rng):
        a = _lane_mat(rng, 4, 37, P)
        rows = fast61.f61_rows_sum(a)
        assert [int(v) for v in rows] == [
            sum(int(x) for x in lane) % P for lane in a
        ]
        cols = fast61.f61_axis_sum(a, axis=0)
        assert [int(v) for v in cols] == [
            sum(int(a[i, j]) for i in range(4)) % P for j in range(37)
        ]

    def test_rows_dot(self, rng):
        a = _lane_mat(rng, 4, 23, P)
        b = _lane_mat(rng, 4, 23, P)
        got = fast61.f61_rows_dot(a, b)
        assert [int(v) for v in got] == [
            sum(int(x) * int(y) for x, y in zip(la, lb)) % P
            for la, lb in zip(a, b)
        ]

    def test_spmv_apply_lanes_matches_per_lane_apply(self, rng):
        n_in, n_out, nnz = 24, 31, 60
        src = [rng.randrange(n_in) for _ in range(nnz)]
        dst = [rng.randrange(n_out) for _ in range(nnz)]
        w = [rng.randrange(P) for _ in range(nnz)]
        spmv = fast61.F61SpMV(src, dst, w, n_in, n_out)
        x = np.array(
            [[[rng.randrange(P) for _ in range(n_in)] for _ in range(3)]
             for _ in range(4)],
            dtype=np.uint64,
        )
        laned = spmv.apply_lanes(x)
        assert laned.shape == (4, 3, n_out)
        for lane in range(4):
            for row in range(3):
                assert laned[lane, row].tolist() == spmv.apply(
                    x[lane, row]
                ).tolist()


# -- batched Merkle forest ----------------------------------------------------


class TestMerkleForest:
    def test_forest_matches_per_lane_trees(self, rng):
        hasher = get_hasher("sha256")
        leaf_lists = [
            [bytes([rng.randrange(256)]) * 32 for _ in range(6)] for _ in range(5)
        ]
        forest = build_forest(leaf_lists, hasher)
        for leaves, tree in zip(leaf_lists, forest):
            alone = MerkleTree(leaves, hasher)
            assert tree.root == alone.root
            assert tree.layers == alone.layers
            proof = tree.open(3)
            assert proof.verify(alone.root, hasher)

    def test_single_lane_forest(self, rng):
        hasher = get_hasher("sha256")
        leaves = [bytes([i]) * 32 for i in range(8)]
        (tree,) = build_forest([leaves], hasher)
        assert tree.root == MerkleTree(leaves, hasher).root


# -- laned prover byte identity ----------------------------------------------


def _make_spec_and_tasks(field, gates, count, seed=11):
    """One circuit structure, ``count`` distinct-witness variants."""
    rng = random.Random(f"test-lanes/{seed}")
    variants = [
        random_circuit(
            field,
            gates,
            seed=seed,
            input_values=[rng.randrange(1, field.modulus) for _ in range(8)],
        )
        for _ in range(count)
    ]
    base = variants[0]
    digest = base.r1cs.digest()
    assert all(v.r1cs.digest() == digest for v in variants)
    spec = ProverSpec(
        r1cs=base.r1cs,
        public_indices=tuple(base.public_indices),
        num_col_checks=6,
    )
    tasks = [
        ProofTask(task_id=i, witness=v.witness, public_values=v.public_values)
        for i, v in enumerate(variants)
    ]
    return spec, tasks


def _wire(field, proofs):
    return [serialize_proof(p, field) for p in proofs]


class TestLanedProofByteIdentity:
    @pytest.mark.parametrize("field", FIELDS, ids=FIELD_IDS)
    def test_prove_lanes_matches_per_proof_path(self, field):
        spec, tasks = _make_spec_and_tasks(field, 24, 3)
        prover = spec.build_prover()
        serial = [prover.prove(t.witness, t.public_values) for t in tasks]
        laned = prover.prove_lanes(
            [t.witness for t in tasks], [t.public_values for t in tasks]
        )
        assert _wire(field, laned) == _wire(field, serial)
        verifier = SnarkVerifier(
            spec.r1cs,
            make_pcs(field, spec.r1cs, num_col_checks=6),
            public_indices=list(spec.public_indices),
        )
        assert all(
            verifier.verify(p, t.public_values) for p, t in zip(laned, tasks)
        )

    def test_single_lane_is_byte_identical(self):
        spec, tasks = _make_spec_and_tasks(F, 24, 1)
        prover = spec.build_prover()
        (task,) = tasks
        alone = prover.prove(task.witness, task.public_values)
        (laned,) = prover.prove_lanes([task.witness], [task.public_values])
        assert serialize_proof(laned, F) == serialize_proof(alone, F)

    def test_laned_proof_walks_pipeline_stages(self):
        spec, tasks = _make_spec_and_tasks(F, 24, 2)
        prover = spec.build_prover()
        staged = prover.begin_lanes(
            [t.witness for t in tasks], [t.public_values for t in tasks]
        )
        assert isinstance(staged, LanedProof)
        seen = []
        while not staged.done:
            seen.append(staged.next_stage)
            staged.run_next()
        assert seen == list(PIPELINE_STAGES)
        assert staged.next_stage is None
        assert len(staged.proofs) == 2


# -- lane backend: selectors, padding, accounting -----------------------------


class TestLaneBackend:
    def test_resolve_lane_width(self):
        assert resolve_lane_width("auto", 3) == 3
        assert resolve_lane_width("auto", 500) == AUTO_LANE_WIDTH
        assert resolve_lane_width(7, 3) == 7
        with pytest.raises(Exception):
            resolve_lane_width(0, 3)

    def test_lane_selector(self):
        assert lane_selector(4) == "lanes:4"
        assert lane_selector("auto") == "lanes:auto"
        assert lane_selector(8, workers=2) == "lanes:8:pool:2"
        assert lane_selector("auto", workers=2) == (
            f"lanes:{AUTO_LANE_WIDTH}:pool:2"
        )

    def test_selector_resolves_named_variants(self):
        assert isinstance(resolve_backend("lanes"), LanedBackend)
        assert resolve_backend("lanes:auto").lane_width == "auto"
        assert resolve_backend("lanes:16").lane_width == 16
        assert resolve_backend("lanes:4").name == "lanes:4"
        assert resolve_backend("lanes:4:pipelined:2").name == "lanes:4:pipelined:2"

    def test_ragged_final_group_pads_and_matches_serial(self):
        spec, tasks = _make_spec_and_tasks(F, 24, 7)
        serial, _ = resolve_backend("serial").prove_tasks(spec, tasks)
        laned, stats = resolve_backend("lanes:4").prove_tasks(spec, tasks)
        assert _wire(F, laned) == _wire(F, serial)
        assert stats.proofs_generated == 7
        assert [r.task_id for r in stats.records] == list(range(7))
        assert all(r.attempts == 1 for r in stats.records)

    def test_auto_width_matches_serial(self):
        spec, tasks = _make_spec_and_tasks(F, 24, 5)
        serial, _ = resolve_backend("serial").prove_tasks(spec, tasks)
        laned, _ = resolve_backend("lanes:auto").prove_tasks(spec, tasks)
        assert _wire(F, laned) == _wire(F, serial)

    def test_stage_seconds_keep_the_s27_invariant(self):
        """Amortized per-lane stages: Σ(exclusive) ≤ prove wall per task.

        ``encode`` and ``merkle`` nest inside ``commit``, so the
        exclusive sum leaves them out — the same accounting rule the
        S27 pipelined executor pins.
        """
        spec, tasks = _make_spec_and_tasks(F, 24, 6)
        _, stats = resolve_backend("lanes:4").prove_tasks(spec, tasks)
        assert len(stats.records) == 6
        for record in stats.records:
            assert record.stage_seconds, "laned records must carry stage timings"
            exclusive = sum(
                v
                for k, v in record.stage_seconds.items()
                if k not in ("encode", "merkle")
            )
            assert exclusive <= record.prove_seconds + 1e-6
            assert record.prove_seconds >= 0.0

    def test_group_wall_is_amortized_across_lanes(self):
        spec, tasks = _make_spec_and_tasks(F, 24, 4)
        _, stats = resolve_backend("lanes:4").prove_tasks(spec, tasks)
        walls = [r.prove_seconds for r in stats.records]
        # One fused group: every lane carries the same amortized share.
        assert max(walls) == pytest.approx(min(walls))
        assert sum(walls) <= stats.total_seconds + 1e-6
