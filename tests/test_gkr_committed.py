"""Committed-input GKR tests (the full Figure 1 second-category workflow)."""

import dataclasses

import pytest

from repro.errors import CircuitError
from repro.field import DEFAULT_FIELD
from repro.gkr import (
    CommittedGkrProver,
    CommittedGkrVerifier,
    matmul_circuit,
    random_layered_circuit,
)

F = DEFAULT_FIELD


@pytest.fixture(scope="module")
def setting(rng_module=None):
    import random

    rng = random.Random(17)
    circuit = random_layered_circuit(F, depth=3, width=8, input_size=8, seed=17)
    inputs = F.rand_vector(8, rng)
    prover = CommittedGkrProver(circuit, num_col_checks=6)
    verifier = CommittedGkrVerifier(circuit, num_col_checks=6)
    proof = prover.prove(inputs)
    return circuit, inputs, prover, verifier, proof


class TestCompleteness:
    def test_verifies_without_inputs(self, setting):
        """The verifier checks the proof knowing only circuit + outputs."""
        _, _, _, verifier, proof = setting
        assert verifier.verify(proof)

    def test_matmul(self, rng):
        circuit = matmul_circuit(F, 2)
        inputs = F.rand_vector(8, rng)
        prover = CommittedGkrProver(circuit, num_col_checks=6)
        verifier = CommittedGkrVerifier(circuit, num_col_checks=6)
        proof = prover.prove(inputs)
        assert verifier.verify(proof)
        # Outputs are genuinely the matrix product.
        a = inputs[:4]
        b = inputs[4:]
        c00 = (a[0] * b[0] + a[1] * b[2]) % F.modulus
        assert proof.gkr.outputs[0] == c00

    def test_commitment_hides_then_binds(self, setting):
        """Different inputs -> different roots; same inputs -> same proof."""
        circuit, inputs, prover, _, proof = setting
        other = [(v + 1) % F.modulus for v in inputs]
        proof2 = prover.prove(other)
        assert proof2.commitment.root != proof.commitment.root
        proof3 = prover.prove(inputs)
        assert proof3.commitment.root == proof.commitment.root


class TestSoundness:
    def test_forged_output(self, setting):
        _, _, _, verifier, proof = setting
        bad_gkr = dataclasses.replace(
            proof.gkr,
            outputs=[(proof.gkr.outputs[0] + 1) % F.modulus]
            + proof.gkr.outputs[1:],
        )
        bad = dataclasses.replace(proof, gkr=bad_gkr)
        assert not verifier.verify(bad)

    def test_forged_input_claim(self, setting):
        _, _, _, verifier, proof = setting
        last = proof.gkr.layer_proofs[-1]
        bad_last = dataclasses.replace(last, v_u=(last.v_u + 1) % F.modulus)
        bad_gkr = dataclasses.replace(
            proof.gkr, layer_proofs=proof.gkr.layer_proofs[:-1] + [bad_last]
        )
        bad = dataclasses.replace(proof, gkr=bad_gkr)
        assert not verifier.verify(bad)

    def test_swapped_openings(self, setting):
        _, _, _, verifier, proof = setting
        bad = dataclasses.replace(
            proof,
            v_u_opening=proof.v_v_opening,
            v_v_opening=proof.v_u_opening,
        )
        assert not verifier.verify(bad)

    def test_commitment_substitution(self, setting):
        """Splicing another input vector's commitment must fail."""
        circuit, inputs, prover, verifier, proof = setting
        other_proof = prover.prove([(v + 7) % F.modulus for v in inputs])
        bad = dataclasses.replace(proof, commitment=other_proof.commitment)
        assert not verifier.verify(bad)

    def test_tampered_opening_row(self, setting):
        _, _, _, verifier, proof = setting
        opening = proof.v_u_opening
        bad_opening = dataclasses.replace(
            opening,
            evaluation_row=[(v + 1) % F.modulus for v in opening.evaluation_row],
        )
        bad = dataclasses.replace(proof, v_u_opening=bad_opening)
        assert not verifier.verify(bad)

    def test_tampered_sumcheck_layer(self, setting):
        _, _, _, verifier, proof = setting
        lp = proof.gkr.layer_proofs[0]
        rounds = [list(r) for r in lp.phase1_rounds]
        rounds[0][1] = (rounds[0][1] + 1) % F.modulus
        bad_lp = dataclasses.replace(lp, phase1_rounds=rounds)
        bad_gkr = dataclasses.replace(
            proof.gkr, layer_proofs=[bad_lp] + proof.gkr.layer_proofs[1:]
        )
        assert not verifier.verify(dataclasses.replace(proof, gkr=bad_gkr))


class TestParameters:
    def test_tiny_input_rejected(self):
        from repro.gkr import Gate, LayeredCircuit, MUL

        circuit = LayeredCircuit(F, [[Gate(MUL, 0, 1)]], input_size=2)
        with pytest.raises(CircuitError):
            CommittedGkrProver(circuit)

    def test_pcs_seed_must_match(self, setting):
        circuit, inputs, _, _, proof = setting
        wrong = CommittedGkrVerifier(circuit, num_col_checks=6, pcs_seed=9)
        from repro.errors import CommitmentError

        with pytest.raises(CommitmentError):
            wrong.verify(proof)

    def test_proof_size_accounting(self, setting):
        _, _, _, _, proof = setting
        assert proof.size_field_elements() > proof.gkr.size_field_elements()
