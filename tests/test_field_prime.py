"""Unit and property tests for repro.field.prime_field."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FieldError, FieldMismatchError, NonInvertibleError
from repro.field import DEFAULT_FIELD, FieldElement, PrimeField
from repro.field.primes import MERSENNE61, is_probable_prime

F = DEFAULT_FIELD
elements = st.integers(min_value=0, max_value=F.modulus - 1)


class TestPrimeFieldConstruction:
    def test_rejects_composite_modulus(self):
        with pytest.raises(FieldError):
            PrimeField(91)  # 7 * 13

    def test_rejects_tiny_modulus(self):
        with pytest.raises(FieldError):
            PrimeField(1)

    def test_accepts_prime(self):
        assert PrimeField(97).modulus == 97

    def test_check_skip_allows_fast_construction(self):
        assert PrimeField(MERSENNE61, check=False).modulus == MERSENNE61

    def test_equality_by_modulus(self):
        assert PrimeField(97) == PrimeField(97, name="other")
        assert PrimeField(97) != PrimeField(101)

    def test_hashable(self):
        assert len({PrimeField(97), PrimeField(97), PrimeField(101)}) == 2

    def test_byte_length(self):
        assert PrimeField(97).byte_length == 1
        assert F.byte_length == 8


class TestRawArithmetic:
    def test_add_wraps(self):
        assert F.add(F.modulus - 1, 1) == 0

    def test_sub_wraps(self):
        assert F.sub(0, 1) == F.modulus - 1

    def test_neg_zero(self):
        assert F.neg(0) == 0

    def test_inv_of_zero_raises(self):
        with pytest.raises(NonInvertibleError):
            F.inv(0)

    def test_div(self):
        assert F.div(10, 5) == 2

    @given(a=elements, b=elements)
    def test_add_commutes(self, a, b):
        assert F.add(a, b) == F.add(b, a)

    @given(a=elements, b=elements, c=elements)
    @settings(max_examples=50)
    def test_mul_distributes(self, a, b, c):
        left = F.mul(a, F.add(b, c))
        right = F.add(F.mul(a, b), F.mul(a, c))
        assert left == right

    @given(a=elements.filter(lambda x: x != 0))
    @settings(max_examples=50)
    def test_inverse_property(self, a):
        assert F.mul(a, F.inv(a)) == 1

    @given(a=elements.filter(lambda x: x != 0))
    @settings(max_examples=25)
    def test_fermat_little(self, a):
        assert F.exp(a, F.modulus - 1) == 1


class TestBatchInversion:
    def test_matches_individual(self, rng):
        values = [rng.randrange(1, F.modulus) for _ in range(20)]
        assert F.batch_inv(values) == [F.inv(v) for v in values]

    def test_zeros_pass_through(self, rng):
        values = [3, 0, 7, 0, 11]
        inv = F.batch_inv(values)
        assert inv[1] == 0 and inv[3] == 0
        assert F.mul(inv[0], 3) == 1
        assert F.mul(inv[4], 11) == 1

    def test_all_zeros(self):
        assert F.batch_inv([0, 0, 0]) == [0, 0, 0]

    def test_empty(self):
        assert F.batch_inv([]) == []


class TestVectorOps:
    def test_dot(self):
        assert F.dot([1, 2, 3], [4, 5, 6]) == 32

    def test_dot_length_mismatch(self):
        with pytest.raises(FieldError):
            F.dot([1], [1, 2])

    def test_vec_ops_roundtrip(self, rng):
        xs = F.rand_vector(10, rng)
        ys = F.rand_vector(10, rng)
        assert F.vec_sub(F.vec_add(xs, ys), ys) == xs

    def test_vec_scale(self):
        assert F.vec_scale(3, [1, 2]) == [3, 6]


class TestFieldElement:
    def test_operator_roundtrip(self, rng):
        a = F(rng.randrange(F.modulus))
        b = F(rng.randrange(1, F.modulus))
        assert (a + b - b) == a
        assert (a * b / b) == a
        assert (-a + a) == F.zero

    def test_pow(self):
        assert (F(3) ** 4).value == 81

    def test_int_coercion_in_ops(self):
        assert F(5) + 3 == F(8)
        assert 3 + F(5) == F(8)
        assert 2 * F(5) == F(10)
        assert 1 - F(5) == F(-4)

    def test_mixed_field_raises(self):
        other = PrimeField(97)
        with pytest.raises(FieldMismatchError):
            _ = F(1) + other(1)

    def test_immutability(self):
        a = F(5)
        with pytest.raises(AttributeError):
            a.value = 6

    def test_equality_with_int(self):
        assert F(5) == 5
        assert F(5) == 5 + F.modulus

    def test_bool(self):
        assert not F.zero
        assert F.one

    def test_hash_consistent(self):
        assert hash(F(5)) == hash(F(5 + F.modulus))

    def test_serialization_roundtrip(self, rng):
        a = rng.randrange(F.modulus)
        assert F.from_bytes(F.to_bytes(a)) == a

    def test_vector_serialization_length(self):
        data = F.vector_to_bytes([1, 2, 3])
        assert len(data) == 3 * F.byte_length


class TestAcrossFields:
    def test_axioms_hold(self, any_field, rng):
        p = any_field.modulus
        a, b, c = (rng.randrange(p) for _ in range(3))
        assert any_field.mul(a, any_field.add(b, c)) == any_field.add(
            any_field.mul(a, b), any_field.mul(a, c)
        )
        nz = rng.randrange(1, p)
        assert any_field.mul(nz, any_field.inv(nz)) == 1

    def test_serialization_width(self, any_field):
        data = any_field.to_bytes(any_field.modulus - 1)
        assert len(data) == any_field.byte_length


class TestPrimalityTest:
    @pytest.mark.parametrize("p", [2, 3, 5, 97, MERSENNE61, (1 << 31) - 1])
    def test_primes_pass(self, p):
        assert is_probable_prime(p)

    @pytest.mark.parametrize("n", [0, 1, 4, 91, 561, 1 << 61])
    def test_composites_fail(self, n):
        assert not is_probable_prime(n)
