"""Setup shim.

``pip install -e .`` normally suffices; this file exists so the package can
also be installed on machines without the ``wheel`` module (offline CI) via
``python setup.py develop``.
"""
from setuptools import setup

setup()
